//! # summa-structure — structural meaning and its collapse
//!
//! The executable form of §3's central argument. If the meaning of a
//! term is constituted by its structural relations to other terms —
//! diagram (6) of the paper — then the meaning of "car" *is* the shape
//! of its definitional neighborhood, diagram (7):
//!
//! ```text
//!         ·            ·
//!        ρ1          ρ2(4)
//!         B     C      H
//!          ╲   ╱
//!    F  ←ρ3  D   E  →ρ3  G
//! ```
//!
//! But structure (8) (dog/horse/animal/quadruped) is *isomorphic* to
//! structure (4) (car/pickup/motorvehicle/roadvehicle) — so CAR = DOG
//! under the structural theory of meaning, which is absurd. The paper
//! then "repairs" the animal side with axioms (9)–(11)
//! (`quadruped ⊑ animal`), breaking the isomorphism, and asks: *when
//! can we stop adding structure?* — and answers: never.
//!
//! This crate provides:
//!
//! * [`graph::DefGraph`] — concept-definition graphs extracted from DL
//!   TBoxes, with full or anonymized labels;
//! * [`isomorphism`] — VF2-style graph isomorphism over labeled
//!   directed graphs, plus neighborhood extraction;
//! * [`collapse`] — the CAR=DOG detector: find concept pairs across
//!   (or within) ontonomies whose definitional structures are
//!   indistinguishable;
//! * [`differentiation`] — the regress experiment: how much structure
//!   must be added to separate all indistinguishable pairs, as the
//!   vocabulary grows.
//!
//! ## Quick example — the paper's collapse and repair
//!
//! ```
//! use summa_dl::prelude::*;
//! use summa_structure::prelude::*;
//!
//! let p = PaperVocab::new();
//! let vehicles = vehicles_tbox(&p);
//! let animals = animals_tbox(&p);
//!
//! // CAR and DOG have isomorphic definitional structure …
//! let collapse = structurally_indistinguishable(
//!     &vehicles, p.car, &animals, p.dog, &p.voc,
//! );
//! assert!(collapse.is_some());
//!
//! // … until the paper's repair (9)–(11) breaks the isomorphism.
//! let repaired = animals_tbox_repaired(&p);
//! let after = structurally_indistinguishable(
//!     &vehicles, p.car, &repaired, p.dog, &p.voc,
//! );
//! assert!(after.is_none());
//! ```

pub mod collapse;
pub mod differentiation;
pub mod graph;
pub mod isomorphism;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::collapse::{
        find_isomorphic_pairs, find_isomorphic_pairs_governed,
        find_isomorphic_pairs_metered, find_isomorphic_pairs_parallel_governed,
        structurally_indistinguishable,
        structurally_indistinguishable_governed, structurally_indistinguishable_metered,
        CollapseReport,
    };
    pub use crate::differentiation::{
        differentiate_greedily, differentiation_radius, DifferentiationOutcome,
    };
    pub use crate::graph::{DefGraph, EdgeKind, LabelMode};
    pub use crate::isomorphism::{
        find_isomorphism, find_isomorphism_governed, find_isomorphism_metered,
        find_isomorphism_parallel_governed, Mapping,
    };
}
