//! Concept-definition graphs — the paper's diagrams (6) and (7).
//!
//! A [`DefGraph`] is extracted from a TBox: one node per atomic
//! concept, and a labeled directed edge for every definitional
//! relation the axioms assert — `Isa` edges from the defined atom to
//! each atomic conjunct of its definiens, and `Role` edges (with the
//! role and an optional cardinality) to the filler of each existential
//! or number restriction.
//!
//! [`LabelMode`] controls how much identity survives into the graph:
//! `Full` keeps concept and role names (diagram (6)); `Anonymous`
//! erases them (diagram (7)) — keeping only edge *kinds* and
//! cardinalities, which is exactly the "structural skeleton" whose
//! isomorphism class the structural theory of meaning would call the
//! concept's meaning.

use std::collections::BTreeSet;
use summa_dl::concept::{Concept, ConceptId, Vocabulary};
use summa_dl::tbox::TBox;

/// How node/edge identity is rendered into labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelMode {
    /// Keep concept and role names (diagram (6)).
    Full,
    /// Erase all names; keep only edge kinds and cardinalities
    /// (diagram (7), the skeleton).
    Anonymous,
}

/// The kind of a definitional edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// `lhs ⊑ … ⊓ atom ⊓ …` — subsumption by an atomic conjunct.
    Isa,
    /// `lhs ⊑ … ∃r.atom …` or `≥n/≤n r.atom`: a role restriction;
    /// `label` is the role name under [`LabelMode::Full`] and empty
    /// under [`LabelMode::Anonymous`]; `card` is `Some(n)` for number
    /// restrictions (the paper's `ρ2(4)`).
    Role {
        /// Role name ("" when anonymized).
        label: String,
        /// Cardinality annotation for ≥/≤/exactly restrictions.
        card: Option<u32>,
    },
}

/// A labeled directed graph of definitional structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefGraph {
    /// Node labels ("" when anonymized); index = node id.
    nodes: Vec<String>,
    /// The concept each node came from (kept even when anonymized, for
    /// reporting).
    origins: Vec<ConceptId>,
    /// Edges `(from, to, kind)`.
    edges: Vec<(usize, usize, EdgeKind)>,
}

impl DefGraph {
    /// Extract the definition graph of a whole TBox.
    pub fn from_tbox(tbox: &TBox, voc: &Vocabulary, mode: LabelMode) -> Self {
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        let nodes: Vec<String> = atoms
            .iter()
            .map(|&a| match mode {
                LabelMode::Full => voc.concept_name(a).to_string(),
                LabelMode::Anonymous => String::new(),
            })
            .collect();
        let index = |a: ConceptId| atoms.iter().position(|&x| x == a).expect("atom interned");
        let mut edges = vec![];
        for (lhs, rhs) in tbox.gcis() {
            let from = match lhs {
                Concept::Atom(a) => index(a),
                _ => continue, // only atomic definienda carry structure here
            };
            collect_edges(&rhs, from, voc, mode, &mut edges, &index);
        }
        edges.sort();
        edges.dedup();
        DefGraph {
            nodes,
            origins: atoms,
            edges,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Node label.
    pub fn node_label(&self, i: usize) -> &str {
        &self.nodes[i]
    }

    /// The concept a node came from.
    pub fn origin(&self, i: usize) -> ConceptId {
        self.origins[i]
    }

    /// Node id of a concept, if present.
    pub fn node_of(&self, c: ConceptId) -> Option<usize> {
        self.origins.iter().position(|&x| x == c)
    }

    /// Edges.
    pub fn edges(&self) -> &[(usize, usize, EdgeKind)] {
        &self.edges
    }

    /// Out-edges of a node.
    pub fn out_edges(&self, i: usize) -> impl Iterator<Item = &(usize, usize, EdgeKind)> {
        self.edges.iter().filter(move |(f, _, _)| *f == i)
    }

    /// In-edges of a node.
    pub fn in_edges(&self, i: usize) -> impl Iterator<Item = &(usize, usize, EdgeKind)> {
        self.edges.iter().filter(move |(_, t, _)| *t == i)
    }

    /// The sub-graph induced by the nodes reachable from `start`
    /// (following edges in either direction up to `depth` hops) — the
    /// concept's *definitional neighborhood*.
    pub fn neighborhood(&self, start: usize, depth: usize) -> DefGraph {
        let mut keep: BTreeSet<usize> = BTreeSet::new();
        keep.insert(start);
        let mut frontier = vec![start];
        for _ in 0..depth {
            let mut next = vec![];
            for &n in &frontier {
                for (f, t, _) in &self.edges {
                    if *f == n && keep.insert(*t) {
                        next.push(*t);
                    }
                    if *t == n && keep.insert(*f) {
                        next.push(*f);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        self.induced(&keep)
    }

    /// The sub-graph induced by a node set.
    pub fn induced(&self, keep: &BTreeSet<usize>) -> DefGraph {
        let remap: Vec<usize> = keep.iter().copied().collect();
        let pos = |i: usize| remap.iter().position(|&x| x == i);
        DefGraph {
            nodes: remap.iter().map(|&i| self.nodes[i].clone()).collect(),
            origins: remap.iter().map(|&i| self.origins[i]).collect(),
            edges: self
                .edges
                .iter()
                .filter_map(|(f, t, k)| Some((pos(*f)?, pos(*t)?, k.clone())))
                .collect(),
        }
    }

    /// A copy of this graph with the node labels replaced (length must
    /// match; used to pin nodes during isomorphism search).
    pub fn with_labels(&self, labels: Vec<String>) -> DefGraph {
        assert_eq!(labels.len(), self.nodes.len(), "label count must match");
        DefGraph {
            nodes: labels,
            origins: self.origins.clone(),
            edges: self.edges.clone(),
        }
    }

    /// Render as one `from -kind-> to` line per edge.
    pub fn render(&self) -> String {
        let name = |i: usize| {
            if self.nodes[i].is_empty() {
                format!("·{i}")
            } else {
                self.nodes[i].clone()
            }
        };
        let mut out = String::new();
        for (f, t, k) in &self.edges {
            let arrow = match k {
                EdgeKind::Isa => "—isa→".to_string(),
                EdgeKind::Role { label, card } => {
                    let c = card.map(|n| format!("({n})")).unwrap_or_default();
                    if label.is_empty() {
                        format!("—ρ{c}→")
                    } else {
                        format!("—{label}{c}→")
                    }
                }
            };
            out.push_str(&format!("{} {arrow} {}\n", name(*f), name(*t)));
        }
        out
    }
}

fn collect_edges(
    rhs: &Concept,
    from: usize,
    voc: &Vocabulary,
    mode: LabelMode,
    edges: &mut Vec<(usize, usize, EdgeKind)>,
    index: &impl Fn(ConceptId) -> usize,
) {
    match rhs {
        Concept::Atom(a) => edges.push((from, index(*a), EdgeKind::Isa)),
        Concept::And(parts) => {
            for p in parts {
                collect_edges(p, from, voc, mode, edges, index);
            }
        }
        Concept::Exists(r, inner) | Concept::Forall(r, inner) => {
            if let Concept::Atom(a) = inner.as_ref() {
                let label = match mode {
                    LabelMode::Full => voc.role_name(*r).to_string(),
                    LabelMode::Anonymous => String::new(),
                };
                edges.push((from, index(*a), EdgeKind::Role { label, card: None }));
            } else {
                collect_edges(inner, from, voc, mode, edges, index);
            }
        }
        Concept::AtLeast(n, r, inner) | Concept::AtMost(n, r, inner) => {
            if let Concept::Atom(a) = inner.as_ref() {
                let label = match mode {
                    LabelMode::Full => voc.role_name(*r).to_string(),
                    LabelMode::Anonymous => String::new(),
                };
                edges.push((
                    from,
                    index(*a),
                    EdgeKind::Role {
                        label,
                        card: Some(*n),
                    },
                ));
            } else {
                collect_edges(inner, from, voc, mode, edges, index);
            }
        }
        // Negations/disjunctions do not contribute definitional edges
        // in the paper's diagrams; other constructors carry no atoms.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summa_dl::corpus::{vehicles_tbox, PaperVocab};

    #[test]
    fn vehicles_graph_matches_diagram_six() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let g = DefGraph::from_tbox(&t, &p.voc, LabelMode::Full);
        // Diagram (6): D=car, E=pickup, B=motorvehicle, C=roadvehicle,
        // A=gasoline, H=wheel, F=small, G=big.
        assert_eq!(g.n_nodes(), t.atoms().len());
        let car = g.node_of(p.car).unwrap();
        let isa_targets: Vec<&str> = g
            .out_edges(car)
            .filter(|(_, _, k)| *k == EdgeKind::Isa)
            .map(|(_, t, _)| g.node_label(*t))
            .collect();
        assert!(isa_targets.contains(&"motorvehicle"));
        assert!(isa_targets.contains(&"roadvehicle"));
        // car —size→ small
        assert!(g.out_edges(car).any(|(_, t, k)| matches!(
            k,
            EdgeKind::Role { label, .. } if label == "size"
        ) && g.node_label(*t) == "small"));
        // roadvehicle —has(4)→ wheel
        let rv = g.node_of(p.roadvehicle).unwrap();
        assert!(g.out_edges(rv).any(|(_, t, k)| matches!(
            k,
            EdgeKind::Role { card: Some(4), .. }
        ) && g.node_label(*t) == "wheel"));
    }

    #[test]
    fn anonymous_mode_erases_names() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let g = DefGraph::from_tbox(&t, &p.voc, LabelMode::Anonymous);
        assert!((0..g.n_nodes()).all(|i| g.node_label(i).is_empty()));
        assert!(g.edges().iter().all(|(_, _, k)| match k {
            EdgeKind::Isa => true,
            EdgeKind::Role { label, .. } => label.is_empty(),
        }));
        // But cardinalities survive (the paper's ρ2(4)).
        assert!(g
            .edges()
            .iter()
            .any(|(_, _, k)| matches!(k, EdgeKind::Role { card: Some(4), .. })));
    }

    #[test]
    fn neighborhood_restricts_to_reachable() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let g = DefGraph::from_tbox(&t, &p.voc, LabelMode::Full);
        let car = g.node_of(p.car).unwrap();
        let n1 = g.neighborhood(car, 1);
        // Depth 1: car, motorvehicle, roadvehicle, small.
        assert_eq!(n1.n_nodes(), 4);
        let n2 = g.neighborhood(car, 2);
        // Depth 2 adds gasoline, wheel, and pickup (shares neighbors).
        assert!(n2.n_nodes() > n1.n_nodes());
        // Depth 0 keeps only the start node.
        assert_eq!(g.neighborhood(car, 0).n_nodes(), 1);
    }

    #[test]
    fn render_names_or_dots() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let full = DefGraph::from_tbox(&t, &p.voc, LabelMode::Full).render();
        assert!(full.contains("car —isa→ motorvehicle"));
        assert!(full.contains("—has(4)→ wheel"));
        let anon = DefGraph::from_tbox(&t, &p.voc, LabelMode::Anonymous).render();
        assert!(anon.contains('·'));
        assert!(!anon.contains("car"));
    }
}
