//! The CAR = DOG detector.
//!
//! Under the structural theory of meaning, two concepts whose
//! anonymized definitional neighborhoods are isomorphic — *with the
//! concepts themselves aligned* — have the same meaning. This module
//! finds such collapses across (or within) ontonomies.

use crate::graph::{DefGraph, LabelMode};
use crate::isomorphism::{find_isomorphism, find_isomorphism_metered, Mapping};
use summa_dl::concept::{ConceptId, Vocabulary};
use summa_dl::tbox::TBox;
use summa_guard::{Budget, Governed, Interrupt, Meter};

/// Default neighborhood depth used when comparing concepts: large
/// enough to cover whole small ontonomies.
pub const DEFAULT_DEPTH: usize = 8;

/// A detected collapse: two concepts with indistinguishable structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseReport {
    /// The first concept.
    pub left: ConceptId,
    /// The second concept.
    pub right: ConceptId,
    /// Name of the first concept (for reporting).
    pub left_name: String,
    /// Name of the second concept.
    pub right_name: String,
    /// The witnessing node bijection between the two neighborhoods.
    pub mapping: Mapping,
}

/// Are `c1` (in `t1`) and `c2` (in `t2`) structurally
/// indistinguishable? Returns the witnessing isomorphism if so.
///
/// The test anonymizes both definitional neighborhoods and requires an
/// isomorphism that maps `c1`'s node to `c2`'s node — i.e. the two
/// concepts play the same structural role, the paper's CAR = DOG.
pub fn structurally_indistinguishable(
    t1: &TBox,
    c1: ConceptId,
    t2: &TBox,
    c2: ConceptId,
    voc: &Vocabulary,
) -> Option<Mapping> {
    structurally_indistinguishable_at_depth(t1, c1, t2, c2, voc, DEFAULT_DEPTH)
}

/// Depth-bounded variant of [`structurally_indistinguishable`].
pub fn structurally_indistinguishable_at_depth(
    t1: &TBox,
    c1: ConceptId,
    t2: &TBox,
    c2: ConceptId,
    voc: &Vocabulary,
    depth: usize,
) -> Option<Mapping> {
    let g1 = DefGraph::from_tbox(t1, voc, LabelMode::Anonymous);
    let g2 = DefGraph::from_tbox(t2, voc, LabelMode::Anonymous);
    let n1 = g1.neighborhood(g1.node_of(c1)?, depth);
    let n2 = g2.neighborhood(g2.node_of(c2)?, depth);
    let start1 = n1.node_of(c1)?;
    let start2 = n2.node_of(c2)?;
    let m = find_isomorphism(&n1, &n2)?;
    if m.get(&start1) == Some(&start2) {
        return Some(m);
    }
    // The found isomorphism did not align the two concepts; try to
    // find one that does by pinning the start pair. We brute-force by
    // checking all isomorphisms implicitly: remove the pair's freedom
    // by relabeling the start nodes with a unique marker.
    let n1p = pin(&n1, start1);
    let n2p = pin(&n2, start2);
    find_isomorphism(&n1p, &n2p)
}

/// Metered indistinguishability test: both isomorphism searches (the
/// free one and the pinned retry) charge one shared meter.
pub fn structurally_indistinguishable_metered(
    t1: &TBox,
    c1: ConceptId,
    t2: &TBox,
    c2: ConceptId,
    voc: &Vocabulary,
    depth: usize,
    meter: &mut Meter,
) -> Result<Option<Mapping>, Interrupt> {
    let mut span = meter.span("structure.collapse.pair").with("depth", depth);
    let g1 = DefGraph::from_tbox(t1, voc, LabelMode::Anonymous);
    let g2 = DefGraph::from_tbox(t2, voc, LabelMode::Anonymous);
    let (n1, n2) = match (g1.node_of(c1), g2.node_of(c2)) {
        (Some(i1), Some(i2)) => (g1.neighborhood(i1, depth), g2.neighborhood(i2, depth)),
        _ => return Ok(None),
    };
    let (start1, start2) = match (n1.node_of(c1), n2.node_of(c2)) {
        (Some(s1), Some(s2)) => (s1, s2),
        _ => return Ok(None),
    };
    match find_isomorphism_metered(&n1, &n2, meter)? {
        None => {
            span.record("collapsed", false);
            return Ok(None);
        }
        Some(m) if m.get(&start1) == Some(&start2) => {
            span.record("collapsed", true);
            return Ok(Some(m));
        }
        Some(_) => span.record("pinned_retry", true),
    }
    let n1p = pin(&n1, start1);
    let n2p = pin(&n2, start2);
    let m = find_isomorphism_metered(&n1p, &n2p, meter)?;
    span.record("collapsed", m.is_some());
    Ok(m)
}

/// Budget-governed indistinguishability test. On interrupt the partial
/// is `None` — *undecided*, never a claimed non-collapse.
pub fn structurally_indistinguishable_governed(
    t1: &TBox,
    c1: ConceptId,
    t2: &TBox,
    c2: ConceptId,
    voc: &Vocabulary,
    depth: usize,
    budget: &Budget,
) -> Governed<Option<Mapping>> {
    let mut meter = budget.meter();
    match structurally_indistinguishable_metered(t1, c1, t2, c2, voc, depth, &mut meter) {
        Ok(m) => Governed::Completed(m),
        Err(i) => Governed::from_interrupt(i, None),
    }
}

/// Relabel one node with a distinguished marker so isomorphisms must
/// map it to the correspondingly-pinned node.
fn pin(g: &DefGraph, node: usize) -> DefGraph {
    let mut nodes: Vec<String> = (0..g.n_nodes())
        .map(|i| g.node_label(i).to_string())
        .collect();
    nodes[node] = "⟨pinned⟩".to_string();
    // Rebuild through the public surface: induced over all nodes keeps
    // structure; then we override labels via a small shim.
    g.with_labels(nodes)
}

/// Find *all* cross-ontonomy concept pairs that collapse.
pub fn find_isomorphic_pairs(
    t1: &TBox,
    t2: &TBox,
    voc: &Vocabulary,
    depth: usize,
) -> Vec<CollapseReport> {
    let mut out = vec![];
    for c1 in t1.atoms() {
        for c2 in t2.atoms() {
            if let Some(mapping) =
                structurally_indistinguishable_at_depth(t1, c1, t2, c2, voc, depth)
            {
                out.push(CollapseReport {
                    left: c1,
                    right: c2,
                    left_name: voc.concept_name(c1).to_string(),
                    right_name: voc.concept_name(c2).to_string(),
                    mapping,
                });
            }
        }
    }
    out
}

/// Budget-governed all-pairs collapse sweep: every pairwise search
/// charges one shared meter. On interrupt the partial report lists the
/// collapses confirmed before the cut — each entry is a genuine
/// witness; unexamined pairs are simply absent.
pub fn find_isomorphic_pairs_governed(
    t1: &TBox,
    t2: &TBox,
    voc: &Vocabulary,
    depth: usize,
    budget: &Budget,
) -> Governed<Vec<CollapseReport>> {
    let mut meter = budget.meter();
    let mut out = vec![];
    match find_isomorphic_pairs_metered(t1, t2, voc, depth, &mut meter, &mut out) {
        Ok(()) => Governed::Completed(out),
        Err(i) => Governed::from_interrupt(i, Some(out)),
    }
}

/// Metered all-pairs sweep over a caller-supplied meter, appending
/// confirmed collapses to `out` as they are found.
pub fn find_isomorphic_pairs_metered(
    t1: &TBox,
    t2: &TBox,
    voc: &Vocabulary,
    depth: usize,
    meter: &mut Meter,
    out: &mut Vec<CollapseReport>,
) -> Result<(), Interrupt> {
    let _span = meter
        .span("structure.collapse.sweep")
        .with("left_atoms", t1.atoms().len())
        .with("right_atoms", t2.atoms().len());
    for c1 in t1.atoms() {
        for c2 in t2.atoms() {
            if let Some(mapping) =
                structurally_indistinguishable_metered(t1, c1, t2, c2, voc, depth, meter)?
            {
                out.push(CollapseReport {
                    left: c1,
                    right: c2,
                    left_name: voc.concept_name(c1).to_string(),
                    right_name: voc.concept_name(c2).to_string(),
                    mapping,
                });
            }
        }
    }
    Ok(())
}

/// Parallel, budget-governed all-pairs collapse sweep: the
/// `|atoms(t1)| × |atoms(t2)|` pair grid is distributed across
/// `threads` workers under one shared envelope. Cell results are
/// assembled in pair-index order, so the completed report is
/// **identical** to the sequential [`find_isomorphic_pairs_governed`];
/// a partial report lists only collapses from *decided* cells — every
/// entry a genuine witness, a subset of the full sweep.
pub fn find_isomorphic_pairs_parallel_governed(
    t1: &TBox,
    t2: &TBox,
    voc: &Vocabulary,
    depth: usize,
    budget: &Budget,
    threads: usize,
) -> Governed<Vec<CollapseReport>> {
    let pairs: Vec<(ConceptId, ConceptId)> = t1
        .atoms()
        .into_iter()
        .flat_map(|c1| t2.atoms().into_iter().map(move |c2| (c1, c2)))
        .collect();
    let _span = budget
        .tracer()
        .span("structure.collapse.parallel")
        .with("pairs", pairs.len())
        .with("threads", threads);
    let outcome = summa_exec::par_map(
        &pairs,
        budget,
        threads,
        |meter, _, &(c1, c2)| {
            structurally_indistinguishable_metered(t1, c1, t2, c2, voc, depth, meter)
        },
    );
    outcome.into_governed(|slots| {
        let mut out = vec![];
        for (&(c1, c2), slot) in pairs.iter().zip(slots) {
            if let Some(Some(mapping)) = slot {
                out.push(CollapseReport {
                    left: c1,
                    right: c2,
                    left_name: voc.concept_name(c1).to_string(),
                    right_name: voc.concept_name(c2).to_string(),
                    mapping,
                });
            }
        }
        Some(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use summa_dl::corpus::{
        animals_tbox, animals_tbox_repaired, vehicles_tbox, PaperVocab,
    };

    #[test]
    fn car_equals_dog_before_repair() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        let m = structurally_indistinguishable(&v, p.car, &a, p.dog, &p.voc);
        assert!(m.is_some(), "structures (4) and (8) must collapse");
    }

    #[test]
    fn pickup_equals_horse_and_roles_align() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        assert!(structurally_indistinguishable(&v, p.pickup, &a, p.horse, &p.voc).is_some());
        assert!(
            structurally_indistinguishable(&v, p.motorvehicle, &a, p.animal, &p.voc).is_some()
        );
        assert!(
            structurally_indistinguishable(&v, p.roadvehicle, &a, p.quadruped, &p.voc).is_some()
        );
    }

    #[test]
    fn car_does_not_equal_horse() {
        // car ↦ small but horse ↦ big: the pinned isomorphism must
        // fail because the role structure around the pinned nodes
        // differs… actually both have one size-edge; the asymmetry is
        // elsewhere: car's size-target (small) is shared with dog's.
        // Within the *whole* neighborhoods including the sibling
        // (pickup/dog share 'small' vs 'big'), car aligns with dog,
        // not horse.
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        // car ↔ horse would force small ↔ big and then pickup ↔ dog,
        // which still works structurally — the skeleton is symmetric!
        // This is itself instructive: structure alone cannot even
        // distinguish CAR from HORSE.
        let m = structurally_indistinguishable(&v, p.car, &a, p.horse, &p.voc);
        assert!(m.is_some(), "the skeleton is symmetric under small↔big");
    }

    #[test]
    fn repair_breaks_the_collapse() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let repaired = animals_tbox_repaired(&p);
        let m = structurally_indistinguishable(&v, p.car, &repaired, p.dog, &p.voc);
        assert!(m.is_none(), "axioms (9)–(11) must break the isomorphism");
    }

    #[test]
    fn all_pairs_enumeration_finds_the_full_collapse() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        let pairs = find_isomorphic_pairs(&v, &a, &p.voc, DEFAULT_DEPTH);
        // Every vehicle concept collapses onto at least one animal
        // concept.
        for c in v.atoms() {
            assert!(
                pairs.iter().any(|r| r.left == c),
                "{} found no partner",
                p.voc.concept_name(c)
            );
        }
        // And the canonical pair is among them.
        assert!(pairs
            .iter()
            .any(|r| r.left_name == "car" && r.right_name == "dog"));
    }

    #[test]
    fn governed_sweep_degrades_to_confirmed_prefix() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        let full = find_isomorphic_pairs(&v, &a, &p.voc, DEFAULT_DEPTH);
        // Unlimited budget reproduces the legacy sweep exactly.
        let g = find_isomorphic_pairs_governed(
            &v,
            &a,
            &p.voc,
            DEFAULT_DEPTH,
            &summa_guard::Budget::unlimited(),
        );
        assert_eq!(g.completed().as_deref(), Some(full.as_slice()));
        // A starved budget yields a (possibly empty) prefix whose
        // every entry is also in the full result — no fabrications.
        let g = find_isomorphic_pairs_governed(
            &v,
            &a,
            &p.voc,
            DEFAULT_DEPTH,
            &summa_guard::Budget::new().with_steps(25),
        );
        match g {
            summa_guard::Governed::Exhausted { partial, .. } => {
                let partial = partial.expect("partial list available");
                assert!(partial.len() < full.len());
                for r in &partial {
                    assert!(full.contains(r));
                }
            }
            other => panic!("expected exhaustion, got {}", other.status()),
        }
    }

    #[test]
    fn governed_single_pair_respects_budget() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        let g = structurally_indistinguishable_governed(
            &v,
            p.car,
            &a,
            p.dog,
            &p.voc,
            DEFAULT_DEPTH,
            &summa_guard::Budget::unlimited(),
        );
        assert!(matches!(g, summa_guard::Governed::Completed(Some(_))));
        let g = structurally_indistinguishable_governed(
            &v,
            p.car,
            &a,
            p.dog,
            &p.voc,
            DEFAULT_DEPTH,
            &summa_guard::Budget::new().with_steps(2),
        );
        assert!(!g.is_completed());
    }

    #[test]
    fn self_comparison_is_reflexive() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        assert!(structurally_indistinguishable(&v, p.car, &v, p.car, &p.voc).is_some());
    }
}
