//! The differentiation regress — "when can we stop? we can't."
//!
//! After breaking CAR = DOG with axioms (9)–(11), the paper asks how
//! much structure suffices to keep all concepts distinct, and argues
//! there is no stopping point: "the meaning of a sign is given by the
//! trace on it of all the other signs of the language, and no part of
//! the system can self-sustain once detached from the whole."
//!
//! This module measures the claim. Given a TBox (or a pair), it
//! counts structurally indistinguishable concept pairs and greedily
//! adds *differentiating axioms* (fresh marker restrictions) until no
//! two concepts collapse — reporting how many additions were needed.
//! Swept over growing vocabularies (see the `e7_regress` bench), the
//! count grows with the ontology instead of converging, which is the
//! executable shape of the regress.

use crate::collapse::{find_isomorphic_pairs, CollapseReport};
use summa_dl::concept::{Concept, ConceptId, Vocabulary};
use summa_dl::tbox::TBox;

/// The outcome of a greedy differentiation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferentiationOutcome {
    /// Indistinguishable pairs before any additions.
    pub initial_collapses: usize,
    /// Axioms added (one fresh marker restriction per addition).
    pub axioms_added: usize,
    /// Collapsed pairs remaining when the run stopped.
    pub remaining_collapses: usize,
    /// The TBox after the additions.
    pub differentiated: TBox,
}

/// Count the structurally indistinguishable pairs *within* one TBox
/// (unordered distinct pairs of atoms whose pinned neighborhoods are
/// isomorphic).
pub fn count_internal_collapses(tbox: &TBox, voc: &Vocabulary, depth: usize) -> usize {
    let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
    let mut n = 0;
    for (i, &a) in atoms.iter().enumerate() {
        for &b in &atoms[i + 1..] {
            if crate::collapse::structurally_indistinguishable_at_depth(
                tbox, a, tbox, b, voc, depth,
            )
            .is_some()
            {
                n += 1;
            }
        }
    }
    n
}

/// Greedily differentiate every collapsed pair within a TBox by
/// attaching a fresh marker concept to one member of each pair (a new
/// `∃marker_i.M_i` restriction), iterating until no collapses remain
/// or `max_rounds` is exhausted.
pub fn differentiate_greedily(
    tbox: &TBox,
    voc: &mut Vocabulary,
    depth: usize,
    max_rounds: usize,
) -> DifferentiationOutcome {
    let initial = count_internal_collapses(tbox, voc, depth);
    let mut current = tbox.clone();
    let mut added = 0;
    for round in 0..max_rounds {
        let atoms: Vec<ConceptId> = current.atoms().into_iter().collect();
        let mut collapsed_pair: Option<(ConceptId, ConceptId)> = None;
        'search: for (i, &a) in atoms.iter().enumerate() {
            for &b in &atoms[i + 1..] {
                if crate::collapse::structurally_indistinguishable_at_depth(
                    &current, a, &current, b, voc, depth,
                )
                .is_some()
                {
                    collapsed_pair = Some((a, b));
                    break 'search;
                }
            }
        }
        let Some((a, _b)) = collapsed_pair else {
            break;
        };
        // Differentiate `a` with a fresh marker.
        let marker = voc.concept(&format!("marker_{round}_{}", voc.n_concepts()));
        let role = voc.role(&format!("mrole_{round}"));
        current.subsume(
            Concept::atom(a),
            Concept::exists(role, Concept::atom(marker)),
        );
        added += 1;
    }
    let remaining = count_internal_collapses(&current, voc, depth);
    DifferentiationOutcome {
        initial_collapses: initial,
        axioms_added: added,
        remaining_collapses: remaining,
        differentiated: current,
    }
}

/// Cross-TBox variant: differentiate `t2` until no concept of `t1`
/// collapses onto a concept of `t2` (the paper's repair process,
/// automated). Returns the number of axioms needed.
pub fn differentiate_against(
    t1: &TBox,
    t2: &TBox,
    voc: &mut Vocabulary,
    depth: usize,
    max_rounds: usize,
) -> (usize, Vec<CollapseReport>, TBox) {
    let mut current = t2.clone();
    let mut added = 0;
    for round in 0..max_rounds {
        let pairs = find_isomorphic_pairs(t1, &current, voc, depth);
        let Some(first) = pairs.first() else { break };
        let marker = voc.concept(&format!("xmarker_{round}_{}", voc.n_concepts()));
        let role = voc.role(&format!("xmrole_{round}"));
        current.subsume(
            Concept::atom(first.right),
            Concept::exists(role, Concept::atom(marker)),
        );
        added += 1;
    }
    let remaining = find_isomorphic_pairs(t1, &current, voc, depth);
    (added, remaining, current)
}

/// The *differentiation radius* of a concept pair: the smallest
/// neighborhood depth at which the two concepts become structurally
/// distinguishable, or `None` if they remain indistinguishable up to
/// `max_depth` — i.e. how far into the web of terms a reader must look
/// before the difference in meaning appears. The paper's regress says
/// this radius is unbounded over a growing language: the meaning of a
/// sign is "the trace on it of all the other signs."
pub fn differentiation_radius(
    t1: &TBox,
    c1: ConceptId,
    t2: &TBox,
    c2: ConceptId,
    voc: &Vocabulary,
    max_depth: usize,
) -> Option<usize> {
    (0..=max_depth).find(|&depth| {
        crate::collapse::structurally_indistinguishable_at_depth(t1, c1, t2, c2, voc, depth)
            .is_none()
    })
}

/// A symmetric synthetic family for the regress sweep: `n` "sibling"
/// concepts, all structurally identical (each `Sᵢ ⊑ Base ⊓ ∃r.Fᵢ`
/// with private fillers — private names, same shape).
pub fn symmetric_family(n: usize) -> (Vocabulary, TBox) {
    let mut voc = Vocabulary::new();
    let base = voc.concept("Base");
    let r = voc.role("r");
    let mut t = TBox::new();
    for i in 0..n {
        let s = voc.concept(&format!("S{i}"));
        let f = voc.concept(&format!("F{i}"));
        t.subsume(
            Concept::atom(s),
            Concept::and(vec![
                Concept::atom(base),
                Concept::exists(r, Concept::atom(f)),
            ]),
        );
    }
    (voc, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use summa_dl::corpus::{animals_tbox, vehicles_tbox, PaperVocab};

    #[test]
    fn symmetric_family_collapses_quadratically() {
        let (voc, t) = symmetric_family(3);
        // Each Sᵢ pair collapses, each Fᵢ pair collapses:
        // C(3,2) + C(3,2) = 6.
        let n = count_internal_collapses(&t, &voc, 8);
        assert_eq!(n, 6);
    }

    #[test]
    fn greedy_differentiation_terminates_and_separates() {
        let (mut voc, t) = symmetric_family(3);
        let out = differentiate_greedily(&t, &mut voc, 8, 64);
        assert!(out.initial_collapses > 0);
        assert_eq!(out.remaining_collapses, 0, "all pairs separated");
        assert!(out.axioms_added >= 2, "needs at least n-1 markers");
        assert!(out.differentiated.len() > t.len());
    }

    #[test]
    fn differentiation_cost_grows_with_family_size() {
        let mut costs = vec![];
        for n in [2usize, 3, 4] {
            let (mut voc, t) = symmetric_family(n);
            let out = differentiate_greedily(&t, &mut voc, 8, 128);
            assert_eq!(out.remaining_collapses, 0);
            costs.push(out.axioms_added);
        }
        // The regress: more vocabulary ⇒ strictly more differentiation
        // work. (The paper: "when can we stop? … we can't.")
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
    }

    #[test]
    fn automated_repair_of_the_animals_tbox() {
        let p = PaperVocab::new();
        let mut voc = p.voc.clone();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        let (added, remaining, repaired) = differentiate_against(&v, &a, &mut voc, 8, 64);
        assert!(added > 0, "the original structures collapse");
        assert!(remaining.is_empty(), "automated repair succeeds");
        assert!(repaired.len() > a.len());
    }

    #[test]
    fn differentiation_radius_finds_the_depth_of_the_difference() {
        let p = PaperVocab::new();
        let v = vehicles_tbox(&p);
        let a = animals_tbox(&p);
        // car vs dog: indistinguishable at every depth (full collapse).
        assert_eq!(
            differentiation_radius(&v, p.car, &a, p.dog, &p.voc, 8),
            None
        );
        // After the repair, the difference (quadruped ⊑ animal) sits
        // one isa-edge away from dog, so a small radius suffices.
        let repaired = summa_dl::corpus::animals_tbox_repaired(&p);
        let radius = differentiation_radius(&v, p.car, &repaired, p.dog, &p.voc, 8)
            .expect("repair makes them distinguishable");
        assert!((1..=3).contains(&radius), "radius {radius}");
        // A concept differs from itself nowhere.
        assert_eq!(
            differentiation_radius(&v, p.car, &v, p.car, &p.voc, 8),
            None
        );
    }

    #[test]
    fn already_distinct_tbox_needs_no_work() {
        let p = PaperVocab::new();
        let mut voc = p.voc.clone();
        // vehicles vs the repaired animals: no collapses to fix… but
        // run the machinery anyway.
        let v = vehicles_tbox(&p);
        let repaired = summa_dl::corpus::animals_tbox_repaired(&p);
        let (added, remaining, _) = differentiate_against(&v, &repaired, &mut voc, 8, 64);
        assert_eq!(added, 0);
        assert!(remaining.is_empty());
    }
}
