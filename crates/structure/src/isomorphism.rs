//! Graph isomorphism for labeled directed graphs (VF2-style
//! backtracking with degree pruning).

use crate::graph::{DefGraph, EdgeKind};
use std::collections::BTreeMap;
use summa_guard::{Budget, Governed, Interrupt, Meter};

/// A node bijection witnessing an isomorphism (g1 node → g2 node).
pub type Mapping = BTreeMap<usize, usize>;

/// Find an isomorphism between two labeled graphs, if one exists.
///
/// Node labels and edge kinds (including role labels and
/// cardinalities) must be preserved exactly; anonymize the graphs
/// first (see [`crate::graph::LabelMode::Anonymous`]) to compare pure
/// structure.
pub fn find_isomorphism(g1: &DefGraph, g2: &DefGraph) -> Option<Mapping> {
    find_isomorphism_metered(g1, g2, &mut Meter::unlimited())
        .expect("unlimited meter never interrupts")
}

/// Budget-governed isomorphism search. Each candidate assignment tried
/// by the backtracking search charges one step; an exhausted or
/// cancelled search carries no partial witness (`None` = *undecided*,
/// not *non-isomorphic*).
pub fn find_isomorphism_governed(
    g1: &DefGraph,
    g2: &DefGraph,
    budget: &Budget,
) -> Governed<Option<Mapping>> {
    let mut meter = budget.meter();
    match find_isomorphism_metered(g1, g2, &mut meter) {
        Ok(m) => Governed::Completed(m),
        Err(i) => Governed::from_interrupt(i, None),
    }
}

/// Metered isomorphism search over a caller-supplied meter, for
/// composing several searches under one envelope.
pub fn find_isomorphism_metered(
    g1: &DefGraph,
    g2: &DefGraph,
    meter: &mut Meter,
) -> Result<Option<Mapping>, Interrupt> {
    if g1.n_nodes() != g2.n_nodes() || g1.n_edges() != g2.n_edges() {
        // Size-pruned pairs never enter the search; keeping them out of
        // the span stream keeps flamegraphs about actual backtracking.
        return Ok(None);
    }
    let mut span = meter.span("structure.iso").with("nodes", g1.n_nodes());
    let n = g1.n_nodes();
    // Degree signatures for pruning: (label, out-degree, in-degree,
    // multiset of incident edge kinds).
    let sig1 = node_signatures(g1);
    let sig2 = node_signatures(g2);
    // The multisets of signatures must agree.
    {
        let mut a = sig1.clone();
        let mut b = sig2.clone();
        a.sort();
        b.sort();
        if a != b {
            span.record("found", false);
            return Ok(None);
        }
    }

    let mut mapping: Vec<Option<usize>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];

    let found = backtrack(g1, g2, &sig1, &sig2, &mut mapping, &mut used, 0, meter)?;
    span.record("found", found);
    if found {
        Ok(Some(complete_mapping(mapping)))
    } else {
        Ok(None)
    }
}

/// Node signature for pruning: (label, sorted out-edge kinds, sorted
/// in-edge kinds).
type NodeSig = (String, Vec<EdgeKind>, Vec<EdgeKind>);

fn node_signatures(g: &DefGraph) -> Vec<NodeSig> {
    (0..g.n_nodes())
        .map(|i| {
            let mut out_kinds: Vec<&EdgeKind> = g.out_edges(i).map(|(_, _, k)| k).collect();
            let mut in_kinds: Vec<&EdgeKind> = g.in_edges(i).map(|(_, _, k)| k).collect();
            out_kinds.sort();
            in_kinds.sort();
            (
                g.node_label(i).to_string(),
                out_kinds.into_iter().cloned().collect::<Vec<_>>(),
                in_kinds.into_iter().cloned().collect::<Vec<_>>(),
            )
        })
        .collect()
}

fn complete_mapping(mapping: Vec<Option<usize>>) -> Mapping {
    mapping
        .into_iter()
        .enumerate()
        .map(|(i, m)| (i, m.expect("complete mapping")))
        .collect()
}

fn consistent(g1: &DefGraph, g2: &DefGraph, mapping: &[Option<usize>]) -> bool {
    // Every g1 edge between mapped nodes must exist in g2 with the
    // same kind, and vice versa (counting multiplicity by exact
    // match of the (from,to,kind) triple).
    for (f, t, k) in g1.edges() {
        if let (Some(mf), Some(mt)) = (mapping[*f], mapping[*t]) {
            if !g2
                .edges()
                .iter()
                .any(|(f2, t2, k2)| *f2 == mf && *t2 == mt && k2 == k)
            {
                return false;
            }
        }
    }
    for (f2, t2, k2) in g2.edges() {
        let pf = mapping.iter().position(|&m| m == Some(*f2));
        let pt = mapping.iter().position(|&m| m == Some(*t2));
        if let (Some(pf), Some(pt)) = (pf, pt) {
            if !g1
                .edges()
                .iter()
                .any(|(f, t, k)| *f == pf && *t == pt && k == k2)
            {
                return false;
            }
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    g1: &DefGraph,
    g2: &DefGraph,
    sig1: &[NodeSig],
    sig2: &[NodeSig],
    mapping: &mut Vec<Option<usize>>,
    used: &mut Vec<bool>,
    next: usize,
    meter: &mut Meter,
) -> Result<bool, Interrupt> {
    if next == mapping.len() {
        return Ok(true);
    }
    for cand in 0..mapping.len() {
        if used[cand] || sig1[next] != sig2[cand] {
            continue;
        }
        // One step per candidate assignment tried: the unit of
        // work for the search tree.
        meter.charge(1)?;
        mapping[next] = Some(cand);
        used[cand] = true;
        if consistent(g1, g2, mapping)
            && backtrack(g1, g2, sig1, sig2, mapping, used, next + 1, meter)?
        {
            return Ok(true);
        }
        mapping[next] = None;
        used[cand] = false;
    }
    Ok(false)
}

/// Parallel, budget-governed isomorphism search: the candidate images
/// of node 0 are split across `threads` workers, each running the
/// usual backtracking with its candidate pinned under one shared
/// envelope.
///
/// The result is deterministic and matches the sequential search: the
/// witness reported is the one from the *lowest-numbered* successful
/// candidate — exactly the branch sequential DFS would have succeeded
/// on first — regardless of which worker finished first. On interrupt
/// the answer is `None` (*undecided*) unless a witness at a fully
/// decided prefix of the candidate order had already been found.
pub fn find_isomorphism_parallel_governed(
    g1: &DefGraph,
    g2: &DefGraph,
    budget: &Budget,
    threads: usize,
) -> Governed<Option<Mapping>> {
    if g1.n_nodes() != g2.n_nodes() || g1.n_edges() != g2.n_edges() {
        return Governed::Completed(None);
    }
    let n = g1.n_nodes();
    if n == 0 {
        return Governed::Completed(Some(Mapping::new()));
    }
    let sig1 = node_signatures(g1);
    let sig2 = node_signatures(g2);
    {
        let mut a = sig1.clone();
        let mut b = sig2.clone();
        a.sort();
        b.sort();
        if a != b {
            return Governed::Completed(None);
        }
    }
    // Candidate images for node 0, in sequential trial order.
    let candidates: Vec<usize> = (0..n).filter(|&c| sig1[0] == sig2[c]).collect();
    // Service span on the calling thread; each worker's backtracking
    // shows up in its own lane via the meter spans inside.
    let _span = budget
        .tracer()
        .span("structure.iso.parallel")
        .with("nodes", n)
        .with("candidates", candidates.len())
        .with("threads", threads);
    let sig1_ref = &sig1;
    let sig2_ref = &sig2;
    let outcome = summa_exec::par_map(
        &candidates,
        budget,
        threads,
        |meter, _, &cand| -> Result<Option<Mapping>, Interrupt> {
            let _span = meter.span("structure.iso.candidate").with("candidate", cand);
            meter.charge(1)?;
            let mut mapping: Vec<Option<usize>> = vec![None; n];
            let mut used: Vec<bool> = vec![false; n];
            mapping[0] = Some(cand);
            used[cand] = true;
            if consistent(g1, g2, &mapping)
                && backtrack(g1, g2, sig1_ref, sig2_ref, &mut mapping, &mut used, 1, meter)?
            {
                Ok(Some(complete_mapping(mapping)))
            } else {
                Ok(None)
            }
        },
    );
    assemble_first_witness(outcome)
}

/// Deterministic assembly for candidate-split searches: scan decided
/// slots in candidate order; the first witness wins (matching the
/// sequential DFS), an undecided slot before any witness means the
/// whole question is undecided.
pub(crate) fn assemble_first_witness<M>(
    outcome: summa_exec::ParOutcome<Option<M>>,
) -> Governed<Option<M>> {
    let interrupted = outcome.interrupted;
    for slot in outcome.results {
        match slot {
            Some(Some(m)) => return Governed::Completed(Some(m)),
            Some(None) => continue,
            None => {
                let i = interrupted.unwrap_or(Interrupt::Cancelled);
                return Governed::from_interrupt(i, None);
            }
        }
    }
    match interrupted {
        None => Governed::Completed(None),
        Some(i) => Governed::from_interrupt(i, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabelMode;
    use summa_dl::concept::Concept;
    use summa_dl::concept::Vocabulary;
    use summa_dl::tbox::TBox;

    fn tiny_tbox(names: [&str; 3], role: &str) -> (Vocabulary, TBox) {
        let mut voc = Vocabulary::new();
        let a = voc.concept(names[0]);
        let b = voc.concept(names[1]);
        let c = voc.concept(names[2]);
        let r = voc.role(role);
        let mut t = TBox::new();
        t.subsume(Concept::atom(a), Concept::atom(b));
        t.subsume(Concept::atom(a), Concept::exists(r, Concept::atom(c)));
        (voc, t)
    }

    #[test]
    fn identical_graphs_are_isomorphic() {
        let (voc, t) = tiny_tbox(["a", "b", "c"], "r");
        let g = crate::graph::DefGraph::from_tbox(&t, &voc, LabelMode::Full);
        let m = find_isomorphism(&g, &g).unwrap();
        assert_eq!(m.len(), g.n_nodes());
        for (k, v) in &m {
            assert_eq!(g.node_label(*k), g.node_label(*v));
        }
    }

    #[test]
    fn renamed_graphs_isomorphic_only_anonymously() {
        let (voc1, t1) = tiny_tbox(["a", "b", "c"], "r");
        let (voc2, t2) = tiny_tbox(["x", "y", "z"], "s");
        let f1 = crate::graph::DefGraph::from_tbox(&t1, &voc1, LabelMode::Full);
        let f2 = crate::graph::DefGraph::from_tbox(&t2, &voc2, LabelMode::Full);
        assert!(find_isomorphism(&f1, &f2).is_none()); // names differ
        let a1 = crate::graph::DefGraph::from_tbox(&t1, &voc1, LabelMode::Anonymous);
        let a2 = crate::graph::DefGraph::from_tbox(&t2, &voc2, LabelMode::Anonymous);
        assert!(find_isomorphism(&a1, &a2).is_some()); // skeletons match
    }

    #[test]
    fn different_structure_not_isomorphic() {
        let (voc1, t1) = tiny_tbox(["a", "b", "c"], "r");
        // Second graph has an extra isa edge.
        let mut voc2 = Vocabulary::new();
        let x = voc2.concept("x");
        let y = voc2.concept("y");
        let z = voc2.concept("z");
        let s = voc2.role("s");
        let mut t2 = TBox::new();
        t2.subsume(Concept::atom(x), Concept::atom(y));
        t2.subsume(Concept::atom(x), Concept::exists(s, Concept::atom(z)));
        t2.subsume(Concept::atom(y), Concept::atom(z));
        let a1 = crate::graph::DefGraph::from_tbox(&t1, &voc1, LabelMode::Anonymous);
        let a2 = crate::graph::DefGraph::from_tbox(&t2, &voc2, LabelMode::Anonymous);
        assert!(find_isomorphism(&a1, &a2).is_none());
    }

    #[test]
    fn cardinalities_must_match() {
        let mut voc1 = Vocabulary::new();
        let a = voc1.concept("a");
        let b = voc1.concept("b");
        let r = voc1.role("r");
        let mut t1 = TBox::new();
        t1.subsume(Concept::atom(a), Concept::at_least(4, r, Concept::atom(b)));
        let mut t2 = TBox::new();
        t2.subsume(Concept::atom(a), Concept::at_least(3, r, Concept::atom(b)));
        let g1 = crate::graph::DefGraph::from_tbox(&t1, &voc1, LabelMode::Anonymous);
        let g2 = crate::graph::DefGraph::from_tbox(&t2, &voc1, LabelMode::Anonymous);
        assert!(find_isomorphism(&g1, &g2).is_none());
        let g3 = crate::graph::DefGraph::from_tbox(&t1, &voc1, LabelMode::Anonymous);
        assert!(find_isomorphism(&g1, &g3).is_some());
    }

    #[test]
    fn governed_search_completes_and_exhausts() {
        let (voc, t) = tiny_tbox(["a", "b", "c"], "r");
        let g = crate::graph::DefGraph::from_tbox(&t, &voc, LabelMode::Full);
        let done = find_isomorphism_governed(&g, &g, &summa_guard::Budget::unlimited());
        assert!(matches!(done, summa_guard::Governed::Completed(Some(_))));
        // Any complete mapping needs one charge per node, so a budget
        // below the node count must exhaust instead of answering.
        assert!(g.n_nodes() > 1);
        let starved = find_isomorphism_governed(
            &g,
            &g,
            &summa_guard::Budget::new().with_steps(1),
        );
        assert!(matches!(
            starved,
            summa_guard::Governed::Exhausted { partial: None, .. }
        ));
    }

    #[test]
    fn size_mismatch_fails_fast() {
        let (voc1, t1) = tiny_tbox(["a", "b", "c"], "r");
        let mut voc2 = Vocabulary::new();
        let x = voc2.concept("x");
        let y = voc2.concept("y");
        let mut t2 = TBox::new();
        t2.subsume(Concept::atom(x), Concept::atom(y));
        let g1 = crate::graph::DefGraph::from_tbox(&t1, &voc1, LabelMode::Anonymous);
        let g2 = crate::graph::DefGraph::from_tbox(&t2, &voc2, LabelMode::Anonymous);
        assert!(find_isomorphism(&g1, &g2).is_none());
    }
}
