//! Property-based tests for structural-meaning analysis.

use proptest::prelude::*;
use summa_dl::concept::{Concept, Vocabulary};
use summa_dl::generate;
use summa_dl::tbox::TBox;
use summa_structure::differentiation::{count_internal_collapses, symmetric_family};
use summa_structure::graph::{DefGraph, LabelMode};
use summa_structure::isomorphism::find_isomorphism;
use summa_structure::prelude::structurally_indistinguishable;

/// A random small EL TBox plus its vocabulary.
fn arb_tbox() -> impl Strategy<Value = (Vocabulary, TBox)> {
    (3usize..7, 2usize..10, 0u64..10_000).prop_map(|(n, m, seed)| {
        let (voc, t, _) = generate::random_el(n, 2, m, seed);
        (voc, t)
    })
}

/// Rebuild a TBox with every concept name systematically renamed, in a
/// fresh vocabulary with a different interning order.
fn rename_tbox(t: &TBox, voc: &Vocabulary) -> (Vocabulary, TBox) {
    let mut voc2 = Vocabulary::new();
    // Intern roles and concepts in reverse discovery order with fresh
    // names so all ids differ.
    let mut concept_map = std::collections::BTreeMap::new();
    let mut role_map = std::collections::BTreeMap::new();
    let mut atoms: Vec<_> = t.atoms().into_iter().collect();
    atoms.reverse();
    for a in atoms {
        concept_map.insert(a, voc2.concept(&format!("renamed_{}", voc.concept_name(a))));
    }
    let mut roles: Vec<_> = t.roles().into_iter().collect();
    roles.reverse();
    for r in roles {
        role_map.insert(r, voc2.role(&format!("renamed_{}", voc.role_name(r))));
    }
    fn map_concept(
        c: &Concept,
        cm: &std::collections::BTreeMap<summa_dl::concept::ConceptId, summa_dl::concept::ConceptId>,
        rm: &std::collections::BTreeMap<summa_dl::concept::RoleId, summa_dl::concept::RoleId>,
    ) -> Concept {
        match c {
            Concept::Top => Concept::Top,
            Concept::Bottom => Concept::Bottom,
            Concept::Atom(a) => Concept::Atom(cm[a]),
            Concept::Not(i) => Concept::not(map_concept(i, cm, rm)),
            Concept::And(cs) => Concept::and(cs.iter().map(|x| map_concept(x, cm, rm)).collect()),
            Concept::Or(cs) => Concept::or(cs.iter().map(|x| map_concept(x, cm, rm)).collect()),
            Concept::Exists(r, i) => Concept::exists(rm[r], map_concept(i, cm, rm)),
            Concept::Forall(r, i) => Concept::forall(rm[r], map_concept(i, cm, rm)),
            Concept::AtLeast(n, r, i) => Concept::at_least(*n, rm[r], map_concept(i, cm, rm)),
            Concept::AtMost(n, r, i) => Concept::at_most(*n, rm[r], map_concept(i, cm, rm)),
        }
    }
    let mut t2 = TBox::new();
    for (l, r) in t.gcis() {
        t2.subsume(
            map_concept(&l, &concept_map, &role_map),
            map_concept(&r, &concept_map, &role_map),
        );
    }
    (voc2, t2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn isomorphism_is_reflexive((voc, t) in arb_tbox()) {
        let g = DefGraph::from_tbox(&t, &voc, LabelMode::Anonymous);
        prop_assert!(find_isomorphism(&g, &g).is_some());
    }

    #[test]
    fn isomorphism_is_symmetric((voc, t) in arb_tbox()) {
        let g1 = DefGraph::from_tbox(&t, &voc, LabelMode::Anonymous);
        let (voc2, t2) = rename_tbox(&t, &voc);
        let g2 = DefGraph::from_tbox(&t2, &voc2, LabelMode::Anonymous);
        prop_assert_eq!(
            find_isomorphism(&g1, &g2).is_some(),
            find_isomorphism(&g2, &g1).is_some()
        );
    }

    #[test]
    fn renaming_preserves_anonymous_isomorphism((voc, t) in arb_tbox()) {
        let g1 = DefGraph::from_tbox(&t, &voc, LabelMode::Anonymous);
        let (voc2, t2) = rename_tbox(&t, &voc);
        let g2 = DefGraph::from_tbox(&t2, &voc2, LabelMode::Anonymous);
        prop_assert!(
            find_isomorphism(&g1, &g2).is_some(),
            "a renamed TBox must have an isomorphic skeleton"
        );
    }

    #[test]
    fn mapping_is_a_bijection_preserving_edges((voc, t) in arb_tbox()) {
        let g = DefGraph::from_tbox(&t, &voc, LabelMode::Anonymous);
        let m = find_isomorphism(&g, &g).expect("reflexive");
        // Bijection over all nodes.
        let mut seen = std::collections::BTreeSet::new();
        for (&k, &v) in &m {
            prop_assert!(k < g.n_nodes() && v < g.n_nodes());
            prop_assert!(seen.insert(v), "mapping must be injective");
        }
        prop_assert_eq!(m.len(), g.n_nodes());
        // Every edge maps to an edge of the same kind.
        for (f, to, k) in g.edges() {
            let (mf, mt) = (m[f], m[to]);
            prop_assert!(g
                .edges()
                .iter()
                .any(|(f2, t2, k2)| *f2 == mf && *t2 == mt && k2 == k));
        }
    }

    #[test]
    fn every_concept_is_self_indistinguishable((voc, t) in arb_tbox()) {
        for c in t.atoms() {
            prop_assert!(
                structurally_indistinguishable(&t, c, &t, c, &voc).is_some(),
                "{} not self-indistinguishable",
                voc.concept_name(c)
            );
        }
    }

    #[test]
    fn indistinguishability_is_symmetric_within_a_tbox((voc, t) in arb_tbox()) {
        let atoms: Vec<_> = t.atoms().into_iter().collect();
        for &a in atoms.iter().take(4) {
            for &b in atoms.iter().take(4) {
                let ab = structurally_indistinguishable(&t, a, &t, b, &voc).is_some();
                let ba = structurally_indistinguishable(&t, b, &t, a, &voc).is_some();
                prop_assert_eq!(ab, ba);
            }
        }
    }

    #[test]
    fn symmetric_family_collapse_count_is_exact(n in 2usize..5) {
        let (voc, t) = symmetric_family(n);
        // C(n,2) sibling pairs + C(n,2) filler pairs.
        let expected = n * (n - 1);
        prop_assert_eq!(count_internal_collapses(&t, &voc, 8), expected);
    }

    #[test]
    fn neighborhood_is_monotone_in_depth((voc, t) in arb_tbox()) {
        let g = DefGraph::from_tbox(&t, &voc, LabelMode::Full);
        if g.n_nodes() == 0 {
            return Ok(());
        }
        let mut prev = 0;
        for depth in 0..4 {
            let n = g.neighborhood(0, depth).n_nodes();
            prop_assert!(n >= prev);
            prev = n;
        }
    }
}
