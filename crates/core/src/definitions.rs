//! The four candidate definitions of "ontology" analyzed in §2, as
//! machine-checkable admission judges.

use crate::corpus::Artifact;
use summa_intensional::commitment::{
    judge_ontonomy, AdmissionLevel, OntologicalCommitment,
};
use summa_intensional::model::{enumerate_models, ExtModel};
use summa_intensional::world::WorldSpace;

/// Budget for finite model enumeration in the Guarino judge.
const MODEL_BUDGET: u64 = 200_000;

/// The verdict of one definition on one artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The artifact qualifies as an ontonomy under the definition.
    Admitted,
    /// It does not.
    Rejected,
    /// The definition cannot decide on structural grounds at all —
    /// the paper's charge against functional definitions.
    Undecidable,
    /// The cell could not be *evaluated*: the judge panicked or ran
    /// out of resources. Unlike [`Verdict::Undecidable`] this says
    /// nothing about the definition — the run degraded, the question
    /// stands.
    Unknown,
}

/// A judgment with its reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Judgment {
    /// The verdict.
    pub verdict: Verdict,
    /// Why.
    pub reason: String,
    /// Resources consumed producing this judgment, when the run was
    /// metered (see [`crate::critique::syntactic_critique_governed`]).
    pub spend: Option<summa_guard::Spend>,
}

impl Judgment {
    fn admitted(reason: impl Into<String>) -> Self {
        Judgment {
            verdict: Verdict::Admitted,
            reason: reason.into(),
            spend: None,
        }
    }
    fn rejected(reason: impl Into<String>) -> Self {
        Judgment {
            verdict: Verdict::Rejected,
            reason: reason.into(),
            spend: None,
        }
    }
    fn undecidable(reason: impl Into<String>) -> Self {
        Judgment {
            verdict: Verdict::Undecidable,
            reason: reason.into(),
            spend: None,
        }
    }

    /// A degraded cell: the judge could not run to completion.
    pub fn unknown(reason: impl Into<String>) -> Self {
        Judgment {
            verdict: Verdict::Unknown,
            reason: reason.into(),
            spend: None,
        }
    }

    /// Attach the resources spent producing this judgment.
    pub fn with_spend(mut self, spend: summa_guard::Spend) -> Self {
        self.spend = Some(spend);
        self
    }
}

/// A declared intended use — what a *functional* definition needs
/// before it can judge anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Telos {
    /// "used for knowledge sharing" (Gruber's setting).
    KnowledgeSharing,
    /// Used as a shopping aid, a program, a form…
    SomethingElse,
}

/// A candidate definition of "ontology".
pub trait Definition {
    /// Display name.
    fn name(&self) -> &'static str;
    /// Judge an artifact. `telos` is the declared intended use, which
    /// only functional definitions consult.
    fn admits(&self, artifact: &Artifact, telos: Option<Telos>) -> Judgment;
}

/// D1 — Gruber: "an ontology is a formalization of a
/// conceptualization." Functional: admission depends on what the
/// artifact is *for*, not on what it *is*. Without a declared telos
/// the definition cannot answer — which is the paper's §2 objection:
/// "given an arbitrary string of symbols, a definition should allow
/// one to determine whether the string is a formal grammar or not."
#[derive(Debug, Default, Clone, Copy)]
pub struct GruberDefinition;

impl Definition for GruberDefinition {
    fn name(&self) -> &'static str {
        "Gruber (functional)"
    }

    fn admits(&self, _artifact: &Artifact, telos: Option<Telos>) -> Judgment {
        match telos {
            Some(Telos::KnowledgeSharing) => Judgment::admitted(
                "declared to formalize a conceptualization for sharing; \
                 the definition consults the use, not the structure",
            ),
            Some(Telos::SomethingElse) => Judgment::rejected(
                "declared for another use; the same symbols would be \
                 admitted under a different declaration",
            ),
            None => Judgment::undecidable(
                "functional definition: with no declared intended use \
                 there is no structural criterion to apply",
            ),
        }
    }
}

/// D2 — the AI definition \[10\]: an ontology is "the collection of all
/// symbols used in a logic system, with the indication of which names
/// are functions, which are predicates, and which are constants."
/// Structural and decidable — but it admits every partitioned
/// vocabulary and "doesn't lay any semantic claim".
#[derive(Debug, Default, Clone, Copy)]
pub struct AiDefinition;

impl Definition for AiDefinition {
    fn name(&self) -> &'static str {
        "AI symbol inventory"
    }

    fn admits(&self, artifact: &Artifact, _telos: Option<Telos>) -> Judgment {
        match artifact.as_inventory() {
            Some((c, f, p)) => Judgment::admitted(format!(
                "a partitioned vocabulary: {} constants, {} functions, {} predicates \
                 (no relations between terms, no semantic claim)",
                c.len(),
                f.len(),
                p.len()
            )),
            None => Judgment::rejected(
                "no indication of which names are functions, predicates or constants",
            ),
        }
    }
}

/// D3 — Guarino's intensional definition, parameterized by the
/// strictness level the paper walks through. At
/// [`AdmissionLevel::Exact`] almost nothing qualifies; at
/// [`AdmissionLevel::Approximate`] anything sharing a model with the
/// intended set does; at [`AdmissionLevel::AbstractedFromLanguage`]
/// "any set of statements that admits at least a model is an
/// ontonomy" — including the grocery list.
#[derive(Debug, Clone, Copy)]
pub struct GuarinoDefinition {
    /// The strictness level.
    pub level: AdmissionLevel,
}

impl GuarinoDefinition {
    /// The definition at the paper's "approximates" reading.
    pub fn approximate() -> Self {
        GuarinoDefinition {
            level: AdmissionLevel::Approximate,
        }
    }

    /// The definition with the language abstracted away.
    pub fn abstracted() -> Self {
        GuarinoDefinition {
            level: AdmissionLevel::AbstractedFromLanguage,
        }
    }

    /// The exact-models reading.
    pub fn exact() -> Self {
        GuarinoDefinition {
            level: AdmissionLevel::Exact,
        }
    }
}

impl Definition for GuarinoDefinition {
    fn name(&self) -> &'static str {
        match self.level {
            AdmissionLevel::Exact => "Guarino (exact)",
            AdmissionLevel::Approximate => "Guarino (approximate)",
            AdmissionLevel::AbstractedFromLanguage => "Guarino (abstracted)",
        }
    }

    fn admits(&self, artifact: &Artifact, _telos: Option<Telos>) -> Judgment {
        let Some((lang, domain, axioms)) = artifact.as_axioms() else {
            return Judgment::rejected(
                "no logical reading: the definition needs a set of axioms",
            );
        };
        // The commitment: a single intended world whose model is the
        // first model of the axioms themselves (the designer's intent
        // made concrete); for the abstracted level the commitment is
        // irrelevant by definition.
        let all = match enumerate_models(&lang, &domain, MODEL_BUDGET) {
            Ok(models) => models,
            Err(e) => return Judgment::undecidable(format!("model space too large: {e}")),
        };
        let intended: Vec<ExtModel> = all
            .iter()
            .filter(|m| m.satisfies_all(&domain, &axioms).unwrap_or(false))
            .take(1)
            .cloned()
            .collect();
        let space = WorldSpace::opaque(intended.len().max(1));
        let commitment = match if intended.is_empty() {
            OntologicalCommitment::new(&WorldSpace::opaque(1), vec![ExtModel::new()])
        } else {
            OntologicalCommitment::new(&space, intended)
        } {
            Ok(k) => k,
            Err(e) => return Judgment::undecidable(format!("commitment construction: {e}")),
        };
        match judge_ontonomy(&lang, &domain, &commitment, &axioms, self.level, MODEL_BUDGET) {
            Ok(j) if j.admitted => Judgment::admitted(format!(
                "{} of {} models intended-compatible ({} models total)",
                j.n_shared, j.n_intended, j.n_models
            )),
            Ok(j) => Judgment::rejected(format!(
                "model set does not qualify at this level \
                 ({} models, {} intended, {} shared)",
                j.n_models, j.n_intended, j.n_shared
            )),
            Err(e) => Judgment::undecidable(format!("{e}")),
        }
    }
}

/// D4 — Bench-Capon & Malcolm: the structural, order-sorted
/// definition. It admits exactly the artifacts that *are* ontology
/// signatures with well-formed attribute families (plus axioms) — and
/// rejects everything that does not come as a class hierarchy over a
/// data domain, which is the paper's "too weak to cover the uses"
/// observation made visible.
#[derive(Debug, Default, Clone, Copy)]
pub struct BcmDefinition;

impl Definition for BcmDefinition {
    fn name(&self) -> &'static str {
        "Bench-Capon & Malcolm"
    }

    fn admits(&self, artifact: &Artifact, _telos: Option<Telos>) -> Judgment {
        match artifact {
            Artifact::Bcm { ontonomy, .. } => match ontonomy.signature.check_inheritance() {
                Ok(()) => Judgment::admitted(
                    "an ontology signature (D, C, A) with a well-formed \
                     attribute family, plus axioms",
                ),
                Err(e) => Judgment::rejected(format!("signature ill-formed: {e}")),
            },
            _ => Judgment::rejected(
                "not presented as (data domain, class hierarchy, attribute family)",
            ),
        }
    }
}

/// All the definitions the paper examines, in presentation order.
pub fn standard_definitions() -> Vec<Box<dyn Definition>> {
    vec![
        Box::new(GruberDefinition),
        Box::new(AiDefinition),
        Box::new(GuarinoDefinition::exact()),
        Box::new(GuarinoDefinition::approximate()),
        Box::new(GuarinoDefinition::abstracted()),
        Box::new(BcmDefinition),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::standard_corpus;

    fn find(name: &str) -> Artifact {
        standard_corpus()
            .into_iter()
            .find(|a| a.name() == name)
            .expect("corpus entry")
    }

    #[test]
    fn gruber_is_undecidable_without_a_telos() {
        let d = GruberDefinition;
        let a = find("vehicles TBox (4)");
        assert_eq!(d.admits(&a, None).verdict, Verdict::Undecidable);
        assert_eq!(
            d.admits(&a, Some(Telos::KnowledgeSharing)).verdict,
            Verdict::Admitted
        );
        // The same grocery list flips verdict with the declaration —
        // nothing structural is being judged.
        let g = find("grocery list");
        assert_eq!(
            d.admits(&g, Some(Telos::KnowledgeSharing)).verdict,
            Verdict::Admitted
        );
        assert_eq!(
            d.admits(&g, Some(Telos::SomethingElse)).verdict,
            Verdict::Rejected
        );
    }

    #[test]
    fn ai_definition_admits_any_partitioned_vocabulary() {
        let d = AiDefinition;
        assert_eq!(
            d.admits(&find("blocks-world inventory"), None).verdict,
            Verdict::Admitted
        );
        assert_eq!(
            d.admits(&find("vehicles TBox (4)"), None).verdict,
            Verdict::Admitted
        );
        // Raw text has no role partition.
        assert_eq!(
            d.admits(&find("C program"), None).verdict,
            Verdict::Rejected
        );
    }

    #[test]
    fn guarino_abstracted_admits_the_grocery_list() {
        let d = GuarinoDefinition::abstracted();
        assert_eq!(
            d.admits(&find("grocery list"), None).verdict,
            Verdict::Admitted
        );
        assert_eq!(
            d.admits(&find("C program"), None).verdict,
            Verdict::Admitted
        );
        assert_eq!(
            d.admits(&find("tautology set"), None).verdict,
            Verdict::Admitted
        );
        // But never a contradiction.
        assert_eq!(
            d.admits(&find("contradiction"), None).verdict,
            Verdict::Rejected
        );
    }

    #[test]
    fn guarino_approximate_still_admits_tautologies() {
        let d = GuarinoDefinition::approximate();
        assert_eq!(
            d.admits(&find("tautology set"), None).verdict,
            Verdict::Admitted
        );
    }

    #[test]
    fn guarino_needs_a_logical_reading() {
        let d = GuarinoDefinition::approximate();
        assert_eq!(
            d.admits(&find("blocks-world inventory"), None).verdict,
            Verdict::Rejected
        );
    }

    #[test]
    fn bcm_admits_only_real_signatures() {
        let d = BcmDefinition;
        assert_eq!(
            d.admits(&find("vehicles BCM ontonomy"), None).verdict,
            Verdict::Admitted
        );
        for other in [
            "grocery list",
            "C program",
            "tautology set",
            "vehicles TBox (4)",
            "blocks-world inventory",
        ] {
            assert_eq!(
                d.admits(&find(other), None).verdict,
                Verdict::Rejected,
                "{other} must be rejected by the structural definition"
            );
        }
    }

    #[test]
    fn standard_definitions_cover_the_paper() {
        let defs = standard_definitions();
        assert_eq!(defs.len(), 6);
        let names: Vec<&str> = defs.iter().map(|d| d.name()).collect();
        assert!(names.contains(&"Gruber (functional)"));
        assert!(names.contains(&"Bench-Capon & Malcolm"));
    }
}
