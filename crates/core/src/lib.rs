//! # summa-core — an executable *Summa Contra Ontologiam*
//!
//! The unifying crate of this reproduction of Santini's *Summa Contra
//! Ontologiam* (EDBT 2006 Workshops). The paper is a critical analysis
//! of the concept of "ontology" in computing; this workspace builds
//! the complete formal apparatus the paper reasons about and turns
//! each of its three arguments into an executable analysis:
//!
//! 1. **The syntactic critique (§2)** — four candidate definitions of
//!    an *ontonomy* (the paper's name for the artifact), each
//!    implemented as a machine-checkable [`definitions::Definition`]:
//!    Gruber's functional definition, the AI symbol-inventory
//!    definition, Guarino's intensional definition (at its three
//!    strictness levels), and Bench-Capon & Malcolm's order-sorted
//!    structural definition. Run them over the [`corpus`] (a C
//!    program, a grocery list, a tax form, a tautology set, the
//!    paper's vehicle ontonomy …) with
//!    [`critique::syntactic_critique`] to regenerate the paper's
//!    over-breadth results.
//! 2. **The semantic critique (§3)** — [`critique::semantic_critique`]
//!    runs the CAR = DOG structural collapse (via `summa-structure`),
//!    the lexical-field misalignments (via `summa-lexfield`), and the
//!    differentiation regress.
//! 3. **The pragmatic critique (§3–4)** —
//!    [`critique::pragmatic_critique`] measures meaning variance
//!    across reading contexts and the loss inflicted by freezing one
//!    encoding (via `summa-hermeneutic`).
//!
//! The substrate crates are re-exported under [`substrates`] so a
//! single dependency suffices:
//!
//! ```
//! use summa_core::prelude::*;
//!
//! let matrix = syntactic_critique();
//! // Guarino's definition, with approximation, admits the grocery
//! // list; Bench-Capon & Malcolm's does not.
//! assert!(matrix.admitted("grocery list", "Guarino (approximate)"));
//! assert!(!matrix.admitted("grocery list", "Bench-Capon & Malcolm"));
//! ```

pub mod corpus;
pub mod critique;
pub mod definitions;
pub mod report;

/// The substrate crates, re-exported.
pub mod substrates {
    pub use summa_dl as dl;
    pub use summa_hermeneutic as hermeneutic;
    pub use summa_intensional as intensional;
    pub use summa_lexfield as lexfield;
    pub use summa_ontonomy as ontonomy;
    pub use summa_osa as osa;
    pub use summa_structure as structure;
}

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::corpus::{standard_corpus, Artifact};
    pub use crate::critique::{
        pragmatic_critique, semantic_critique, syntactic_critique, PragmaticReport,
        SemanticReport,
    };
    pub use crate::definitions::{
        standard_definitions, AiDefinition, BcmDefinition, Definition, GruberDefinition,
        GuarinoDefinition, Judgment, Telos, Verdict,
    };
    pub use crate::report::AdmissionMatrix;
}
