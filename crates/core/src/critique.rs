//! The paper's three critiques as runnable analyses.

use crate::corpus::standard_corpus;
use crate::definitions::standard_definitions;
use crate::report::AdmissionMatrix;
use serde::Serialize;
use summa_dl::corpus::{animals_tbox, animals_tbox_repaired, vehicles_tbox, PaperVocab};
use summa_hermeneutic::prelude::{all_contexts, encoding_loss, interpret, trespassers_sign, MeaningVariance};
use summa_lexfield::prelude::{age_adjectives_dataset, doorknob_dataset, Alignment};
use summa_structure::prelude::{find_isomorphic_pairs, structurally_indistinguishable};

/// §2 — run every candidate definition over the whole corpus (no
/// telos declared, which is the honest structural setting).
pub fn syntactic_critique() -> AdmissionMatrix {
    let corpus = standard_corpus();
    let defs = standard_definitions();
    let cells = corpus
        .iter()
        .map(|a| defs.iter().map(|d| d.admits(a, None)).collect())
        .collect();
    AdmissionMatrix {
        artifacts: corpus.iter().map(|a| a.name().to_string()).collect(),
        definitions: defs.iter().map(|d| d.name().to_string()).collect(),
        cells,
    }
}

/// The findings of the §3 semantic critique.
#[derive(Debug, Clone, Serialize)]
pub struct SemanticReport {
    /// CAR = DOG holds before the repair.
    pub car_equals_dog: bool,
    /// …and fails after axioms (9)–(11).
    pub repair_breaks_collapse: bool,
    /// Number of cross-ontonomy concept pairs that collapse between
    /// structures (4) and (8).
    pub collapsed_pairs: usize,
    /// The doorknob alignment is not a bijection.
    pub doorknob_not_bijective: bool,
    /// Total translation ambiguity across the three age-adjective
    /// pairings (it→es, it→fr, es→fr).
    pub age_total_ambiguity: usize,
    /// No pair of age fields divides the space identically.
    pub age_divisions_all_differ: bool,
}

/// §3 — run the structural collapse and the lexical-field analyses.
pub fn semantic_critique() -> SemanticReport {
    let p = PaperVocab::new();
    let vehicles = vehicles_tbox(&p);
    let animals = animals_tbox(&p);
    let repaired = animals_tbox_repaired(&p);

    let car_equals_dog =
        structurally_indistinguishable(&vehicles, p.car, &animals, p.dog, &p.voc).is_some();
    let repair_breaks_collapse =
        structurally_indistinguishable(&vehicles, p.car, &repaired, p.dog, &p.voc).is_none();
    let collapsed_pairs = find_isomorphic_pairs(&vehicles, &animals, &p.voc, 8).len();

    let (space, en, it) = doorknob_dataset();
    let doorknob_not_bijective = !Alignment::between(&space, &en, &it).is_bijective();

    let age = age_adjectives_dataset();
    let pairings = [
        (&age.italian, &age.spanish),
        (&age.italian, &age.french),
        (&age.spanish, &age.french),
    ];
    let age_total_ambiguity = pairings
        .iter()
        .map(|(a, b)| Alignment::between(&age.space, a, b).total_ambiguity())
        .sum();
    let age_divisions_all_differ = pairings.iter().all(|(a, b)| {
        !summa_lexfield::field::same_division(&age.space, a, b)
    });

    SemanticReport {
        car_equals_dog,
        repair_breaks_collapse,
        collapsed_pairs,
        doorknob_not_bijective,
        age_total_ambiguity,
        age_divisions_all_differ,
    }
}

/// The findings of the §3–4 pragmatic critique.
#[derive(Debug, Clone, Serialize)]
pub struct PragmaticReport {
    /// Number of contexts examined.
    pub n_contexts: usize,
    /// Distinct interpretations of the one text.
    pub n_distinct_meanings: usize,
    /// Mean pairwise Jaccard distance between interpretations.
    pub mean_meaning_distance: f64,
    /// Mean loss when the author's (door) reading is frozen as *the*
    /// encoding — the death of the reader, quantified.
    pub encoding_loss: f64,
}

/// §3–4 — run the situated-interpretation analysis on the paper's
/// "trespassers will be prosecuted" example.
pub fn pragmatic_critique() -> PragmaticReport {
    let text = trespassers_sign();
    let contexts = all_contexts();
    let refs: Vec<&summa_hermeneutic::context::Context> = contexts.iter().collect();
    let variance = MeaningVariance::across(&text, &refs);
    let frozen = interpret(&text, &contexts[0]); // the door reading
    let loss = encoding_loss(&text, &frozen, &refs);
    PragmaticReport {
        n_contexts: contexts.len(),
        n_distinct_meanings: variance.n_distinct,
        mean_meaning_distance: variance.mean_jaccard_distance,
        encoding_loss: loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definitions::Verdict;

    #[test]
    fn syntactic_matrix_reproduces_the_overbreadth_claims() {
        let m = syntactic_critique();
        // The paper: "many things, from a C program to a very well
        // structured grocery list, to a tax return form would qualify."
        for artifact in ["grocery list", "C program", "tax return form", "tautology set"] {
            assert!(
                m.admitted(artifact, "Guarino (abstracted)"),
                "{artifact} must qualify once the language is abstracted"
            );
        }
        // The structural definition admits only the real signature.
        assert_eq!(m.admission_count("Bench-Capon & Malcolm"), 1);
        // The functional definition decides nothing without a telos.
        for a in &m.artifacts {
            assert_eq!(
                m.judgment(a, "Gruber (functional)").unwrap().verdict,
                Verdict::Undecidable
            );
        }
        // Strictness is monotone: exact ⊆ approximate ⊆ abstracted.
        let exact = m.admission_count("Guarino (exact)");
        let approx = m.admission_count("Guarino (approximate)");
        let abstracted = m.admission_count("Guarino (abstracted)");
        assert!(exact <= approx && approx <= abstracted);
    }

    #[test]
    fn semantic_report_matches_the_paper() {
        let r = semantic_critique();
        assert!(r.car_equals_dog);
        assert!(r.repair_breaks_collapse);
        assert!(r.collapsed_pairs > 0);
        assert!(r.doorknob_not_bijective);
        assert!(r.age_total_ambiguity > 0);
        assert!(r.age_divisions_all_differ);
    }

    #[test]
    fn pragmatic_report_shows_reader_dependence() {
        let r = pragmatic_critique();
        assert_eq!(r.n_contexts, 4);
        assert_eq!(r.n_distinct_meanings, 4);
        assert!(r.mean_meaning_distance > 0.5);
        assert!(r.encoding_loss > 0.0);
    }
}
