//! The paper's three critiques as runnable analyses.

use crate::corpus::{standard_corpus, Artifact};
use crate::definitions::{standard_definitions, Definition, Judgment};
use crate::report::AdmissionMatrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use summa_dl::corpus::{animals_tbox, animals_tbox_repaired, vehicles_tbox, PaperVocab};
use summa_guard::{Budget, Governed, Interrupt, Meter, Spend};
use summa_hermeneutic::prelude::{all_contexts, encoding_loss, interpret, trespassers_sign, MeaningVariance};
use summa_lexfield::prelude::{age_adjectives_dataset, doorknob_dataset, Alignment};
use summa_structure::prelude::{
    find_isomorphic_pairs_metered, find_isomorphic_pairs_parallel_governed,
    structurally_indistinguishable_metered,
};

/// Neighborhood depth for the semantic critique's structural sweeps.
const COLLAPSE_DEPTH: usize = 8;

/// §2 — run every candidate definition over the whole corpus (no
/// telos declared, which is the honest structural setting).
pub fn syntactic_critique() -> AdmissionMatrix {
    syntactic_critique_governed(&Budget::unlimited())
        .expect_completed("unlimited budget always completes")
}

/// §2 under a resource envelope. Every artifact × definition cell is
/// judged in isolation: a cell whose judge panics degrades to
/// [`crate::definitions::Verdict::Unknown`] with the panic message as
/// its reason — the matrix survives a poisoned cell. Each judged cell
/// records its resource [`Spend`]. On exhaustion or cancellation the
/// partial matrix holds the fully judged artifact rows.
pub fn syntactic_critique_governed(budget: &Budget) -> Governed<AdmissionMatrix> {
    let corpus = standard_corpus();
    let defs = standard_definitions();
    let definitions: Vec<String> = defs.iter().map(|d| d.name().to_string()).collect();
    let mut meter = budget.meter();
    let _span = meter
        .span("core.syntactic")
        .with("artifacts", corpus.len())
        .with("definitions", defs.len());
    let mut artifacts: Vec<String> = vec![];
    let mut cells: Vec<Vec<Judgment>> = vec![];
    for a in &corpus {
        let mut row = vec![];
        for d in &defs {
            match judge_cell(d.as_ref(), a, &mut meter) {
                Ok(j) => row.push(j),
                // Drop the half-judged row: partial matrices only ever
                // contain complete rows.
                Err(i) => {
                    return Governed::from_interrupt(
                        i,
                        Some(AdmissionMatrix {
                            artifacts,
                            definitions,
                            cells,
                        }),
                    )
                }
            }
        }
        artifacts.push(a.name().to_string());
        cells.push(row);
    }
    Governed::Completed(AdmissionMatrix {
        artifacts,
        definitions,
        cells,
    })
}

/// Judge one cell under the shared meter, isolating panics. The
/// deadline/cancellation checkpoint runs *before* the judge so an
/// expired envelope stops the matrix between cells rather than
/// mid-judge.
fn judge_cell(
    d: &dyn Definition,
    a: &Artifact,
    meter: &mut Meter,
) -> Result<Judgment, Interrupt> {
    meter.charge(1)?;
    meter.checkpoint()?;
    let _span = meter
        .span("core.judge")
        .with("artifact", a.name())
        .with("definition", d.name());
    let started = Instant::now();
    let judged = catch_unwind(AssertUnwindSafe(|| d.admits(a, None)));
    let spend = Spend {
        steps: 1,
        elapsed: started.elapsed(),
        ..Spend::default()
    };
    Ok(match judged {
        Ok(j) => j.with_spend(spend),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Judgment::unknown(format!("judge panicked: {msg}")).with_spend(spend)
        }
    })
}

/// §2 across `threads` workers: artifact × definition cells are
/// distributed by work stealing under one shared envelope, each worker
/// holding its own corpus and definition set (judges are neither
/// `Sync` nor shareable). Panic isolation is per cell, exactly as in
/// the sequential run. Cells are assembled in matrix order and only
/// fully judged artifact rows are kept, so the completed matrix is
/// identical to [`syntactic_critique_governed`]'s and a partial one
/// obeys the same complete-rows-only contract.
pub fn syntactic_critique_parallel_governed(
    budget: &Budget,
    threads: usize,
) -> Governed<AdmissionMatrix> {
    let corpus = standard_corpus();
    let defs = standard_definitions();
    let definitions: Vec<String> = defs.iter().map(|d| d.name().to_string()).collect();
    let (rows, cols) = (corpus.len(), defs.len());
    let _span = budget
        .tracer()
        .span("core.syntactic.parallel")
        .with("cells", rows * cols)
        .with("threads", threads);
    let outcome = summa_exec::par_cells(
        rows,
        cols,
        budget,
        threads,
        |_| (standard_corpus(), standard_definitions()),
        |(corpus, defs), meter, r, c| judge_cell(defs[c].as_ref(), &corpus[r], meter),
    );
    outcome.into_governed(|slots| {
        let mut artifacts = vec![];
        let mut cells: Vec<Vec<Judgment>> = vec![];
        for (r, a) in corpus.iter().enumerate() {
            let row = &slots[r * cols..(r + 1) * cols];
            if row.iter().all(Option::is_some) {
                artifacts.push(a.name().to_string());
                cells.push(row.iter().map(|j| j.clone().expect("decided")).collect());
            }
        }
        Some(AdmissionMatrix {
            artifacts,
            definitions,
            cells,
        })
    })
}

/// The findings of the §3 semantic critique.
#[derive(Debug, Clone)]
pub struct SemanticReport {
    /// CAR = DOG holds before the repair.
    pub car_equals_dog: bool,
    /// …and fails after axioms (9)–(11).
    pub repair_breaks_collapse: bool,
    /// Number of cross-ontonomy concept pairs that collapse between
    /// structures (4) and (8).
    pub collapsed_pairs: usize,
    /// The doorknob alignment is not a bijection.
    pub doorknob_not_bijective: bool,
    /// Total translation ambiguity across the three age-adjective
    /// pairings (it→es, it→fr, es→fr).
    pub age_total_ambiguity: usize,
    /// No pair of age fields divides the space identically.
    pub age_divisions_all_differ: bool,
}

/// §3 — run the structural collapse and the lexical-field analyses.
pub fn semantic_critique() -> SemanticReport {
    semantic_critique_governed(&Budget::unlimited())
        .expect_completed("unlimited budget always completes")
}

/// §3 under a resource envelope: every isomorphism search in the
/// collapse analysis charges one shared meter, and the lexical-field
/// phases hit a deadline/cancellation checkpoint between analyses. An
/// interrupted run carries no partial report — the individual findings
/// are interdependent claims about one experiment, not separable rows.
pub fn semantic_critique_governed(budget: &Budget) -> Governed<SemanticReport> {
    let mut meter = budget.meter();
    let _span = meter.span("core.semantic");
    match semantic_critique_metered(&mut meter) {
        Ok(r) => Governed::Completed(r),
        Err(i) => Governed::from_interrupt(i, None),
    }
}

/// §3 with the dominant phase — the all-pairs collapse sweep —
/// distributed across `threads` workers. The cheap single-pair checks
/// and lexical-field phases run sequentially under one meter; the
/// sweep runs under its own shared envelope built from the same
/// budget (each phase is separately bounded). Completed reports are
/// identical to the sequential [`semantic_critique_governed`]'s.
pub fn semantic_critique_parallel_governed(
    budget: &Budget,
    threads: usize,
) -> Governed<SemanticReport> {
    let p = PaperVocab::new();
    let vehicles = vehicles_tbox(&p);
    let animals = animals_tbox(&p);
    let _span = budget
        .tracer()
        .span("core.semantic.parallel")
        .with("threads", threads);
    let sweep = find_isomorphic_pairs_parallel_governed(
        &vehicles,
        &animals,
        &p.voc,
        COLLAPSE_DEPTH,
        budget,
        threads,
    );
    let collapsed_pairs = match sweep {
        Governed::Completed(pairs) => pairs.len(),
        Governed::Exhausted { reason, .. } => {
            return Governed::Exhausted {
                reason,
                partial: None,
            }
        }
        Governed::Cancelled { .. } => return Governed::Cancelled { partial: None },
    };
    let mut meter = budget.meter();
    match semantic_rest_metered(&p, &vehicles, &animals, collapsed_pairs, &mut meter) {
        Ok(r) => Governed::Completed(r),
        Err(i) => Governed::from_interrupt(i, None),
    }
}

/// The non-sweep phases of the semantic critique, shared by the
/// sequential and parallel drivers.
fn semantic_rest_metered(
    p: &PaperVocab,
    vehicles: &summa_dl::tbox::TBox,
    animals: &summa_dl::tbox::TBox,
    collapsed_pairs: usize,
    meter: &mut Meter,
) -> Result<SemanticReport, Interrupt> {
    let repaired = animals_tbox_repaired(p);
    let car_equals_dog = structurally_indistinguishable_metered(
        vehicles,
        p.car,
        animals,
        p.dog,
        &p.voc,
        COLLAPSE_DEPTH,
        meter,
    )?
    .is_some();
    let repair_breaks_collapse = structurally_indistinguishable_metered(
        vehicles,
        p.car,
        &repaired,
        p.dog,
        &p.voc,
        COLLAPSE_DEPTH,
        meter,
    )?
    .is_none();

    meter.charge(1)?;
    meter.checkpoint()?;
    let (space, en, it) = doorknob_dataset();
    let doorknob_not_bijective = !Alignment::between(&space, &en, &it).is_bijective();

    meter.charge(1)?;
    meter.checkpoint()?;
    let age = age_adjectives_dataset();
    let pairings = [
        (&age.italian, &age.spanish),
        (&age.italian, &age.french),
        (&age.spanish, &age.french),
    ];
    let age_total_ambiguity = pairings
        .iter()
        .map(|(a, b)| Alignment::between(&age.space, a, b).total_ambiguity())
        .sum();
    let age_divisions_all_differ = pairings
        .iter()
        .all(|(a, b)| !summa_lexfield::field::same_division(&age.space, a, b));

    Ok(SemanticReport {
        car_equals_dog,
        repair_breaks_collapse,
        collapsed_pairs,
        doorknob_not_bijective,
        age_total_ambiguity,
        age_divisions_all_differ,
    })
}

fn semantic_critique_metered(meter: &mut Meter) -> Result<SemanticReport, Interrupt> {
    let p = PaperVocab::new();
    let vehicles = vehicles_tbox(&p);
    let animals = animals_tbox(&p);
    let repaired = animals_tbox_repaired(&p);

    let car_equals_dog = structurally_indistinguishable_metered(
        &vehicles,
        p.car,
        &animals,
        p.dog,
        &p.voc,
        COLLAPSE_DEPTH,
        meter,
    )?
    .is_some();
    let repair_breaks_collapse = structurally_indistinguishable_metered(
        &vehicles,
        p.car,
        &repaired,
        p.dog,
        &p.voc,
        COLLAPSE_DEPTH,
        meter,
    )?
    .is_none();
    let mut pairs = vec![];
    find_isomorphic_pairs_metered(
        &vehicles,
        &animals,
        &p.voc,
        COLLAPSE_DEPTH,
        meter,
        &mut pairs,
    )?;
    let collapsed_pairs = pairs.len();

    meter.charge(1)?;
    meter.checkpoint()?;
    let (space, en, it) = doorknob_dataset();
    let doorknob_not_bijective = !Alignment::between(&space, &en, &it).is_bijective();

    meter.charge(1)?;
    meter.checkpoint()?;
    let age = age_adjectives_dataset();
    let pairings = [
        (&age.italian, &age.spanish),
        (&age.italian, &age.french),
        (&age.spanish, &age.french),
    ];
    let age_total_ambiguity = pairings
        .iter()
        .map(|(a, b)| Alignment::between(&age.space, a, b).total_ambiguity())
        .sum();
    let age_divisions_all_differ = pairings.iter().all(|(a, b)| {
        !summa_lexfield::field::same_division(&age.space, a, b)
    });

    Ok(SemanticReport {
        car_equals_dog,
        repair_breaks_collapse,
        collapsed_pairs,
        doorknob_not_bijective,
        age_total_ambiguity,
        age_divisions_all_differ,
    })
}

/// The findings of the §3–4 pragmatic critique.
#[derive(Debug, Clone)]
pub struct PragmaticReport {
    /// Number of contexts examined.
    pub n_contexts: usize,
    /// Distinct interpretations of the one text.
    pub n_distinct_meanings: usize,
    /// Mean pairwise Jaccard distance between interpretations.
    pub mean_meaning_distance: f64,
    /// Mean loss when the author's (door) reading is frozen as *the*
    /// encoding — the death of the reader, quantified.
    pub encoding_loss: f64,
}

/// §3–4 — run the situated-interpretation analysis on the paper's
/// "trespassers will be prosecuted" example.
pub fn pragmatic_critique() -> PragmaticReport {
    pragmatic_critique_governed(&Budget::unlimited())
        .expect_completed("unlimited budget always completes")
}

/// §3–4 under a resource envelope, checkpointing between the variance
/// and encoding-loss phases. No partial report on interrupt — the two
/// numbers describe the same experiment.
pub fn pragmatic_critique_governed(budget: &Budget) -> Governed<PragmaticReport> {
    let mut meter = budget.meter();
    let _span = meter.span("core.pragmatic");
    match pragmatic_critique_metered(&mut meter) {
        Ok(r) => Governed::Completed(r),
        Err(i) => Governed::from_interrupt(i, None),
    }
}

fn pragmatic_critique_metered(meter: &mut Meter) -> Result<PragmaticReport, Interrupt> {
    meter.charge(1)?;
    meter.checkpoint()?;
    let text = trespassers_sign();
    let contexts = all_contexts();
    let refs: Vec<&summa_hermeneutic::context::Context> = contexts.iter().collect();
    let variance = MeaningVariance::across(&text, &refs);
    meter.charge(1)?;
    meter.checkpoint()?;
    let frozen = interpret(&text, &contexts[0]); // the door reading
    let loss = encoding_loss(&text, &frozen, &refs);
    Ok(PragmaticReport {
        n_contexts: contexts.len(),
        n_distinct_meanings: variance.n_distinct,
        mean_meaning_distance: variance.mean_jaccard_distance,
        encoding_loss: loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definitions::Verdict;

    #[test]
    fn syntactic_matrix_reproduces_the_overbreadth_claims() {
        let m = syntactic_critique();
        // The paper: "many things, from a C program to a very well
        // structured grocery list, to a tax return form would qualify."
        for artifact in ["grocery list", "C program", "tax return form", "tautology set"] {
            assert!(
                m.admitted(artifact, "Guarino (abstracted)"),
                "{artifact} must qualify once the language is abstracted"
            );
        }
        // The structural definition admits only the real signature.
        assert_eq!(m.admission_count("Bench-Capon & Malcolm"), 1);
        // The functional definition decides nothing without a telos.
        for a in &m.artifacts {
            assert_eq!(
                m.judgment(a, "Gruber (functional)").unwrap().verdict,
                Verdict::Undecidable
            );
        }
        // Strictness is monotone: exact ⊆ approximate ⊆ abstracted.
        let exact = m.admission_count("Guarino (exact)");
        let approx = m.admission_count("Guarino (approximate)");
        let abstracted = m.admission_count("Guarino (abstracted)");
        assert!(exact <= approx && approx <= abstracted);
    }

    #[test]
    fn semantic_report_matches_the_paper() {
        let r = semantic_critique();
        assert!(r.car_equals_dog);
        assert!(r.repair_breaks_collapse);
        assert!(r.collapsed_pairs > 0);
        assert!(r.doorknob_not_bijective);
        assert!(r.age_total_ambiguity > 0);
        assert!(r.age_divisions_all_differ);
    }

    #[test]
    fn pragmatic_report_shows_reader_dependence() {
        let r = pragmatic_critique();
        assert_eq!(r.n_contexts, 4);
        assert_eq!(r.n_distinct_meanings, 4);
        assert!(r.mean_meaning_distance > 0.5);
        assert!(r.encoding_loss > 0.0);
    }

    #[test]
    fn governed_matrix_records_spend_per_cell() {
        let m = syntactic_critique_governed(&Budget::unlimited())
            .expect_completed("unlimited");
        assert_eq!(m.unknown_count(), 0);
        for row in &m.cells {
            for j in row {
                assert!(j.spend.is_some(), "every metered cell records spend");
            }
        }
        assert!(m.total_spend().steps >= (m.artifacts.len() * m.definitions.len()) as u64);
        assert!(!m.render_spend().is_empty());
    }

    #[test]
    fn governed_matrix_degrades_to_complete_rows() {
        // Six definitions per artifact: a 7-step budget judges at most
        // one full row before tripping.
        let g = syntactic_critique_governed(&Budget::new().with_steps(7));
        match g {
            Governed::Exhausted { partial, .. } => {
                let m = partial.expect("partial matrix available");
                assert!(m.artifacts.len() <= 1);
                assert_eq!(m.definitions.len(), 6);
                for row in &m.cells {
                    assert_eq!(row.len(), m.definitions.len());
                }
            }
            other => panic!("expected exhaustion, got {}", other.status()),
        }
    }

    #[test]
    fn poisoned_cell_degrades_to_unknown() {
        struct PanickingDefinition;
        impl crate::definitions::Definition for PanickingDefinition {
            fn name(&self) -> &'static str {
                "panicking judge"
            }
            fn admits(
                &self,
                _artifact: &crate::corpus::Artifact,
                _telos: Option<crate::definitions::Telos>,
            ) -> crate::definitions::Judgment {
                panic!("deliberately poisoned");
            }
        }
        let corpus = crate::corpus::standard_corpus();
        let mut meter = Budget::unlimited().meter();
        let j = super::judge_cell(&PanickingDefinition, &corpus[0], &mut meter)
            .expect("panic is absorbed, not an interrupt");
        assert_eq!(j.verdict, crate::definitions::Verdict::Unknown);
        assert!(j.reason.contains("deliberately poisoned"));
        assert!(j.spend.is_some());
    }

    #[test]
    fn governed_semantic_and_pragmatic_critiques_degrade() {
        assert!(semantic_critique_governed(&Budget::unlimited()).is_completed());
        assert!(pragmatic_critique_governed(&Budget::unlimited()).is_completed());
        let starved = semantic_critique_governed(&Budget::new().with_steps(3));
        assert!(matches!(
            starved,
            Governed::Exhausted { partial: None, .. }
        ));
    }
}
