//! The artifact corpus of §2: "many things, from a C program to a
//! very well structured grocery list, to a tax return form would
//! qualify."

use summa_dl::prelude::{vehicles_tbox, PaperVocab, TBox, Vocabulary};
use summa_intensional::formula::{Formula, Language, TermRef};
use summa_intensional::prelude::Domain;
use summa_ontonomy::corpus::vehicles_signature;
use summa_ontonomy::signature::Ontonomy;

/// A partitioned vocabulary: (constants, functions, predicates), the
/// latter two with arities.
pub type Inventory = (Vec<String>, Vec<(String, usize)>, Vec<(String, usize)>);

/// An arbitrary symbolic artifact that a candidate definition of
/// "ontology" may or may not admit.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // corpus entries are few and cold
pub enum Artifact {
    /// A vocabulary partitioned into constants / functions /
    /// predicates (what the AI definition calls an ontology).
    SymbolInventory {
        /// Display name.
        name: String,
        /// Constant symbols.
        constants: Vec<String>,
        /// Function symbols with arity.
        functions: Vec<(String, usize)>,
        /// Predicate symbols with arity.
        predicates: Vec<(String, usize)>,
    },
    /// A finite first-order axiom set over a finite domain.
    AxiomSet {
        /// Display name.
        name: String,
        /// The language.
        lang: Language,
        /// The finite domain.
        domain: Domain,
        /// The axioms.
        axioms: Vec<Formula>,
    },
    /// A description-logic TBox.
    DlTBox {
        /// Display name.
        name: String,
        /// The TBox.
        tbox: TBox,
        /// Its vocabulary.
        voc: Vocabulary,
    },
    /// A Bench-Capon & Malcolm ontonomy.
    Bcm {
        /// Display name.
        name: String,
        /// The ontonomy `(Σ, A)`.
        ontonomy: Ontonomy,
    },
    /// Unstructured symbolic text (lines of it): the grocery list,
    /// the C program, the tax form.
    FreeText {
        /// Display name.
        name: String,
        /// The lines.
        lines: Vec<String>,
    },
}

impl Artifact {
    /// The display name.
    pub fn name(&self) -> &str {
        match self {
            Artifact::SymbolInventory { name, .. }
            | Artifact::AxiomSet { name, .. }
            | Artifact::DlTBox { name, .. }
            | Artifact::Bcm { name, .. }
            | Artifact::FreeText { name, .. } => name,
        }
    }

    /// A logical reading of the artifact, when one exists: a language,
    /// domain and axiom set. Free text is read "as well-structured as
    /// possible": each line becomes an atomic fact `listed(item)` over
    /// a domain with one element per line — exactly the charitable
    /// reading under which the paper notes the grocery list qualifies.
    pub fn as_axioms(&self) -> Option<(Language, Domain, Vec<Formula>)> {
        match self {
            Artifact::AxiomSet {
                lang,
                domain,
                axioms,
                ..
            } => Some((lang.clone(), domain.clone(), axioms.clone())),
            Artifact::FreeText { lines, .. } => {
                let mut lang = Language::new();
                let mut domain = Domain::new();
                let listed = lang.predicate("listed", 1);
                let mut axioms = vec![];
                for line in lines {
                    let c = lang.constant(line);
                    domain.elem(line);
                    axioms.push(Formula::Pred(listed, vec![TermRef::Const(c)]));
                }
                Some((lang, domain, axioms))
            }
            _ => None,
        }
    }

    /// A symbol-inventory reading, when one exists.
    pub fn as_inventory(&self) -> Option<Inventory> {
        match self {
            Artifact::SymbolInventory {
                constants,
                functions,
                predicates,
                ..
            } => Some((constants.clone(), functions.clone(), predicates.clone())),
            Artifact::AxiomSet { lang, .. } => Some((
                lang.constants().map(|c| lang.constant_name(c).to_string()).collect(),
                vec![],
                lang.predicates()
                    .map(|p| (lang.predicate_name(p).to_string(), lang.arity(p)))
                    .collect(),
            )),
            Artifact::DlTBox { tbox, voc, .. } => Some((
                vec![],
                vec![],
                tbox.atoms()
                    .iter()
                    .map(|&a| (voc.concept_name(a).to_string(), 1))
                    .chain(tbox.roles().iter().map(|&r| (voc.role_name(r).to_string(), 2)))
                    .collect(),
            )),
            _ => None,
        }
    }
}

/// Provenance notes shown alongside corpus entries in reports.
#[derive(Debug, Clone)]
pub struct CorpusNote {
    /// Artifact name.
    pub name: String,
    /// Where in the paper it comes from.
    pub source: String,
}

/// The paper's §2 examples plus the §3 structures, ready to judge.
pub fn standard_corpus() -> Vec<Artifact> {
    let mut out = vec![];

    // "a very well structured grocery list"
    out.push(Artifact::FreeText {
        name: "grocery list".into(),
        lines: vec![
            "olive_oil".into(),
            "wine".into(),
            "bread".into(),
            "parmigiano".into(),
        ],
    });

    // "a C program"
    out.push(Artifact::FreeText {
        name: "C program".into(),
        lines: vec![
            "int main(void) {".into(),
            "  printf(\"hello\\n\");".into(),
            "  return 0;".into(),
            "}".into(),
        ],
    });

    // "a tax return form"
    out.push(Artifact::FreeText {
        name: "tax return form".into(),
        lines: vec![
            "line_1_wages".into(),
            "line_2_interest".into(),
            "line_3_total".into(),
        ],
    });

    // "any set of tautologies" — over a non-trivial language, so the
    // tautology constrains nothing while the model space stays > 1.
    {
        let mut lang = Language::new();
        lang.predicate("p", 1);
        let mut domain = Domain::new();
        domain.elem("something");
        out.push(Artifact::AxiomSet {
            name: "tautology set".into(),
            lang,
            domain,
            axioms: vec![Formula::tautology()],
        });
    }

    // A genuinely contradictory axiom set (admitted nowhere).
    {
        let mut lang = Language::new();
        let p = lang.predicate("p", 1);
        let c = lang.constant("c");
        let mut domain = Domain::new();
        domain.elem("c");
        let pc = Formula::Pred(p, vec![TermRef::Const(c)]);
        out.push(Artifact::AxiomSet {
            name: "contradiction".into(),
            lang,
            domain,
            axioms: vec![pc.clone(), Formula::not(pc)],
        });
    }

    // The AI-style symbol inventory [10].
    out.push(Artifact::SymbolInventory {
        name: "blocks-world inventory".into(),
        constants: vec!["a".into(), "b".into(), "c".into(), "d".into()],
        functions: vec![("top_of".into(), 1)],
        predicates: vec![("above".into(), 2), ("on_table".into(), 1)],
    });

    // The paper's structure (4) as a DL TBox.
    {
        let p = PaperVocab::new();
        out.push(Artifact::DlTBox {
            name: "vehicles TBox (4)".into(),
            tbox: vehicles_tbox(&p),
            voc: p.voc,
        });
    }

    // The same, as a Bench-Capon & Malcolm ontonomy.
    out.push(Artifact::Bcm {
        name: "vehicles BCM ontonomy".into(),
        ontonomy: vehicles_signature()
            .expect("the vehicles signature is well-formed")
            .ontonomy,
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_papers_examples() {
        let c = standard_corpus();
        let names: Vec<&str> = c.iter().map(Artifact::name).collect();
        for expected in [
            "grocery list",
            "C program",
            "tax return form",
            "tautology set",
            "vehicles TBox (4)",
            "vehicles BCM ontonomy",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert!(c.len() >= 8);
    }

    #[test]
    fn free_text_reads_as_satisfiable_axioms() {
        let c = standard_corpus();
        let grocery = c.iter().find(|a| a.name() == "grocery list").unwrap();
        let (lang, domain, axioms) = grocery.as_axioms().unwrap();
        assert_eq!(axioms.len(), 4);
        assert_eq!(domain.len(), 4);
        assert_eq!(lang.n_predicates(), 1);
    }

    #[test]
    fn inventory_reading_of_axiom_sets() {
        let c = standard_corpus();
        let taut = c.iter().find(|a| a.name() == "tautology set").unwrap();
        let (consts, funcs, preds) = taut.as_inventory().unwrap();
        assert!(consts.is_empty() && funcs.is_empty());
        assert_eq!(preds, vec![("p".to_string(), 1)]);
        let blocks = c
            .iter()
            .find(|a| a.name() == "blocks-world inventory")
            .unwrap();
        let (consts, funcs, preds) = blocks.as_inventory().unwrap();
        assert_eq!(consts.len(), 4);
        assert_eq!(funcs.len(), 1);
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn dl_tbox_yields_inventory_not_axioms() {
        let c = standard_corpus();
        let tb = c.iter().find(|a| a.name() == "vehicles TBox (4)").unwrap();
        assert!(tb.as_inventory().is_some());
        assert!(tb.as_axioms().is_none());
    }
}
