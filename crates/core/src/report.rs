//! Rendering of admission matrices and critique reports.

use crate::definitions::{Judgment, Verdict};
use serde::Serialize;

/// The artifact × definition admission matrix of the syntactic
/// critique (experiment E3).
#[derive(Debug, Clone, Serialize)]
pub struct AdmissionMatrix {
    /// Artifact names (rows).
    pub artifacts: Vec<String>,
    /// Definition names (columns).
    pub definitions: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Judgment>>,
}

impl AdmissionMatrix {
    /// Was `artifact` admitted by `definition`?
    pub fn admitted(&self, artifact: &str, definition: &str) -> bool {
        self.judgment(artifact, definition)
            .map(|j| j.verdict == Verdict::Admitted)
            .unwrap_or(false)
    }

    /// Fetch one judgment.
    pub fn judgment(&self, artifact: &str, definition: &str) -> Option<&Judgment> {
        let r = self.artifacts.iter().position(|a| a == artifact)?;
        let c = self.definitions.iter().position(|d| d == definition)?;
        self.cells.get(r)?.get(c)
    }

    /// How many artifacts a definition admits.
    pub fn admission_count(&self, definition: &str) -> usize {
        let Some(c) = self.definitions.iter().position(|d| d == definition) else {
            return 0;
        };
        self.cells
            .iter()
            .filter(|row| row[c].verdict == Verdict::Admitted)
            .count()
    }

    /// Render as a fixed-width text table (✓ admitted, ✗ rejected,
    /// ? undecidable).
    pub fn render(&self) -> String {
        let mark = |v: Verdict| match v {
            Verdict::Admitted => "✓",
            Verdict::Rejected => "✗",
            Verdict::Undecidable => "?",
        };
        let mut out = String::new();
        out.push_str(&format!("{:<26}", "artifact \\ definition"));
        for d in &self.definitions {
            out.push_str(&format!("{:>24}", d));
        }
        out.push('\n');
        for (i, a) in self.artifacts.iter().enumerate() {
            out.push_str(&format!("{a:<26}"));
            for j in &self.cells[i] {
                out.push_str(&format!("{:>24}", mark(j.verdict)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdmissionMatrix {
        AdmissionMatrix {
            artifacts: vec!["a".into()],
            definitions: vec!["d1".into(), "d2".into()],
            cells: vec![vec![
                Judgment {
                    verdict: Verdict::Admitted,
                    reason: "yes".into(),
                },
                Judgment {
                    verdict: Verdict::Undecidable,
                    reason: "depends".into(),
                },
            ]],
        }
    }

    #[test]
    fn lookup_and_counts() {
        let m = tiny();
        assert!(m.admitted("a", "d1"));
        assert!(!m.admitted("a", "d2"));
        assert!(!m.admitted("missing", "d1"));
        assert_eq!(m.admission_count("d1"), 1);
        assert_eq!(m.admission_count("d2"), 0);
        assert_eq!(m.judgment("a", "d2").unwrap().reason, "depends");
    }

    #[test]
    fn render_marks_cells() {
        let s = tiny().render();
        assert!(s.contains('✓'));
        assert!(s.contains('?'));
        assert!(s.contains("d1"));
    }
}
