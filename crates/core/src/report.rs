//! Rendering of admission matrices and critique reports.

use crate::definitions::{Judgment, Verdict};

/// The artifact × definition admission matrix of the syntactic
/// critique (experiment E3).
#[derive(Debug, Clone)]
pub struct AdmissionMatrix {
    /// Artifact names (rows).
    pub artifacts: Vec<String>,
    /// Definition names (columns).
    pub definitions: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Judgment>>,
}

impl AdmissionMatrix {
    /// Was `artifact` admitted by `definition`?
    pub fn admitted(&self, artifact: &str, definition: &str) -> bool {
        self.judgment(artifact, definition)
            .map(|j| j.verdict == Verdict::Admitted)
            .unwrap_or(false)
    }

    /// Fetch one judgment.
    pub fn judgment(&self, artifact: &str, definition: &str) -> Option<&Judgment> {
        let r = self.artifacts.iter().position(|a| a == artifact)?;
        let c = self.definitions.iter().position(|d| d == definition)?;
        self.cells.get(r)?.get(c)
    }

    /// How many artifacts a definition admits.
    pub fn admission_count(&self, definition: &str) -> usize {
        let Some(c) = self.definitions.iter().position(|d| d == definition) else {
            return 0;
        };
        self.cells
            .iter()
            .filter(|row| row[c].verdict == Verdict::Admitted)
            .count()
    }

    /// How many cells degraded to [`Verdict::Unknown`] (panicked or
    /// resource-starved judges).
    pub fn unknown_count(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|j| j.verdict == Verdict::Unknown)
            .count()
    }

    /// Total resources spent across all metered cells (cells without
    /// spend data contribute nothing).
    pub fn total_spend(&self) -> summa_guard::Spend {
        let mut total = summa_guard::Spend::default();
        for j in self.cells.iter().flatten() {
            if let Some(s) = &j.spend {
                total.absorb(s);
            }
        }
        total
    }

    /// Render per-cell resource spend as `artifact × definition:
    /// spend` lines, listing only metered cells.
    pub fn render_spend(&self) -> String {
        let mut out = String::new();
        for (i, a) in self.artifacts.iter().enumerate() {
            for (c, d) in self.definitions.iter().enumerate() {
                if let Some(s) = self.cells[i][c].spend.as_ref() {
                    out.push_str(&format!("{a} × {d}: {s}\n"));
                }
            }
        }
        out
    }

    /// Render the matrix followed by an observability appendix: the
    /// span tree and metrics of `tracer`'s current snapshot. With
    /// tracing disabled the appendix is omitted and the output equals
    /// [`render`](Self::render) — reports never change shape just
    /// because observability is off.
    pub fn render_traced(&self, tracer: &summa_guard::obs::Tracer) -> String {
        let mut out = self.render();
        out.push_str(&render_trace_appendix(tracer));
        out
    }

    /// Render as a fixed-width text table (✓ admitted, ✗ rejected,
    /// ? undecidable, ⊘ unknown — the judge itself failed).
    pub fn render(&self) -> String {
        let mark = |v: Verdict| match v {
            Verdict::Admitted => "✓",
            Verdict::Rejected => "✗",
            Verdict::Undecidable => "?",
            Verdict::Unknown => "⊘",
        };
        let mut out = String::new();
        out.push_str(&format!("{:<26}", "artifact \\ definition"));
        for d in &self.definitions {
            out.push_str(&format!("{:>24}", d));
        }
        out.push('\n');
        for (i, a) in self.artifacts.iter().enumerate() {
            out.push_str(&format!("{a:<26}"));
            for j in &self.cells[i] {
                out.push_str(&format!("{:>24}", mark(j.verdict)));
            }
            out.push('\n');
        }
        out
    }
}

/// Render a tracer's snapshot as a report appendix: the human-readable
/// span tree plus the metrics table, under an "observability" heading.
/// Empty when the tracer is disabled or recorded nothing, so callers
/// can append it unconditionally.
pub fn render_trace_appendix(tracer: &summa_guard::obs::Tracer) -> String {
    let snap = tracer.snapshot();
    if snap.spans.is_empty() && snap.counters.is_empty() && snap.histograms.is_empty() {
        return String::new();
    }
    let mut out = String::from("\n== observability ==\n");
    out.push_str(&snap.text_tree());
    out.push('\n');
    out.push_str(&snap.metrics_text());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdmissionMatrix {
        AdmissionMatrix {
            artifacts: vec!["a".into()],
            definitions: vec!["d1".into(), "d2".into()],
            cells: vec![vec![
                Judgment {
                    verdict: Verdict::Admitted,
                    reason: "yes".into(),
                    spend: None,
                },
                Judgment {
                    verdict: Verdict::Undecidable,
                    reason: "depends".into(),
                    spend: None,
                },
            ]],
        }
    }

    #[test]
    fn lookup_and_counts() {
        let m = tiny();
        assert!(m.admitted("a", "d1"));
        assert!(!m.admitted("a", "d2"));
        assert!(!m.admitted("missing", "d1"));
        assert_eq!(m.admission_count("d1"), 1);
        assert_eq!(m.admission_count("d2"), 0);
        assert_eq!(m.judgment("a", "d2").unwrap().reason, "depends");
    }

    #[test]
    fn render_marks_cells() {
        let s = tiny().render();
        assert!(s.contains('✓'));
        assert!(s.contains('?'));
        assert!(s.contains("d1"));
    }

    #[test]
    fn unknown_cells_are_counted_and_marked() {
        let mut m = tiny();
        m.cells[0][1] = Judgment::unknown("judge panicked");
        assert_eq!(m.unknown_count(), 1);
        assert!(m.render().contains('⊘'));
        assert!(!m.admitted("a", "d2"));
    }

    #[test]
    fn trace_appendix_is_empty_when_disabled_and_present_when_traced() {
        use summa_guard::obs::Tracer;
        let m = tiny();
        let off = Tracer::disabled();
        assert_eq!(m.render_traced(&off), m.render());
        let on = Tracer::enabled();
        {
            let _s = on.span("report.test");
        }
        let s = m.render_traced(&on);
        assert!(s.contains("== observability =="));
        assert!(s.contains("report.test"));
    }

    #[test]
    fn spend_is_aggregated_and_rendered() {
        use std::time::Duration;
        let mut m = tiny();
        m.cells[0][0] = m.cells[0][0].clone().with_spend(summa_guard::Spend {
            steps: 3,
            elapsed: Duration::from_millis(2),
            peak_memory: 7,
            ..summa_guard::Spend::default()
        });
        m.cells[0][1] = m.cells[0][1].clone().with_spend(summa_guard::Spend {
            steps: 4,
            elapsed: Duration::from_millis(1),
            peak_memory: 2,
            ..summa_guard::Spend::default()
        });
        let total = m.total_spend();
        assert_eq!(total.steps, 7);
        assert_eq!(total.peak_memory, 7);
        assert_eq!(total.elapsed, Duration::from_millis(3));
        let s = m.render_spend();
        assert!(s.contains("a × d1:"));
        assert!(s.contains("a × d2:"));
    }
}
