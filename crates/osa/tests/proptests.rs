//! Property-based tests for the order-sorted algebra substrate.

use proptest::prelude::*;
use summa_osa::prelude::*;

// ---------------------------------------------------------------------
// Sort posets: random DAGs (edges only from lower to higher index, so
// construction never cycles).
// ---------------------------------------------------------------------

fn arb_poset() -> impl Strategy<Value = SortPoset> {
    (2usize..8, proptest::collection::vec((0usize..8, 0usize..8), 0..12)).prop_map(
        |(n, raw_edges)| {
            let mut b = SortPosetBuilder::new();
            let sorts: Vec<SortId> = (0..n).map(|i| b.sort(&format!("S{i}"))).collect();
            for (i, j) in raw_edges {
                let (i, j) = (i % n, j % n);
                if i < j {
                    b.subsort(sorts[i], sorts[j]);
                }
            }
            b.finish().expect("index-ordered edges cannot cycle")
        },
    )
}

proptest! {
    #[test]
    fn poset_leq_is_reflexive(poset in arb_poset()) {
        for s in poset.sorts() {
            prop_assert!(poset.leq(s, s));
        }
    }

    #[test]
    fn poset_leq_is_transitive(poset in arb_poset()) {
        let sorts: Vec<SortId> = poset.sorts().collect();
        for &a in &sorts {
            for &b in &sorts {
                for &c in &sorts {
                    if poset.leq(a, b) && poset.leq(b, c) {
                        prop_assert!(poset.leq(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn poset_leq_is_antisymmetric(poset in arb_poset()) {
        let sorts: Vec<SortId> = poset.sorts().collect();
        for &a in &sorts {
            for &b in &sorts {
                if a != b {
                    prop_assert!(!(poset.leq(a, b) && poset.leq(b, a)));
                }
            }
        }
    }

    #[test]
    fn lubs_are_minimal_upper_bounds(poset in arb_poset()) {
        let sorts: Vec<SortId> = poset.sorts().collect();
        for &a in &sorts {
            for &b in &sorts {
                let lubs = poset.lubs(a, b);
                for &u in &lubs {
                    prop_assert!(poset.leq(a, u) && poset.leq(b, u));
                    // minimality: no other common upper bound strictly below u
                    for &v in &sorts {
                        if poset.leq(a, v) && poset.leq(b, v) {
                            prop_assert!(!poset.lt(v, u));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn least_element_is_a_lower_bound_of_the_set(poset in arb_poset()) {
        let sorts: Vec<SortId> = poset.sorts().collect();
        if sorts.len() >= 3 {
            let set = &sorts[..3];
            if let Some(least) = poset.least(set) {
                for &s in set {
                    prop_assert!(poset.leq(least, s));
                }
                prop_assert!(set.contains(&least));
            }
        }
    }

    #[test]
    fn same_component_is_an_equivalence(poset in arb_poset()) {
        let sorts: Vec<SortId> = poset.sorts().collect();
        for &a in &sorts {
            prop_assert!(poset.same_component(a, a));
            for &b in &sorts {
                prop_assert_eq!(poset.same_component(a, b), poset.same_component(b, a));
                if poset.comparable(a, b) {
                    prop_assert!(poset.same_component(a, b));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Peano rewriting: ground equality is a congruence; normal forms are
// canonical.
// ---------------------------------------------------------------------

struct Peano {
    rs: RewriteSystem,
    zero: OpId,
    succ: OpId,
    plus: OpId,
}

fn peano() -> Peano {
    let mut b = SignatureBuilder::new();
    let nat = b.sort("Nat");
    let zero = b.op("zero", &[], nat);
    let succ = b.op("succ", &[nat], nat);
    let plus = b.op("plus", &[nat, nat], nat);
    let sig = b.finish().expect("ok");
    let mut th = Theory::new(sig);
    let x = Term::var("x", nat);
    let y = Term::var("y", nat);
    th.add_equation(Equation::new(
        Term::app(plus, vec![Term::constant(zero), y.clone()]),
        y.clone(),
    ))
    .expect("valid");
    th.add_equation(Equation::new(
        Term::app(plus, vec![Term::app(succ, vec![x.clone()]), y.clone()]),
        Term::app(succ, vec![Term::app(plus, vec![x, y])]),
    ))
    .expect("valid");
    Peano {
        rs: RewriteSystem::from_theory(&th).expect("orientable"),
        zero,
        succ,
        plus,
    }
}

/// A random ground Peano term together with its numeric value.
fn arb_nat_term() -> impl Strategy<Value = (TermSpec, u32)> {
    arb_term_spec(3)
}

#[derive(Debug, Clone)]
enum TermSpec {
    Num(u32),
    Plus(Box<TermSpec>, Box<TermSpec>),
}

fn arb_term_spec(depth: usize) -> BoxedStrategy<(TermSpec, u32)> {
    if depth == 0 {
        (0u32..5)
            .prop_map(|n| (TermSpec::Num(n), n))
            .boxed()
    } else {
        prop_oneof![
            (0u32..5).prop_map(|n| (TermSpec::Num(n), n)),
            (arb_term_spec(depth - 1), arb_term_spec(depth - 1)).prop_map(|(a, b)| {
                let v = a.1 + b.1;
                (TermSpec::Plus(Box::new(a.0), Box::new(b.0)), v)
            }),
        ]
        .boxed()
    }
}

impl TermSpec {
    fn build(&self, p: &Peano) -> Term {
        match self {
            TermSpec::Num(n) => {
                let mut t = Term::constant(p.zero);
                for _ in 0..*n {
                    t = Term::app(p.succ, vec![t]);
                }
                t
            }
            TermSpec::Plus(a, b) => Term::app(p.plus, vec![a.build(p), b.build(p)]),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_forms_compute_the_value((spec, value) in arb_nat_term()) {
        let p = peano();
        let t = spec.build(&p);
        let nf = p.rs.normal_form(&t, 100_000).expect("terminates");
        // The normal form is succ^value(zero): depth = value + 1.
        prop_assert_eq!(nf.depth(), value as usize + 1);
        prop_assert!(nf.is_ground());
        // Idempotence.
        prop_assert_eq!(p.rs.normal_form(&nf, 100_000).expect("terminates"), nf);
    }

    #[test]
    fn ground_equality_matches_arithmetic(
        (s1, v1) in arb_nat_term(),
        (s2, v2) in arb_nat_term(),
    ) {
        let p = peano();
        let t1 = s1.build(&p);
        let t2 = s2.build(&p);
        let eq = p.rs.ground_equal(&t1, &t2, 100_000).expect("terminates");
        prop_assert_eq!(eq, v1 == v2);
    }

    #[test]
    fn addition_is_commutative_in_the_initial_algebra(
        (s1, _) in arb_nat_term(),
        (s2, _) in arb_nat_term(),
    ) {
        let p = peano();
        let a = s1.build(&p);
        let b = s2.build(&p);
        let ab = Term::app(p.plus, vec![a.clone(), b.clone()]);
        let ba = Term::app(p.plus, vec![b, a]);
        prop_assert!(p.rs.ground_equal(&ab, &ba, 100_000).expect("terminates"));
    }
}

// ---------------------------------------------------------------------
// Congruence closure: must agree with rewriting on Peano ground
// equalities, and must be a congruence.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn congruence_closure_agrees_with_rewriting(
        (s1, v1) in arb_nat_term(),
        (s2, v2) in arb_nat_term(),
        (s3, v3) in arb_nat_term(),
    ) {
        let p = peano();
        let mut cc = summa_osa::congruence::CongruenceClosure::new(
            p.rs.signature().clone(),
        );
        // Teach the closure the ground instances that rewriting proves.
        let terms = [(s1.build(&p), v1), (s2.build(&p), v2), (s3.build(&p), v3)];
        for (t, _) in &terms {
            let nf = p.rs.normal_form(t, 100_000).expect("terminates");
            cc.assert_equal(t, &nf);
        }
        // Now closure equality must coincide with value equality.
        for (a, va) in &terms {
            for (b, vb) in &terms {
                prop_assert_eq!(cc.are_equal(a, b), va == vb);
            }
        }
    }

    #[test]
    fn congruence_closure_is_a_congruence((spec, _) in arb_nat_term()) {
        let p = peano();
        let mut cc = summa_osa::congruence::CongruenceClosure::new(
            p.rs.signature().clone(),
        );
        let t = spec.build(&p);
        let zero = Term::constant(p.zero);
        cc.assert_equal(&t, &zero);
        // succ(t) = succ(zero) must follow by congruence.
        let st = Term::app(p.succ, vec![t.clone()]);
        let sz = Term::app(p.succ, vec![zero.clone()]);
        prop_assert!(cc.are_equal(&st, &sz));
        // And plus(t, t) = plus(zero, zero).
        let ptt = Term::app(p.plus, vec![t.clone(), t]);
        let pzz = Term::app(p.plus, vec![zero.clone(), zero]);
        prop_assert!(cc.are_equal(&ptt, &pzz));
    }
}

// ---------------------------------------------------------------------
// Matching and unification.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matching_subject_against_itself_yields_empty_or_consistent(
        (spec, _) in arb_nat_term()
    ) {
        let p = peano();
        let t = spec.build(&p);
        // A ground pattern matches only itself, with the empty
        // substitution.
        let m = summa_osa::term::match_term(p.rs.signature(), &t, &t).expect("matches");
        prop_assert!(m.is_empty());
    }

    #[test]
    fn unification_produces_a_unifier((spec, _) in arb_nat_term()) {
        let p = peano();
        let nat = p.rs.signature().poset().by_name("Nat").expect("sort");
        let t = spec.build(&p);
        // x unifies with any ground term of its sort.
        let x = Term::var("x", nat);
        let mgu = summa_osa::term::unify(p.rs.signature(), &x, &t).expect("unifies");
        prop_assert_eq!(x.substitute(&mgu), t);
    }

    #[test]
    fn pattern_with_variable_matches_its_instances(
        (spec, _) in arb_nat_term(),
        (inner, _) in arb_nat_term(),
    ) {
        let p = peano();
        let nat = p.rs.signature().poset().by_name("Nat").expect("sort");
        // pattern plus(x, t2), subject plus(t1, t2): must match with
        // x ↦ t1.
        let t1 = spec.build(&p);
        let t2 = inner.build(&p);
        let pat = Term::app(p.plus, vec![Term::var("x", nat), t2.clone()]);
        let subj = Term::app(p.plus, vec![t1.clone(), t2]);
        let m = summa_osa::term::match_term(p.rs.signature(), &pat, &subj).expect("matches");
        prop_assert_eq!(m.get("x"), Some(&t1));
        prop_assert_eq!(pat.substitute(&m), subj);
    }
}
