//! Order-sorted term rewriting.
//!
//! Equations whose variables all occur on the left are oriented
//! left-to-right into rewrite rules. The engine provides normal forms
//! (leftmost-innermost), joinability tests, critical-pair computation
//! via syntactic unification, and a bounded local-confluence check —
//! everything needed to decide ground equality in the small equational
//! theories that the ontonomy layer builds.

use crate::equation::Equation;
use crate::error::{OsaError, Result};
use crate::signature::Signature;
use crate::term::{match_term, unify, Term};
use crate::theory::Theory;
use summa_guard::{Budget, Governed, Interrupt, Meter};

/// A compiled order-sorted rewrite system.
#[derive(Debug, Clone)]
pub struct RewriteSystem {
    signature: Signature,
    rules: Vec<Equation>,
}

/// A critical pair `(s, t)` arising from overlapping two rules, with
/// the overlap position recorded for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPair {
    /// One side of the peak.
    pub left: Term,
    /// The other side of the peak.
    pub right: Term,
    /// Index of the outer rule.
    pub outer_rule: usize,
    /// Index of the inner rule.
    pub inner_rule: usize,
    /// Position in the outer lhs where the inner lhs was overlapped.
    pub position: Vec<usize>,
}

impl RewriteSystem {
    /// Orient every equation of `theory` left-to-right.
    ///
    /// Fails with [`OsaError::InvalidRule`] when an equation has a
    /// variable left-hand side or introduces variables on the right.
    pub fn from_theory(theory: &Theory) -> Result<Self> {
        let mut rules = vec![];
        for eq in theory.equations() {
            if !eq.is_rule() {
                return Err(OsaError::InvalidRule {
                    detail: format!(
                        "equation {} cannot be oriented left-to-right",
                        eq.display(theory.signature())
                    ),
                });
            }
            rules.push(eq.clone());
        }
        Ok(RewriteSystem {
            signature: theory.signature().clone(),
            rules,
        })
    }

    /// The signature rules are interpreted over.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The oriented rules.
    pub fn rules(&self) -> &[Equation] {
        &self.rules
    }

    /// One rewrite step at the outermost applicable position
    /// (leftmost-innermost search order). `None` when `t` is in normal
    /// form.
    pub fn step(&self, t: &Term) -> Option<Term> {
        // innermost: try children first
        if let Term::App { op, args } = t {
            for (i, a) in args.iter().enumerate() {
                if let Some(a2) = self.step(a) {
                    let mut args = args.clone();
                    args[i] = a2;
                    return Some(Term::App { op: *op, args });
                }
            }
        }
        for rule in &self.rules {
            if let Some(subst) = match_term(&self.signature, &rule.lhs, t) {
                return Some(rule.rhs.substitute(&subst));
            }
        }
        None
    }

    /// Rewrite to normal form, giving up after `budget` steps.
    pub fn normal_form(&self, t: &Term, budget: usize) -> Result<Term> {
        let mut cur = t.clone();
        for _ in 0..budget {
            match self.step(&cur) {
                Some(next) => cur = next,
                None => return Ok(cur),
            }
        }
        if self.step(&cur).is_none() {
            Ok(cur)
        } else {
            Err(OsaError::StepBudgetExceeded { budget })
        }
    }

    /// Metered normalization: every rewrite step charges the shared
    /// meter. On interrupt the error carries the partially rewritten
    /// term (every step taken so far was a valid `=_E` step, so the
    /// partial is equal to the input modulo the theory). Mirrors the
    /// legacy [`RewriteSystem::normal_form`] quirk: a term that happens
    /// to already be in normal form when the meter trips still counts
    /// as completed.
    pub fn normal_form_metered(
        &self,
        t: &Term,
        meter: &mut Meter,
    ) -> std::result::Result<Term, (Term, Interrupt)> {
        let mut span = meter.span("osa.rewrite.nf");
        let mut cur = t.clone();
        let mut steps = 0u64;
        loop {
            if let Err(i) = meter.charge(1) {
                span.record("steps", steps);
                if self.step(&cur).is_none() {
                    return Ok(cur);
                }
                span.record("interrupted", true);
                return Err((cur, i));
            }
            meter.count("osa.rewrite.step", 1);
            match self.step(&cur) {
                Some(next) => {
                    steps += 1;
                    cur = next;
                }
                None => {
                    span.record("steps", steps);
                    return Ok(cur);
                }
            }
        }
    }

    /// Budget-governed normalization. `Exhausted`/`Cancelled` carry the
    /// partially rewritten term — a theory-equal reduct of the input,
    /// not necessarily a normal form.
    pub fn normal_form_governed(&self, t: &Term, budget: &Budget) -> Governed<Term> {
        let mut meter = budget.meter();
        match self.normal_form_metered(t, &mut meter) {
            Ok(nf) => Governed::Completed(nf),
            Err((partial, i)) => Governed::from_interrupt(i, Some(partial)),
        }
    }

    /// Joinability: do `a` and `b` reach the same normal form within
    /// `budget` steps each?
    pub fn joinable(&self, a: &Term, b: &Term, budget: usize) -> Result<bool> {
        Ok(self.normal_form(a, budget)? == self.normal_form(b, budget)?)
    }

    /// Metered joinability over one shared meter.
    pub fn joinable_metered(
        &self,
        a: &Term,
        b: &Term,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Interrupt> {
        let na = self.normal_form_metered(a, meter).map_err(|(_, i)| i)?;
        let nb = self.normal_form_metered(b, meter).map_err(|(_, i)| i)?;
        Ok(na == nb)
    }

    /// Budget-governed ground equality. No meaningful partial verdict
    /// exists when normalization is cut short, so the partial is `None`.
    pub fn ground_equal_governed(
        &self,
        a: &Term,
        b: &Term,
        budget: &Budget,
    ) -> Governed<bool> {
        let mut meter = budget.meter();
        match self.joinable_metered(a, b, &mut meter) {
            Ok(eq) => Governed::Completed(eq),
            Err(i) => Governed::from_interrupt(i, None),
        }
    }

    /// Decide ground equality `a =_E b` for a confluent terminating
    /// system (sound always; complete under confluence + termination).
    pub fn ground_equal(&self, a: &Term, b: &Term, budget: usize) -> Result<bool> {
        self.joinable(a, b, budget)
    }

    /// All critical pairs between rules (including self-overlaps at
    /// non-root positions, and root overlaps of distinct rules).
    pub fn critical_pairs(&self) -> Vec<CriticalPair> {
        let mut out = vec![];
        for (i, outer) in self.rules.iter().enumerate() {
            let outer = outer.rename("_o");
            for (j, inner) in self.rules.iter().enumerate() {
                let inner = inner.rename("_i");
                for pos in outer.lhs.positions() {
                    let sub = outer.lhs.at(&pos).expect("position from enumeration");
                    if sub.is_var() {
                        continue; // variable overlaps are not critical
                    }
                    if i == j && pos.is_empty() {
                        continue; // trivial self-overlap at root
                    }
                    if let Some(mgu) = unify(&self.signature, sub, &inner.lhs) {
                        // Peak: outer.lhs·σ rewrites (a) by outer at root,
                        // (b) by inner at pos.
                        let peak = outer.lhs.substitute(&mgu);
                        let via_outer = outer.rhs.substitute(&mgu);
                        let via_inner = peak
                            .replace_at(&pos, inner.rhs.substitute(&mgu))
                            .expect("position valid in peak");
                        if via_outer != via_inner {
                            out.push(CriticalPair {
                                left: via_outer,
                                right: via_inner,
                                outer_rule: i,
                                inner_rule: j,
                                position: pos.clone(),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Bounded local-confluence check: every critical pair must be
    /// joinable within `budget` steps. For terminating systems this is
    /// confluence (Newman's lemma). Returns the first non-joinable pair
    /// as a witness, `None` when locally confluent.
    pub fn local_confluence_counterexample(
        &self,
        budget: usize,
    ) -> Result<Option<CriticalPair>> {
        for cp in self.critical_pairs() {
            if !self.joinable(&cp.left, &cp.right, budget)? {
                return Ok(Some(cp));
            }
        }
        Ok(None)
    }

    /// Convenience wrapper around
    /// [`RewriteSystem::local_confluence_counterexample`].
    pub fn is_locally_confluent(&self, budget: usize) -> Result<bool> {
        Ok(self.local_confluence_counterexample(budget)?.is_none())
    }

    /// Budget-governed local-confluence check: all critical-pair
    /// joinability tests share one meter. The partial on interrupt is
    /// the verdict over the pairs examined so far (`None` = no
    /// counterexample *yet*), which is only a lower bound on the truth.
    pub fn local_confluence_counterexample_governed(
        &self,
        budget: &Budget,
    ) -> Governed<Option<CriticalPair>> {
        let mut meter = budget.meter();
        let _span = meter.span("osa.confluence");
        for cp in self.critical_pairs() {
            match self.joinable_metered(&cp.left, &cp.right, &mut meter) {
                Ok(true) => {}
                Ok(false) => return Governed::Completed(Some(cp)),
                Err(i) => return Governed::from_interrupt(i, Some(None)),
            }
        }
        Governed::Completed(None)
    }

    /// Enumerate all ground normal forms of a sort reachable from the
    /// signature's constants and constructors up to a depth bound —
    /// used by the ground algebra construction.
    pub fn ground_terms_of_sort(
        &self,
        sort: crate::sort::SortId,
        max_depth: usize,
        max_terms: usize,
    ) -> Vec<Term> {
        // Iterative deepening over applications.
        let mut by_sort: Vec<Vec<Term>> = vec![vec![]; self.signature.poset().len()];
        for depth in 1..=max_depth {
            let mut new_terms: Vec<(usize, Term)> = vec![];
            for (op, decl) in self.signature.ops() {
                if decl.args.is_empty() {
                    if depth == 1 {
                        new_terms.push((decl.result.index(), Term::constant(op)));
                    }
                    continue;
                }
                // Cartesian product of existing terms for each arg sort.
                let choices: Vec<Vec<Term>> = decl
                    .args
                    .iter()
                    .map(|&s| {
                        self.signature
                            .poset()
                            .lower_bounds(s)
                            .into_iter()
                            .flat_map(|ls| by_sort[ls.index()].iter().cloned())
                            .collect()
                    })
                    .collect();
                if choices.iter().any(Vec::is_empty) {
                    continue;
                }
                let mut idx = vec![0usize; choices.len()];
                loop {
                    let args: Vec<Term> =
                        idx.iter().zip(&choices).map(|(&i, c)| c[i].clone()).collect();
                    let t = Term::app(op, args);
                    if t.depth() == depth {
                        new_terms.push((decl.result.index(), t));
                    }
                    // advance the odometer
                    let mut k = 0;
                    loop {
                        if k == idx.len() {
                            break;
                        }
                        idx[k] += 1;
                        if idx[k] < choices[k].len() {
                            break;
                        }
                        idx[k] = 0;
                        k += 1;
                    }
                    if k == idx.len() {
                        break;
                    }
                }
            }
            for (si, t) in new_terms {
                if !by_sort[si].contains(&t) {
                    by_sort[si].push(t);
                }
                if by_sort.iter().map(Vec::len).sum::<usize>() > max_terms {
                    break;
                }
            }
        }
        // Collect everything whose least sort is ≤ sort.
        let mut out: Vec<Term> = vec![];
        for ls in self.signature.poset().lower_bounds(sort) {
            for t in &by_sort[ls.index()] {
                if !out.contains(t) {
                    out.push(t.clone());
                }
            }
        }
        out.truncate(max_terms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;

    /// Peano naturals with addition.
    fn peano() -> (Theory, crate::sort::SortId, crate::signature::OpId, crate::signature::OpId, crate::signature::OpId) {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let zero = b.op("zero", &[], nat);
        let succ = b.op("succ", &[nat], nat);
        let plus = b.op("plus", &[nat, nat], nat);
        let sig = b.finish().unwrap();
        let mut th = Theory::new(sig);
        let x = Term::var("x", nat);
        let y = Term::var("y", nat);
        th.add_equation(Equation::new(
            Term::app(plus, vec![Term::constant(zero), y.clone()]),
            y.clone(),
        ))
        .unwrap();
        th.add_equation(Equation::new(
            Term::app(plus, vec![Term::app(succ, vec![x.clone()]), y.clone()]),
            Term::app(succ, vec![Term::app(plus, vec![x.clone(), y.clone()])]),
        ))
        .unwrap();
        (th, nat, zero, succ, plus)
    }

    fn num(n: usize, zero: crate::signature::OpId, succ: crate::signature::OpId) -> Term {
        let mut t = Term::constant(zero);
        for _ in 0..n {
            t = Term::app(succ, vec![t]);
        }
        t
    }

    #[test]
    fn addition_normalizes() {
        let (th, _nat, zero, succ, plus) = peano();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let t = Term::app(plus, vec![num(2, zero, succ), num(3, zero, succ)]);
        let nf = rs.normal_form(&t, 100).unwrap();
        assert_eq!(nf, num(5, zero, succ));
    }

    #[test]
    fn normal_form_is_idempotent() {
        let (th, _nat, zero, succ, plus) = peano();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let t = Term::app(plus, vec![num(1, zero, succ), num(1, zero, succ)]);
        let nf = rs.normal_form(&t, 100).unwrap();
        assert_eq!(rs.normal_form(&nf, 100).unwrap(), nf);
        assert!(rs.step(&nf).is_none());
    }

    #[test]
    fn ground_equality_decides() {
        let (th, _nat, zero, succ, plus) = peano();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        // 2 + 3 = 1 + 4
        let a = Term::app(plus, vec![num(2, zero, succ), num(3, zero, succ)]);
        let b = Term::app(plus, vec![num(1, zero, succ), num(4, zero, succ)]);
        assert!(rs.ground_equal(&a, &b, 100).unwrap());
        let c = Term::app(plus, vec![num(2, zero, succ), num(2, zero, succ)]);
        assert!(!rs.ground_equal(&a, &c, 100).unwrap());
    }

    #[test]
    fn peano_has_no_critical_pairs() {
        let (th, ..) = peano();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        assert!(rs.critical_pairs().is_empty());
        assert!(rs.is_locally_confluent(100).unwrap());
    }

    #[test]
    fn overlapping_rules_produce_joinable_pairs() {
        // Idempotent monoid fragment: f(e, x) = x and f(x, e) = x overlap
        // at f(e, e) — both reduce to e, so joinable.
        let mut b = SignatureBuilder::new();
        let m = b.sort("M");
        let e = b.op("e", &[], m);
        let f = b.op("f", &[m, m], m);
        let sig = b.finish().unwrap();
        let mut th = Theory::new(sig);
        let x = Term::var("x", m);
        th.add_equation(Equation::new(
            Term::app(f, vec![Term::constant(e), x.clone()]),
            x.clone(),
        ))
        .unwrap();
        th.add_equation(Equation::new(
            Term::app(f, vec![x.clone(), Term::constant(e)]),
            x.clone(),
        ))
        .unwrap();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let cps = rs.critical_pairs();
        // f(e,e) → e both ways: the pair is trivial (equal sides) so it
        // is filtered; local confluence holds.
        assert!(rs.is_locally_confluent(100).unwrap());
        let _ = cps;
    }

    #[test]
    fn non_confluent_system_is_detected() {
        // a → b, a → c with b, c distinct normal forms.
        let mut b_ = SignatureBuilder::new();
        let s = b_.sort("S");
        let a = b_.op("a", &[], s);
        let bb = b_.op("b", &[], s);
        let cc = b_.op("c", &[], s);
        let sig = b_.finish().unwrap();
        let mut th = Theory::new(sig);
        th.add_equation(Equation::new(Term::constant(a), Term::constant(bb)))
            .unwrap();
        th.add_equation(Equation::new(Term::constant(a), Term::constant(cc)))
            .unwrap();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let cex = rs.local_confluence_counterexample(10).unwrap();
        assert!(cex.is_some());
    }

    #[test]
    fn unorientable_equation_rejected() {
        let mut b = SignatureBuilder::new();
        let s = b.sort("S");
        let f = b.op("f", &[s], s);
        let sig = b.finish().unwrap();
        let mut th = Theory::new(sig);
        // f(x) = f(y): y not on the left.
        th.add_equation(Equation::new(
            Term::app(f, vec![Term::var("x", s)]),
            Term::app(f, vec![Term::var("y", s)]),
        ))
        .unwrap();
        assert!(RewriteSystem::from_theory(&th).is_err());
    }

    #[test]
    fn step_budget_exceeded_on_divergence() {
        // f(x) = f(f(x)) diverges.
        let mut b = SignatureBuilder::new();
        let s = b.sort("S");
        let c = b.op("c", &[], s);
        let f = b.op("f", &[s], s);
        let sig = b.finish().unwrap();
        let mut th = Theory::new(sig);
        let x = Term::var("x", s);
        th.add_equation(Equation::new(
            Term::app(f, vec![x.clone()]),
            Term::app(f, vec![Term::app(f, vec![x.clone()])]),
        ))
        .unwrap();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let t = Term::app(f, vec![Term::constant(c)]);
        assert!(matches!(
            rs.normal_form(&t, 50),
            Err(OsaError::StepBudgetExceeded { .. })
        ));
    }

    #[test]
    fn governed_normal_form_completes_like_legacy() {
        let (th, _nat, zero, succ, plus) = peano();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let t = Term::app(plus, vec![num(2, zero, succ), num(3, zero, succ)]);
        let g = rs.normal_form_governed(&t, &Budget::unlimited());
        assert_eq!(g.completed(), Some(num(5, zero, succ)));
    }

    #[test]
    fn governed_normal_form_exhausts_with_partial_on_divergence() {
        // f(x) = f(f(x)) diverges; a step budget must stop it with a
        // partially rewritten (theory-equal) term, not hang.
        let mut b = SignatureBuilder::new();
        let s = b.sort("S");
        let c = b.op("c", &[], s);
        let f = b.op("f", &[s], s);
        let sig = b.finish().unwrap();
        let mut th = Theory::new(sig);
        let x = Term::var("x", s);
        th.add_equation(Equation::new(
            Term::app(f, vec![x.clone()]),
            Term::app(f, vec![Term::app(f, vec![x.clone()])]),
        ))
        .unwrap();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let t = Term::app(f, vec![Term::constant(c)]);
        let g = rs.normal_form_governed(&t, &Budget::new().with_steps(50));
        match g {
            Governed::Exhausted { partial, .. } => {
                let partial = partial.expect("partial reduct available");
                // Every step grew the term by one `f`; the partial is a
                // genuine reduct of the input.
                assert!(partial.size() > t.size());
            }
            other => panic!("expected exhaustion, got {}", other.status()),
        }
        // Ground-equality under the same tiny budget also degrades.
        let g2 = rs.ground_equal_governed(&t, &Term::constant(c), &Budget::new().with_steps(10));
        assert!(!g2.is_completed());
    }

    #[test]
    fn governed_confluence_check_respects_budget() {
        let (th, ..) = peano();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let g = rs.local_confluence_counterexample_governed(&Budget::unlimited());
        assert_eq!(g.completed(), Some(None));
    }

    #[test]
    fn ground_enumeration_reaches_depth() {
        let (th, nat, ..) = peano();
        let rs = RewriteSystem::from_theory(&th).unwrap();
        let ts = rs.ground_terms_of_sort(nat, 3, 1000);
        // zero, succ(zero), succ(succ(zero)), plus-combinations at depth ≤ 3
        assert!(ts.iter().any(|t| t.depth() == 1));
        assert!(ts.iter().any(|t| t.depth() == 3));
        assert!(ts.iter().all(|t| t.is_ground()));
    }
}
