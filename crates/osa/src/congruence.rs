//! Ground congruence closure.
//!
//! Rewriting ([`crate::rewrite::RewriteSystem`]) decides ground
//! equality only when the equations orient into a confluent,
//! terminating system. Congruence closure decides ground equational
//! consequences of *arbitrary* ground equations — commutativity
//! instances, symmetric laws, anything — by the classic union-find
//! algorithm over the subterm DAG (Nelson–Oppen style, without theory
//! combination).
//!
//! This is the workhorse behind
//! [`DataDomain`](crate::theory::DataDomain)-style value reasoning when
//! the value theory is presented by unoriented ground identities.

use crate::signature::Signature;
use crate::term::Term;
use summa_guard::{Budget, Governed, Interrupt, Meter};

/// An incremental ground congruence closure.
#[derive(Debug, Clone)]
pub struct CongruenceClosure {
    signature: Signature,
    /// Interned ground terms; index = node id.
    terms: Vec<Term>,
    /// Union-find parent per node.
    parent: Vec<usize>,
    /// Direct children (as node ids) per node.
    children: Vec<Vec<usize>>,
    /// Pending merges (processed by `propagate`).
    dirty: bool,
}

impl CongruenceClosure {
    /// An empty closure over a signature.
    pub fn new(signature: Signature) -> Self {
        CongruenceClosure {
            signature,
            terms: vec![],
            parent: vec![],
            children: vec![],
            dirty: false,
        }
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Number of interned subterms.
    pub fn n_nodes(&self) -> usize {
        self.terms.len()
    }

    /// Intern a ground term and all its subterms.
    fn intern(&mut self, t: &Term) -> usize {
        assert!(t.is_ground(), "congruence closure handles ground terms");
        if let Some(i) = self.terms.iter().position(|x| x == t) {
            return i;
        }
        let child_ids: Vec<usize> = match t {
            Term::App { args, .. } => args.iter().map(|a| self.intern(a)).collect(),
            Term::Var { .. } => unreachable!("ground checked above"),
        };
        self.terms.push(t.clone());
        self.parent.push(self.terms.len() - 1);
        self.children.push(child_ids);
        self.terms.len() - 1
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]]; // path halving
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        self.dirty = true;
        true
    }

    /// Assert `a = b` (both ground) and propagate congruence.
    pub fn assert_equal(&mut self, a: &Term, b: &Term) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.union(ia, ib);
        self.propagate();
    }

    /// Metered variant of [`CongruenceClosure::assert_equal`]. On
    /// interrupt the asserted equation is recorded but congruence
    /// propagation may be incomplete: every merge performed is a valid
    /// consequence (the closure stays sound), some consequences may be
    /// missing.
    pub fn assert_equal_metered(
        &mut self,
        a: &Term,
        b: &Term,
        meter: &mut Meter,
    ) -> std::result::Result<(), Interrupt> {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.union(ia, ib);
        self.propagate_metered(meter)
    }

    /// Congruence propagation to fixpoint: two applications of the
    /// same operator name with pairwise-equal children are merged.
    fn propagate(&mut self) {
        self.propagate_metered(&mut Meter::unlimited())
            .expect("unlimited meter never interrupts");
    }

    /// The O(n²)-per-round propagation fixpoint, charging the meter one
    /// step per candidate pair examined. Interrupting mid-round leaves
    /// a sound under-approximation of the closure (`dirty` stays set,
    /// so a later call resumes the fixpoint).
    fn propagate_metered(
        &mut self,
        meter: &mut Meter,
    ) -> std::result::Result<(), Interrupt> {
        while self.dirty {
            self.dirty = false;
            let n = self.terms.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    if let Err(interrupt) = meter.charge(1) {
                        self.dirty = true;
                        return Err(interrupt);
                    }
                    if self.find(i) == self.find(j) {
                        continue;
                    }
                    let (name_i, name_j) = match (&self.terms[i], &self.terms[j]) {
                        (Term::App { op: oi, .. }, Term::App { op: oj, .. }) => (
                            self.signature.op(*oi).name.clone(),
                            self.signature.op(*oj).name.clone(),
                        ),
                        _ => continue,
                    };
                    if name_i != name_j
                        || self.children[i].len() != self.children[j].len()
                    {
                        continue;
                    }
                    let congruent = {
                        let ci = self.children[i].clone();
                        let cj = self.children[j].clone();
                        ci.iter()
                            .zip(cj.iter())
                            .all(|(&x, &y)| self.find(x) == self.find(y))
                    };
                    if congruent {
                        self.union(i, j);
                    }
                }
            }
        }
        Ok(())
    }

    /// Are two ground terms provably equal under the asserted
    /// identities?
    pub fn are_equal(&mut self, a: &Term, b: &Term) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        // New terms may become congruent to old ones.
        self.dirty = true;
        self.propagate();
        self.find(ia) == self.find(ib)
    }

    /// Metered equality query. A `true` under partial propagation is
    /// already definitive (the closure only ever merges), so the only
    /// interrupt-sensitive answer is `false`.
    pub fn are_equal_metered(
        &mut self,
        a: &Term,
        b: &Term,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Interrupt> {
        let (ia, ib) = (self.intern(a), self.intern(b));
        self.dirty = true;
        let outcome = self.propagate_metered(meter);
        if self.find(ia) == self.find(ib) {
            // Merges are monotone: once equal, always equal, even if
            // propagation was cut short.
            return Ok(true);
        }
        outcome.map(|()| false)
    }

    /// Budget-governed equality query. On exhaustion or cancellation
    /// the partial verdict is `false` meaning *not yet proved equal* —
    /// full propagation could still merge the two classes.
    pub fn are_equal_governed(
        &mut self,
        a: &Term,
        b: &Term,
        budget: &Budget,
    ) -> Governed<bool> {
        let mut meter = budget.meter();
        match self.are_equal_metered(a, b, &mut meter) {
            Ok(eq) => Governed::Completed(eq),
            Err(i) => Governed::from_interrupt(i, Some(false)),
        }
    }

    /// Budget-governed assertion. The partial `()` signals the
    /// equation was recorded but its congruence consequences are only
    /// partially propagated (sound, incomplete).
    pub fn assert_equal_governed(
        &mut self,
        a: &Term,
        b: &Term,
        budget: &Budget,
    ) -> Governed<()> {
        let mut meter = budget.meter();
        match self.assert_equal_metered(a, b, &mut meter) {
            Ok(()) => Governed::Completed(()),
            Err(i) => Governed::from_interrupt(i, Some(())),
        }
    }

    /// The number of equivalence classes among interned terms.
    pub fn n_classes(&mut self) -> usize {
        let n = self.terms.len();
        let mut roots: Vec<usize> = (0..n).map(|i| self.find(i)).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    /// A canonical representative term of `t`'s class (the smallest
    /// interned member by size, ties by construction order).
    pub fn canon(&mut self, t: &Term) -> Term {
        let i = self.intern(t);
        self.dirty = true;
        self.propagate();
        let root = self.find(i);
        let mut best: Option<usize> = None;
        for j in 0..self.terms.len() {
            if self.find(j) == root {
                best = match best {
                    None => Some(j),
                    Some(b) if self.terms[j].size() < self.terms[b].size() => Some(j),
                    keep => keep,
                };
            }
        }
        self.terms[best.expect("class non-empty")].clone()
    }
}

/// Build a closure from a set of ground identities.
pub fn from_identities(
    signature: Signature,
    identities: &[(Term, Term)],
) -> CongruenceClosure {
    let mut cc = CongruenceClosure::new(signature);
    for (a, b) in identities {
        cc.assert_equal(a, b);
    }
    cc
}

/// Budget-governed closure construction: one envelope bounds all
/// propagation. The partial closure on interrupt holds every identity
/// asserted so far with possibly incomplete propagation — sound for
/// `true` answers, incomplete for `false`.
pub fn from_identities_governed(
    signature: Signature,
    identities: &[(Term, Term)],
    budget: &Budget,
) -> Governed<CongruenceClosure> {
    let mut cc = CongruenceClosure::new(signature);
    let mut meter = budget.meter();
    for (a, b) in identities {
        if let Err(i) = cc.assert_equal_metered(a, b, &mut meter) {
            return Governed::from_interrupt(i, Some(cc));
        }
    }
    Governed::Completed(cc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;

    fn setup() -> (Signature, Term, Term, Term, crate::signature::OpId) {
        let mut b = SignatureBuilder::new();
        let s = b.sort("S");
        let a = b.op("a", &[], s);
        let b_ = b.op("b", &[], s);
        let c = b.op("c", &[], s);
        let f = b.op("f", &[s], s);
        let sig = b.finish().expect("ok");
        (
            sig,
            Term::constant(a),
            Term::constant(b_),
            Term::constant(c),
            f,
        )
    }

    #[test]
    fn reflexive_symmetric_transitive() {
        let (sig, a, b, c, _f) = setup();
        let mut cc = CongruenceClosure::new(sig);
        assert!(cc.are_equal(&a, &a));
        cc.assert_equal(&a, &b);
        assert!(cc.are_equal(&b, &a)); // symmetry
        cc.assert_equal(&b, &c);
        assert!(cc.are_equal(&a, &c)); // transitivity
    }

    #[test]
    fn congruence_propagates_through_applications() {
        let (sig, a, b, _c, f) = setup();
        let mut cc = CongruenceClosure::new(sig);
        cc.assert_equal(&a, &b);
        // f(a) = f(b) by congruence, without ever asserting it.
        let fa = Term::app(f, vec![a.clone()]);
        let fb = Term::app(f, vec![b.clone()]);
        assert!(cc.are_equal(&fa, &fb));
        // And nested: f(f(a)) = f(f(b)).
        let ffa = Term::app(f, vec![fa]);
        let ffb = Term::app(f, vec![fb]);
        assert!(cc.are_equal(&ffa, &ffb));
    }

    #[test]
    fn upward_merging_from_child_equalities() {
        // Classic: f(a) = a and f(f(a)) queried — equal by two steps.
        let (sig, a, _b, _c, f) = setup();
        let mut cc = CongruenceClosure::new(sig);
        let fa = Term::app(f, vec![a.clone()]);
        cc.assert_equal(&fa, &a);
        let ffa = Term::app(f, vec![fa.clone()]);
        assert!(cc.are_equal(&ffa, &a));
        let fffa = Term::app(f, vec![ffa]);
        assert!(cc.are_equal(&fffa, &a));
    }

    #[test]
    fn distinct_terms_stay_distinct() {
        let (sig, a, b, c, f) = setup();
        let mut cc = CongruenceClosure::new(sig);
        cc.assert_equal(&a, &b);
        assert!(!cc.are_equal(&a, &c));
        let fa = Term::app(f, vec![a]);
        let fc = Term::app(f, vec![c.clone()]);
        assert!(!cc.are_equal(&fa, &fc));
        assert!(cc.n_classes() >= 2);
    }

    #[test]
    fn handles_unorientable_identities() {
        // Commutativity instance: g(a,b) = g(b,a) — unorientable as a
        // rewrite rule family, trivial for congruence closure.
        let mut bld = SignatureBuilder::new();
        let s = bld.sort("S");
        let a = bld.op("a", &[], s);
        let b = bld.op("b", &[], s);
        let g = bld.op("g", &[s, s], s);
        let f = bld.op("f", &[s], s);
        let sig = bld.finish().expect("ok");
        let (ta, tb) = (Term::constant(a), Term::constant(b));
        let gab = Term::app(g, vec![ta.clone(), tb.clone()]);
        let gba = Term::app(g, vec![tb.clone(), ta.clone()]);
        let mut cc = from_identities(sig, &[(gab.clone(), gba.clone())]);
        assert!(cc.are_equal(&gab, &gba));
        // f of equal things is equal.
        let fgab = Term::app(f, vec![gab]);
        let fgba = Term::app(f, vec![gba]);
        assert!(cc.are_equal(&fgab, &fgba));
    }

    #[test]
    fn canon_picks_smallest_representative() {
        let (sig, a, _b, _c, f) = setup();
        let mut cc = CongruenceClosure::new(sig);
        let fa = Term::app(f, vec![a.clone()]);
        cc.assert_equal(&fa, &a);
        assert_eq!(cc.canon(&fa), a);
        let ffa = Term::app(f, vec![fa]);
        assert_eq!(cc.canon(&ffa), a);
    }

    #[test]
    fn governed_queries_complete_under_generous_budget() {
        let (sig, a, b, _c, f) = setup();
        let mut cc = CongruenceClosure::new(sig);
        let g = cc.assert_equal_governed(&a, &b, &summa_guard::Budget::unlimited());
        assert!(g.is_completed());
        let fa = Term::app(f, vec![a.clone()]);
        let fb = Term::app(f, vec![b.clone()]);
        let g = cc.are_equal_governed(&fa, &fb, &summa_guard::Budget::unlimited());
        assert_eq!(g.completed(), Some(true));
    }

    #[test]
    fn governed_propagation_degrades_but_stays_sound() {
        // A deep tower f^8(a) = a forces repeated propagation rounds;
        // a one-step budget must interrupt, never panic, and the
        // partial verdict is `false` (= not yet proved).
        let (sig, a, _b, _c, f) = setup();
        let mut cc = CongruenceClosure::new(sig);
        let mut tower = a.clone();
        for _ in 0..8 {
            tower = Term::app(f, vec![tower]);
        }
        cc.assert_equal(&Term::app(f, vec![a.clone()]), &a);
        let g = cc.are_equal_governed(
            &tower,
            &a,
            &summa_guard::Budget::new().with_steps(1),
        );
        match g {
            summa_guard::Governed::Completed(true) => {} // already merged
            summa_guard::Governed::Exhausted { partial, .. } => {
                assert_eq!(partial, Some(false));
            }
            other => panic!("unexpected outcome: {}", other.status()),
        }
        // An unbudgeted retry finishes the fixpoint and proves equality.
        assert!(cc.are_equal(&tower, &a));
    }

    #[test]
    fn governed_construction_interrupts_mid_identity_list() {
        let (sig, a, b, c, f) = setup();
        let fa = Term::app(f, vec![a.clone()]);
        let identities = vec![(fa.clone(), a.clone()), (b.clone(), c.clone())];
        let g = from_identities_governed(
            sig.clone(),
            &identities,
            &summa_guard::Budget::new().with_steps(1),
        );
        match g {
            summa_guard::Governed::Exhausted { partial, .. } => {
                assert!(partial.is_some());
            }
            summa_guard::Governed::Completed(mut cc) => {
                // Tiny theory might finish in one charge interval; the
                // closure must then be fully correct.
                assert!(cc.are_equal(&fa, &a));
                assert!(cc.are_equal(&b, &c));
            }
            other => panic!("unexpected outcome: {}", other.status()),
        }
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn non_ground_terms_are_rejected() {
        let (sig, ..) = setup();
        let s = sig.poset().by_name("S").expect("sort");
        let mut cc = CongruenceClosure::new(sig.clone());
        let x = Term::var("x", s);
        cc.assert_equal(&x, &x);
    }
}
