//! Order-sorted terms: well-sortedness, least sorts, substitution,
//! matching and syntactic unification.

use crate::error::{OsaError, Result};
use crate::signature::{OpId, Signature};
use crate::sort::SortId;
use std::collections::BTreeMap;
use std::fmt;

/// A term over an order-sorted signature.
///
/// Variables carry their sort explicitly; applications reference a
/// concrete operator declaration ([`OpId`]), i.e. terms are stored in
/// *resolved* form (the overload has been picked). The least sort of a
/// term may still be smaller than the declared result sort when
/// arguments have smaller sorts — use [`Term::least_sort`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A sorted variable.
    Var { name: String, sort: SortId },
    /// An operator applied to arguments.
    App { op: OpId, args: Vec<Term> },
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: &str, sort: SortId) -> Term {
        Term::Var {
            name: name.to_string(),
            sort,
        }
    }

    /// Construct an application term.
    pub fn app(op: OpId, args: Vec<Term>) -> Term {
        Term::App { op, args }
    }

    /// Construct a constant (nullary application).
    pub fn constant(op: OpId) -> Term {
        Term::App { op, args: vec![] }
    }

    /// True for variable terms.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var { .. })
    }

    /// True when the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var { .. } => false,
            Term::App { args, .. } => args.iter().all(Term::is_ground),
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            Term::Var { .. } => 1,
            Term::App { args, .. } => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Height of the term tree (a constant has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Var { .. } => 1,
            Term::App { args, .. } => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// The set of variables, name → sort. Errors are not possible here;
    /// inconsistent re-use of a name at two sorts is caught by
    /// [`Term::well_sorted`].
    pub fn vars(&self) -> BTreeMap<String, SortId> {
        let mut out = BTreeMap::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeMap<String, SortId>) {
        match self {
            Term::Var { name, sort } => {
                out.insert(name.clone(), *sort);
            }
            Term::App { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Check well-sortedness under `sig` and return the least sort.
    ///
    /// An application `f(t1…tn)` is well-sorted when each `ti` is
    /// well-sorted with least sort `si ≤` the declared argument sort,
    /// and a variable name is used at one sort only.
    pub fn well_sorted(&self, sig: &Signature) -> Result<SortId> {
        let mut seen: BTreeMap<String, SortId> = BTreeMap::new();
        self.well_sorted_inner(sig, &mut seen)
    }

    fn well_sorted_inner(
        &self,
        sig: &Signature,
        seen: &mut BTreeMap<String, SortId>,
    ) -> Result<SortId> {
        match self {
            Term::Var { name, sort } => {
                if let Some(&prev) = seen.get(name) {
                    if prev != *sort {
                        return Err(OsaError::IllSorted {
                            detail: format!("variable '{name}' used at two sorts"),
                        });
                    }
                } else {
                    seen.insert(name.clone(), *sort);
                }
                Ok(*sort)
            }
            Term::App { op, args } => {
                if op.index() >= sig.n_ops() {
                    return Err(OsaError::UnknownOp(format!("{op}")));
                }
                let decl = sig.op(*op);
                if decl.args.len() != args.len() {
                    return Err(OsaError::IllSorted {
                        detail: format!(
                            "'{}' expects {} arguments, got {}",
                            decl.name,
                            decl.args.len(),
                            args.len()
                        ),
                    });
                }
                let mut arg_sorts = Vec::with_capacity(args.len());
                for (a, &want) in args.iter().zip(&decl.args) {
                    let got = a.well_sorted_inner(sig, seen)?;
                    if !sig.poset().leq(got, want) {
                        return Err(OsaError::IllSorted {
                            detail: format!(
                                "argument of '{}' has sort '{}' but '{}' is required",
                                decl.name,
                                sig.poset().name(got),
                                sig.poset().name(want)
                            ),
                        });
                    }
                    arg_sorts.push(got);
                }
                // Least sort parse: the overload set may assign a smaller
                // result than this declaration's.
                sig.least_result(&decl.name, &arg_sorts)
                    .ok_or_else(|| OsaError::IllSorted {
                        detail: format!("no least sort for '{}'", decl.name),
                    })
            }
        }
    }

    /// Least sort, assuming the term is well-sorted (panics otherwise in
    /// debug; prefer [`Term::well_sorted`] on untrusted input).
    pub fn least_sort(&self, sig: &Signature) -> SortId {
        self.well_sorted(sig)
            .expect("least_sort called on ill-sorted term")
    }

    /// Apply a substitution.
    pub fn substitute(&self, subst: &Substitution) -> Term {
        match self {
            Term::Var { name, .. } => subst
                .get(name)
                .cloned()
                .unwrap_or_else(|| self.clone()),
            Term::App { op, args } => Term::App {
                op: *op,
                args: args.iter().map(|a| a.substitute(subst)).collect(),
            },
        }
    }

    /// All positions in the term (paths of argument indices), preorder.
    pub fn positions(&self) -> Vec<Vec<usize>> {
        let mut out = vec![];
        self.positions_inner(&mut vec![], &mut out);
        out
    }

    fn positions_inner(&self, path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        out.push(path.clone());
        if let Term::App { args, .. } = self {
            for (i, a) in args.iter().enumerate() {
                path.push(i);
                a.positions_inner(path, out);
                path.pop();
            }
        }
    }

    /// Subterm at a position (`None` when the path is invalid).
    pub fn at(&self, pos: &[usize]) -> Option<&Term> {
        let mut cur = self;
        for &i in pos {
            match cur {
                Term::App { args, .. } => cur = args.get(i)?,
                Term::Var { .. } => return None,
            }
        }
        Some(cur)
    }

    /// Replace the subterm at `pos` with `new`, returning the result.
    pub fn replace_at(&self, pos: &[usize], new: Term) -> Option<Term> {
        if pos.is_empty() {
            return Some(new);
        }
        match self {
            Term::App { op, args } => {
                let i = pos[0];
                let child = args.get(i)?.replace_at(&pos[1..], new)?;
                let mut args = args.clone();
                args[i] = child;
                Some(Term::App { op: *op, args })
            }
            Term::Var { .. } => None,
        }
    }

    /// Rename every variable by applying `f` to its name.
    pub fn rename_vars(&self, f: &impl Fn(&str) -> String) -> Term {
        match self {
            Term::Var { name, sort } => Term::Var {
                name: f(name),
                sort: *sort,
            },
            Term::App { op, args } => Term::App {
                op: *op,
                args: args.iter().map(|a| a.rename_vars(f)).collect(),
            },
        }
    }

    /// Pretty-print against a signature (resolving op names).
    pub fn display<'a>(&'a self, sig: &'a Signature) -> TermDisplay<'a> {
        TermDisplay { term: self, sig }
    }
}

/// Pretty-printer for [`Term`] (see [`Term::display`]).
pub struct TermDisplay<'a> {
    term: &'a Term,
    sig: &'a Signature,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Term::Var { name, sort } => {
                write!(f, "{name}:{}", self.sig.poset().name(*sort))
            }
            Term::App { op, args } => {
                write!(f, "{}", self.sig.op(*op).name)?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", a.display(self.sig))?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

/// A substitution: variable name → term.
pub type Substitution = BTreeMap<String, Term>;

/// Sort-respecting matching: find `σ` with `pattern·σ = subject`.
///
/// The subject is typically ground but need not be. A variable `x:s`
/// matches a subject `t` only when `least_sort(t) ≤ s`.
pub fn match_term(sig: &Signature, pattern: &Term, subject: &Term) -> Option<Substitution> {
    let mut subst = Substitution::new();
    if match_into(sig, pattern, subject, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

fn match_into(sig: &Signature, pattern: &Term, subject: &Term, subst: &mut Substitution) -> bool {
    match pattern {
        Term::Var { name, sort } => {
            let ssort = match subject.well_sorted(sig) {
                Ok(s) => s,
                Err(_) => return false,
            };
            if !sig.poset().leq(ssort, *sort) {
                return false;
            }
            match subst.get(name) {
                Some(bound) => bound == subject,
                None => {
                    subst.insert(name.clone(), subject.clone());
                    true
                }
            }
        }
        Term::App { op: pop, args: pargs } => match subject {
            Term::App { op: sop, args: sargs } => {
                // Overloads of the same name are treated as the same
                // symbol for matching purposes.
                if sig.op(*pop).name != sig.op(*sop).name || pargs.len() != sargs.len() {
                    return false;
                }
                pargs
                    .iter()
                    .zip(sargs)
                    .all(|(p, s)| match_into(sig, p, s, subst))
            }
            Term::Var { .. } => false,
        },
    }
}

/// Sort-respecting syntactic unification (for critical pairs).
///
/// Returns a most general unifier when one exists. A binding `x:s ↦ t`
/// is admitted when `least_sort(t) ≤ s`; when two variables of
/// incomparable sorts meet, unification fails (we do not introduce
/// fresh glb-sorted variables — enough for the confluence analysis on
/// the theories used in this reproduction).
pub fn unify(sig: &Signature, a: &Term, b: &Term) -> Option<Substitution> {
    let mut subst = Substitution::new();
    let mut stack = vec![(a.clone(), b.clone())];
    while let Some((s, t)) = stack.pop() {
        let s = s.substitute(&subst);
        let t = t.substitute(&subst);
        if s == t {
            continue;
        }
        match (s, t) {
            (Term::Var { name, sort }, other) | (other, Term::Var { name, sort }) => {
                if occurs(&name, &other) {
                    return None;
                }
                let osort = other.well_sorted(sig).ok()?;
                if !sig.poset().leq(osort, sort) {
                    return None;
                }
                // Compose: apply the new binding to existing bindings.
                let single: Substitution =
                    [(name.clone(), other.clone())].into_iter().collect();
                for v in subst.values_mut() {
                    *v = v.substitute(&single);
                }
                subst.insert(name, other);
            }
            (Term::App { op: o1, args: a1 }, Term::App { op: o2, args: a2 }) => {
                if sig.op(o1).name != sig.op(o2).name || a1.len() != a2.len() {
                    return None;
                }
                for (x, y) in a1.into_iter().zip(a2) {
                    stack.push((x, y));
                }
            }
        }
    }
    Some(subst)
}

fn occurs(name: &str, t: &Term) -> bool {
    match t {
        Term::Var { name: n, .. } => n == name,
        Term::App { args, .. } => args.iter().any(|a| occurs(name, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;

    fn nat_sig() -> (Signature, SortId, OpId, OpId, OpId) {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let nz = b.sort("NzNat");
        b.subsort(nz, nat);
        let zero = b.op("zero", &[], nat);
        let succ = b.op("succ", &[nat], nz);
        let plus = b.op("plus", &[nat, nat], nat);
        (b.finish().unwrap(), nat, zero, succ, plus)
    }

    #[test]
    fn least_sort_shrinks_with_arguments() {
        let (sig, _nat, zero, succ, _plus) = nat_sig();
        let z = Term::constant(zero);
        let one = Term::app(succ, vec![z.clone()]);
        // zero : Nat, succ(zero) : NzNat
        assert_eq!(sig.poset().name(z.least_sort(&sig)), "Nat");
        assert_eq!(sig.poset().name(one.least_sort(&sig)), "NzNat");
    }

    #[test]
    fn ill_sorted_arity_rejected() {
        let (sig, _nat, zero, succ, _plus) = nat_sig();
        let bad = Term::app(succ, vec![Term::constant(zero), Term::constant(zero)]);
        assert!(bad.well_sorted(&sig).is_err());
    }

    #[test]
    fn variable_sort_conflict_rejected() {
        let (sig, nat, _zero, _succ, plus) = nat_sig();
        let nz = sig.poset().by_name("NzNat").unwrap();
        let t = Term::app(plus, vec![Term::var("x", nat), Term::var("x", nz)]);
        assert!(t.well_sorted(&sig).is_err());
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let (sig, nat, zero, _succ, plus) = nat_sig();
        let x = Term::var("x", nat);
        let t = Term::app(plus, vec![x.clone(), x.clone()]);
        let mut s = Substitution::new();
        s.insert("x".into(), Term::constant(zero));
        let r = t.substitute(&s);
        assert!(r.is_ground());
        assert_eq!(r.size(), 3);
        assert!(r.well_sorted(&sig).is_ok());
    }

    #[test]
    fn positions_and_replace() {
        let (_sig, nat, zero, succ, plus) = nat_sig();
        let t = Term::app(
            plus,
            vec![
                Term::app(succ, vec![Term::constant(zero)]),
                Term::var("y", nat),
            ],
        );
        let pos = t.positions();
        assert_eq!(pos.len(), 4); // root, succ, zero, y
        assert_eq!(t.at(&[0, 0]), Some(&Term::constant(zero)));
        let t2 = t.replace_at(&[1], Term::constant(zero)).unwrap();
        assert!(t2.is_ground());
        assert!(t.at(&[2]).is_none());
        assert!(t.replace_at(&[0, 0, 0], Term::var("z", nat)).is_none());
    }

    #[test]
    fn matching_respects_sorts() {
        let (sig, nat, zero, succ, _plus) = nat_sig();
        let nz = sig.poset().by_name("NzNat").unwrap();
        // pattern x:NzNat cannot match zero (least sort Nat ≰ NzNat)...
        let pat = Term::var("x", nz);
        assert!(match_term(&sig, &pat, &Term::constant(zero)).is_none());
        // ...but matches succ(zero).
        let one = Term::app(succ, vec![Term::constant(zero)]);
        let m = match_term(&sig, &pat, &one).unwrap();
        assert_eq!(m["x"], one);
        // and x:Nat matches both.
        let pat2 = Term::var("x", nat);
        assert!(match_term(&sig, &pat2, &Term::constant(zero)).is_some());
    }

    #[test]
    fn matching_is_consistent_across_occurrences() {
        let (sig, nat, zero, succ, plus) = nat_sig();
        let x = Term::var("x", nat);
        let pat = Term::app(plus, vec![x.clone(), x.clone()]);
        let one = Term::app(succ, vec![Term::constant(zero)]);
        let same = Term::app(plus, vec![one.clone(), one.clone()]);
        let diff = Term::app(plus, vec![one.clone(), Term::constant(zero)]);
        assert!(match_term(&sig, &pat, &same).is_some());
        assert!(match_term(&sig, &pat, &diff).is_none());
    }

    #[test]
    fn unify_basic() {
        let (sig, nat, zero, succ, plus) = nat_sig();
        // plus(x, zero) =? plus(succ(y), z)
        let l = Term::app(
            plus,
            vec![Term::var("x", nat), Term::constant(zero)],
        );
        let r = Term::app(
            plus,
            vec![
                Term::app(succ, vec![Term::var("y", nat)]),
                Term::var("z", nat),
            ],
        );
        let mgu = unify(&sig, &l, &r).unwrap();
        assert_eq!(l.substitute(&mgu), r.substitute(&mgu));
    }

    #[test]
    fn unify_occurs_check() {
        let (sig, nat, _zero, succ, _plus) = nat_sig();
        let x = Term::var("x", nat);
        let sx = Term::app(succ, vec![x.clone()]);
        assert!(unify(&sig, &x, &sx).is_none());
    }

    #[test]
    fn unify_respects_sorts() {
        let (sig, _nat, zero, _succ, _plus) = nat_sig();
        let nz = sig.poset().by_name("NzNat").unwrap();
        // x:NzNat =? zero  fails: zero's sort Nat ≰ NzNat.
        assert!(unify(&sig, &Term::var("x", nz), &Term::constant(zero)).is_none());
    }

    #[test]
    fn display_renders_names() {
        let (sig, nat, zero, succ, plus) = nat_sig();
        let t = Term::app(
            plus,
            vec![
                Term::app(succ, vec![Term::constant(zero)]),
                Term::var("y", nat),
            ],
        );
        assert_eq!(format!("{}", t.display(&sig)), "plus(succ(zero), y:Nat)");
    }

    #[test]
    fn rename_vars_applies_function() {
        let (_sig, nat, _zero, _succ, plus) = nat_sig();
        let t = Term::app(plus, vec![Term::var("x", nat), Term::var("y", nat)]);
        let r = t.rename_vars(&|n| format!("{n}'"));
        let vars = r.vars();
        assert!(vars.contains_key("x'") && vars.contains_key("y'"));
    }
}
