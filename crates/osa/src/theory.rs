//! Order-sorted equational theories and data domains.
//!
//! A theory `T = (S, Σ, E)` packages a validated signature with a set
//! of validated equations. A *data domain* `(T, D)` pairs a theory with
//! a model of it — the structure Bench-Capon & Malcolm use to model
//! attribute values (see `summa-ontonomy`).

use crate::algebra::Algebra;
use crate::equation::Equation;
use crate::error::Result;
use crate::signature::Signature;

/// An order-sorted equational theory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Theory {
    signature: Signature,
    equations: Vec<Equation>,
}

impl Theory {
    /// A theory with no equations over `signature`.
    pub fn new(signature: Signature) -> Self {
        Theory {
            signature,
            equations: vec![],
        }
    }

    /// The underlying signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The equations, in insertion order.
    pub fn equations(&self) -> &[Equation] {
        &self.equations
    }

    /// Validate and add an equation.
    pub fn add_equation(&mut self, eq: Equation) -> Result<()> {
        eq.validate(&self.signature)?;
        self.equations.push(eq);
        Ok(())
    }

    /// Number of equations.
    pub fn n_equations(&self) -> usize {
        self.equations.len()
    }
}

/// A data domain `(T, D)`: a theory together with a model of it.
///
/// Construction verifies that `model` satisfies every equation of
/// `theory`, so a `DataDomain` value is evidence of modelhood.
#[derive(Debug, Clone)]
pub struct DataDomain {
    theory: Theory,
    model: Algebra,
}

impl DataDomain {
    /// Pair a theory with a model, verifying satisfaction.
    pub fn new(theory: Theory, model: Algebra) -> Result<Self> {
        model.check_against(&theory)?;
        Ok(DataDomain { theory, model })
    }

    /// The theory `T`.
    pub fn theory(&self) -> &Theory {
        &self.theory
    }

    /// The model `D`.
    pub fn model(&self) -> &Algebra {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;
    use crate::term::Term;

    #[test]
    fn theory_rejects_invalid_equation() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let bool_ = b.sort("Bool");
        let zero = b.op("zero", &[], nat);
        let tt = b.op("true", &[], bool_);
        let sig = b.finish().unwrap();
        let mut th = Theory::new(sig);
        let bad = Equation::new(Term::constant(zero), Term::constant(tt));
        assert!(th.add_equation(bad).is_err());
        assert_eq!(th.n_equations(), 0);
    }

    #[test]
    fn theory_accumulates_equations() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let zero = b.op("zero", &[], nat);
        let plus = b.op("plus", &[nat, nat], nat);
        let sig = b.finish().unwrap();
        let mut th = Theory::new(sig);
        let y = Term::var("y", nat);
        th.add_equation(Equation::new(
            Term::app(plus, vec![Term::constant(zero), y.clone()]),
            y.clone(),
        ))
        .unwrap();
        assert_eq!(th.n_equations(), 1);
    }
}
