//! Error types for order-sorted algebra construction and use.

use std::fmt;

/// Errors raised while building or using order-sorted structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsaError {
    /// The subsort relation would contain a cycle (violating antisymmetry).
    SortCycle { a: String, b: String },
    /// A sort id does not belong to the poset it was used with.
    UnknownSort(String),
    /// An operator id does not belong to the signature it was used with.
    UnknownOp(String),
    /// Two overloaded ranks for the same operator name violate the
    /// monotonicity condition: `w1 ≤ w2` componentwise but `s1 ≰ s2`.
    NonMonotoneOverload { op: String },
    /// The signature is not preregular: some argument-sort tuple has no
    /// least applicable rank for an operator.
    NotPreregular { op: String },
    /// A term is not well-sorted under the signature.
    IllSorted { detail: String },
    /// An equation's two sides have incomparable least sorts (no common
    /// supersort in the connected component).
    IncomparableEquation { detail: String },
    /// A rewrite rule has a variable on the right that is absent on the
    /// left, or a variable left-hand side.
    InvalidRule { detail: String },
    /// Rewriting exceeded the supplied step budget.
    StepBudgetExceeded { budget: usize },
    /// An algebra's carriers do not respect the subsort inclusions.
    CarrierInclusionViolation { sub: String, sup: String },
    /// An operator interpretation is missing or has the wrong arity.
    BadInterpretation { op: String, detail: String },
    /// A name was declared twice where uniqueness is required.
    DuplicateName(String),
}

impl fmt::Display for OsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsaError::SortCycle { a, b } => {
                write!(f, "subsort cycle between '{a}' and '{b}'")
            }
            OsaError::UnknownSort(s) => write!(f, "unknown sort '{s}'"),
            OsaError::UnknownOp(o) => write!(f, "unknown operator '{o}'"),
            OsaError::NonMonotoneOverload { op } => {
                write!(f, "overloads of '{op}' violate monotonicity")
            }
            OsaError::NotPreregular { op } => {
                write!(f, "operator '{op}' has no least rank for some arguments")
            }
            OsaError::IllSorted { detail } => write!(f, "ill-sorted term: {detail}"),
            OsaError::IncomparableEquation { detail } => {
                write!(f, "equation sides have incomparable sorts: {detail}")
            }
            OsaError::InvalidRule { detail } => write!(f, "invalid rewrite rule: {detail}"),
            OsaError::StepBudgetExceeded { budget } => {
                write!(f, "rewriting exceeded {budget} steps")
            }
            OsaError::CarrierInclusionViolation { sub, sup } => {
                write!(f, "carrier of '{sub}' not included in carrier of '{sup}'")
            }
            OsaError::BadInterpretation { op, detail } => {
                write!(f, "bad interpretation for '{op}': {detail}")
            }
            OsaError::DuplicateName(n) => write!(f, "duplicate name '{n}'"),
        }
    }
}

impl std::error::Error for OsaError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OsaError>;
