//! Partially ordered sets of sort names.
//!
//! The subsort relation `≤` of an order-sorted signature is a partial
//! order on sort names. [`SortPoset`] stores the reflexive–transitive
//! closure of the declared subsort edges as bitsets, so `leq` is O(1)
//! and meet/join queries are linear in the number of sorts.

use crate::error::{OsaError, Result};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a sort inside one [`SortPoset`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortId(pub u32);

impl SortId {
    /// Index into the poset's dense tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A fixed-size bitset over sort indices.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }
    fn or_assign(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let new = *w | *o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }
    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// Builder for a [`SortPoset`].
///
/// Sorts are interned by name; subsort edges may be declared in any
/// order. [`SortPosetBuilder::finish`] computes the transitive closure
/// and rejects cyclic declarations.
#[derive(Debug, Default, Clone)]
pub struct SortPosetBuilder {
    names: Vec<String>,
    /// Direct subsort edges `(sub, sup)`.
    edges: Vec<(SortId, SortId)>,
}

impl SortPosetBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a sort by name, returning its id (idempotent).
    pub fn sort(&mut self, name: &str) -> SortId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return SortId(i as u32);
        }
        self.names.push(name.to_string());
        SortId((self.names.len() - 1) as u32)
    }

    /// Declare `sub ≤ sup`.
    pub fn subsort(&mut self, sub: SortId, sup: SortId) {
        self.edges.push((sub, sup));
    }

    /// Number of sorts interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no sorts have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Compute the closure and produce the immutable poset.
    pub fn finish(self) -> Result<SortPoset> {
        let n = self.names.len();
        // leq[a] = set of sorts b with a ≤ b (upward closure).
        let mut leq: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut b = BitSet::new(n);
                b.set(i);
                b
            })
            .collect();
        // Floyd–Warshall-flavoured fixpoint over the declared edges;
        // the edge list is tiny in practice so this is fine.
        let mut changed = true;
        while changed {
            changed = false;
            for &(sub, sup) in &self.edges {
                let sup_set = leq[sup.index()].clone();
                changed |= leq[sub.index()].or_assign(&sup_set);
            }
        }
        // Antisymmetry: a ≤ b and b ≤ a with a ≠ b is a cycle.
        for a in 0..n {
            for b in (a + 1)..n {
                if leq[a].get(b) && leq[b].get(a) {
                    return Err(OsaError::SortCycle {
                        a: self.names[a].clone(),
                        b: self.names[b].clone(),
                    });
                }
            }
        }
        // geq is the transpose.
        let mut geq: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for (a, row) in leq.iter().enumerate() {
            for b in row.iter_ones() {
                geq[b].set(a);
            }
        }
        // Connected components of the comparability graph (treating ≤ as
        // undirected edges): used to decide whether two sorts live "in the
        // same cone", which order-sorted deduction needs for equations.
        let mut comp = vec![usize::MAX; n];
        let mut next_comp = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = next_comp;
            while let Some(v) = stack.pop() {
                let nbrs: Vec<usize> = leq[v].iter_ones().chain(geq[v].iter_ones()).collect();
                for w in nbrs {
                    if comp[w] == usize::MAX {
                        comp[w] = next_comp;
                        stack.push(w);
                    }
                }
            }
            next_comp += 1;
        }
        Ok(SortPoset {
            names: self.names,
            leq,
            geq,
            component: comp,
            n_components: next_comp,
        })
    }
}

/// An immutable partial order on sort names.
#[derive(Debug, Clone)]
pub struct SortPoset {
    names: Vec<String>,
    leq: Vec<BitSet>,
    geq: Vec<BitSet>,
    component: Vec<usize>,
    n_components: usize,
}

impl PartialEq for SortPoset {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names && self.leq == other.leq
    }
}
impl Eq for SortPoset {}

impl SortPoset {
    /// Number of sorts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the poset has no sorts.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a sort.
    pub fn name(&self, s: SortId) -> &str {
        &self.names[s.index()]
    }

    /// Look a sort up by name.
    pub fn by_name(&self, name: &str) -> Option<SortId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| SortId(i as u32))
    }

    /// All sort ids in declaration order.
    pub fn sorts(&self) -> impl Iterator<Item = SortId> + '_ {
        (0..self.names.len() as u32).map(SortId)
    }

    /// `a ≤ b` in the reflexive–transitive closure.
    #[inline]
    pub fn leq(&self, a: SortId, b: SortId) -> bool {
        self.leq[a.index()].get(b.index())
    }

    /// Strictly below: `a ≤ b` and `a ≠ b`.
    #[inline]
    pub fn lt(&self, a: SortId, b: SortId) -> bool {
        a != b && self.leq(a, b)
    }

    /// `a` and `b` are comparable (`a ≤ b` or `b ≤ a`).
    pub fn comparable(&self, a: SortId, b: SortId) -> bool {
        self.leq(a, b) || self.leq(b, a)
    }

    /// `a` and `b` lie in the same connected component of the
    /// comparability graph.
    pub fn same_component(&self, a: SortId, b: SortId) -> bool {
        self.component[a.index()] == self.component[b.index()]
    }

    /// Number of connected components.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Componentwise order on equal-length sort strings.
    pub fn leq_seq(&self, w1: &[SortId], w2: &[SortId]) -> bool {
        w1.len() == w2.len() && w1.iter().zip(w2).all(|(&a, &b)| self.leq(a, b))
    }

    /// All upper bounds of `a` (including `a`).
    pub fn upper_bounds(&self, a: SortId) -> Vec<SortId> {
        self.leq[a.index()]
            .iter_ones()
            .map(|i| SortId(i as u32))
            .collect()
    }

    /// All lower bounds of `a` (including `a`).
    pub fn lower_bounds(&self, a: SortId) -> Vec<SortId> {
        self.geq[a.index()]
            .iter_ones()
            .map(|i| SortId(i as u32))
            .collect()
    }

    /// Minimal elements of a non-empty set of sorts.
    pub fn minimal(&self, set: &[SortId]) -> Vec<SortId> {
        set.iter()
            .copied()
            .filter(|&a| !set.iter().any(|&b| self.lt(b, a)))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Least element of a set of sorts, if one exists.
    pub fn least(&self, set: &[SortId]) -> Option<SortId> {
        let mins = self.minimal(set);
        match mins.as_slice() {
            [m] if set.iter().all(|&s| self.leq(*m, s)) => Some(*m),
            _ => None,
        }
    }

    /// Greatest lower bounds (maximal common lower bounds) of `a`, `b`.
    pub fn glbs(&self, a: SortId, b: SortId) -> Vec<SortId> {
        let common: Vec<SortId> = self
            .geq[a.index()]
            .iter_ones()
            .filter(|&i| self.geq[b.index()].get(i))
            .map(|i| SortId(i as u32))
            .collect();
        // maximal elements of common
        common
            .iter()
            .copied()
            .filter(|&x| !common.iter().any(|&y| self.lt(x, y)))
            .collect()
    }

    /// Least upper bounds (minimal common upper bounds) of `a`, `b`.
    pub fn lubs(&self, a: SortId, b: SortId) -> Vec<SortId> {
        let common: Vec<SortId> = self
            .leq[a.index()]
            .iter_ones()
            .filter(|&i| self.leq[b.index()].get(i))
            .map(|i| SortId(i as u32))
            .collect();
        self.minimal(&common)
    }

    /// True when every pair of sorts with a common lower bound has a
    /// least upper bound (local filteredness — a coherence condition used
    /// by order-sorted deduction).
    pub fn is_locally_filtered(&self) -> bool {
        for a in self.sorts() {
            for b in self.sorts() {
                if !self.glbs(a, b).is_empty() && self.lubs(a, b).len() > 1 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (SortPoset, SortId, SortId, SortId, SortId) {
        // top ≥ {left, right} ≥ bottom
        let mut b = SortPosetBuilder::new();
        let top = b.sort("Top");
        let left = b.sort("Left");
        let right = b.sort("Right");
        let bot = b.sort("Bot");
        b.subsort(left, top);
        b.subsort(right, top);
        b.subsort(bot, left);
        b.subsort(bot, right);
        (b.finish().unwrap(), top, left, right, bot)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut b = SortPosetBuilder::new();
        let a1 = b.sort("A");
        let a2 = b.sort("A");
        assert_eq!(a1, a2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn leq_is_reflexive_and_transitive() {
        let (p, top, left, _right, bot) = diamond();
        for s in p.sorts() {
            assert!(p.leq(s, s));
        }
        assert!(p.leq(bot, left));
        assert!(p.leq(left, top));
        assert!(p.leq(bot, top)); // transitivity
        assert!(!p.leq(top, bot));
    }

    #[test]
    fn incomparable_branches() {
        let (p, _top, left, right, _bot) = diamond();
        assert!(!p.comparable(left, right));
        assert!(p.same_component(left, right));
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = SortPosetBuilder::new();
        let a = b.sort("A");
        let c = b.sort("B");
        b.subsort(a, c);
        b.subsort(c, a);
        assert!(matches!(b.finish(), Err(OsaError::SortCycle { .. })));
    }

    #[test]
    fn self_loop_is_allowed() {
        // a ≤ a is just reflexivity, not a cycle.
        let mut b = SortPosetBuilder::new();
        let a = b.sort("A");
        b.subsort(a, a);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn lubs_and_glbs_on_diamond() {
        let (p, top, left, right, bot) = diamond();
        assert_eq!(p.lubs(left, right), vec![top]);
        assert_eq!(p.glbs(left, right), vec![bot]);
        assert_eq!(p.lubs(bot, left), vec![left]);
        assert_eq!(p.glbs(top, right), vec![right]);
    }

    #[test]
    fn least_of_sets() {
        let (p, top, left, _right, bot) = diamond();
        assert_eq!(p.least(&[top, left, bot]), Some(bot));
        let (p2, _, l2, r2, _) = diamond();
        assert_eq!(p2.least(&[l2, r2]), None);
        assert_eq!(p.least(&[left]), Some(left));
    }

    #[test]
    fn components_are_detected() {
        let mut b = SortPosetBuilder::new();
        let a = b.sort("A");
        let c = b.sort("B");
        let d = b.sort("C");
        b.subsort(a, c);
        let p = b.finish().unwrap();
        assert_eq!(p.n_components(), 2);
        assert!(p.same_component(a, c));
        assert!(!p.same_component(a, d));
    }

    #[test]
    fn leq_seq_componentwise() {
        let (p, top, left, right, bot) = diamond();
        assert!(p.leq_seq(&[bot, left], &[left, top]));
        assert!(!p.leq_seq(&[left], &[right]));
        assert!(!p.leq_seq(&[left, left], &[top]));
        assert!(p.leq_seq(&[], &[]));
    }

    #[test]
    fn diamond_is_locally_filtered() {
        let (p, ..) = diamond();
        assert!(p.is_locally_filtered());
    }

    #[test]
    fn double_diamond_is_not_locally_filtered() {
        // bot below both left and right; left,right below BOTH t1 and t2:
        // lubs(left,right) = {t1, t2} — not filtered.
        let mut b = SortPosetBuilder::new();
        let t1 = b.sort("T1");
        let t2 = b.sort("T2");
        let l = b.sort("L");
        let r = b.sort("R");
        let bot = b.sort("Bot");
        b.subsort(l, t1);
        b.subsort(l, t2);
        b.subsort(r, t1);
        b.subsort(r, t2);
        b.subsort(bot, l);
        b.subsort(bot, r);
        let p = b.finish().unwrap();
        assert!(!p.is_locally_filtered());
        assert_eq!(p.lubs(l, r).len(), 2);
    }

    #[test]
    fn bounds_include_self() {
        let (p, top, _left, _right, bot) = diamond();
        assert!(p.upper_bounds(bot).contains(&bot));
        assert!(p.upper_bounds(bot).contains(&top));
        assert_eq!(p.upper_bounds(top), vec![top]);
        assert_eq!(p.lower_bounds(bot), vec![bot]);
    }
}
