//! # summa-osa — order-sorted algebra substrate
//!
//! An implementation of order-sorted equational logic in the style of
//! Goguen & Meseguer, *Order-sorted algebra I: equational deduction for
//! multiple inheritance, overloading, exceptions and partial operations*
//! (Theoretical Computer Science 105(2), 1992).
//!
//! This crate is the algebraic foundation that Bench-Capon & Malcolm's
//! structural definition of an *ontology signature* (reproduced in
//! `summa-ontonomy`) builds on, as discussed in §2 of *Summa Contra
//! Ontologiam*:
//!
//! > "An order-sorted algebra is a multi-sorted algebra `(Ω, (Aα|α ∈ S))`
//! > where the set of sorts `S` is endowed with a partial order relation
//! > called the sub-sort relation. Given a partially ordered set of sort
//! > names `S = (S,≤)`, a collection `Σ` of typed equation symbols, and a
//! > set `E` of equations on the symbols of `Σ`, one obtains an
//! > order-sorted equational theory `T = (S, Σ, E)`. If `D` is a model of
//! > `T`, then call `(T, D)` a data domain."
//!
//! ## What is provided
//!
//! * [`sort::SortPoset`] — partially ordered sets of sort names with
//!   reachability, meets/joins and connected-component queries;
//! * [`signature::Signature`] — order-sorted signatures with overloaded
//!   operators, monotonicity / preregularity / regularity checks;
//! * [`term::Term`] — well-sorted terms, least-sort computation,
//!   substitution, matching and syntactic unification;
//! * [`equation::Equation`] and [`theory::Theory`] — order-sorted
//!   equational theories;
//! * [`rewrite::RewriteSystem`] — order-sorted term rewriting: normal
//!   forms, joinability, critical pairs, and a bounded local-confluence
//!   check;
//! * [`algebra::Algebra`] — finite order-sorted algebras, equation
//!   satisfaction, and the ground-term (initial) algebra obtained by
//!   congruence closure;
//! * [`theory::DataDomain`] — the pair `(T, D)` used by the ontonomy
//!   layer.
//!
//! ## Quick example
//!
//! ```
//! use summa_osa::prelude::*;
//!
//! // A tiny theory of naturals with a subsort NzNat < Nat.
//! let mut sig = SignatureBuilder::new();
//! let nat = sig.sort("Nat");
//! let nznat = sig.sort("NzNat");
//! sig.subsort(nznat, nat);
//! let zero = sig.op("zero", &[], nat);
//! let succ = sig.op("succ", &[nat], nznat);
//! let plus = sig.op("plus", &[nat, nat], nat);
//! let sig = sig.finish().unwrap();
//!
//! let x = Term::var("x", nat);
//! let y = Term::var("y", nat);
//! let mut theory = Theory::new(sig.clone());
//! // plus(zero, y) = y
//! theory.add_equation(Equation::new(
//!     Term::app(plus, vec![Term::app(zero, vec![]), y.clone()]),
//!     y.clone(),
//! )).unwrap();
//! // plus(succ(x), y) = succ(plus(x, y))
//! theory.add_equation(Equation::new(
//!     Term::app(plus, vec![Term::app(succ, vec![x.clone()]), y.clone()]),
//!     Term::app(succ, vec![Term::app(plus, vec![x.clone(), y.clone()])]),
//! )).unwrap();
//!
//! let rs = RewriteSystem::from_theory(&theory).unwrap();
//! // 2 + 1 = 3
//! let two = Term::app(succ, vec![Term::app(succ, vec![Term::app(zero, vec![])])]);
//! let one = Term::app(succ, vec![Term::app(zero, vec![])]);
//! let three = rs.normal_form(&Term::app(plus, vec![two, one]), 1000).unwrap();
//! assert_eq!(three.depth(), 4); // succ(succ(succ(zero)))
//! ```

pub mod algebra;
pub mod congruence;
pub mod equation;
pub mod error;
pub mod rewrite;
pub mod signature;
pub mod sort;
pub mod term;
pub mod theory;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::algebra::{Algebra, AlgebraBuilder, GroundAlgebra};
    pub use crate::congruence::CongruenceClosure;
    pub use crate::equation::Equation;
    pub use crate::error::OsaError;
    pub use crate::rewrite::{CriticalPair, RewriteSystem};
    pub use crate::signature::{OpDecl, OpId, Signature, SignatureBuilder};
    pub use crate::sort::{SortId, SortPoset, SortPosetBuilder};
    pub use crate::term::{Substitution, Term};
    pub use crate::theory::{DataDomain, Theory};
}
