//! Order-sorted signatures with overloaded operators.
//!
//! A signature pairs a [`SortPoset`] with a family of operator
//! declarations. The same operator *name* may be declared at several
//! *ranks* `w → s` (subsort overloading); the classical coherence
//! conditions — monotonicity and preregularity — are checked when the
//! signature is finished, so every well-formed term has a least sort.

use crate::error::{OsaError, Result};
use crate::sort::{SortId, SortPoset, SortPosetBuilder};
use std::fmt;

/// Identifier of one operator *declaration* (one rank of a possibly
/// overloaded name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Dense index into the signature's operator table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One operator declaration: `name : arg_sorts → result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDecl {
    /// Operator name (shared across overloads).
    pub name: String,
    /// Argument sorts (the *arity string* `w`).
    pub args: Vec<SortId>,
    /// Result sort `s`.
    pub result: SortId,
}

impl OpDecl {
    /// True for constants (empty arity).
    pub fn is_constant(&self) -> bool {
        self.args.is_empty()
    }
}

/// Builder that interns sorts and operators, then validates coherence.
#[derive(Debug, Default, Clone)]
pub struct SignatureBuilder {
    sorts: SortPosetBuilder,
    ops: Vec<OpDecl>,
}

impl SignatureBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a sort by name.
    pub fn sort(&mut self, name: &str) -> SortId {
        self.sorts.sort(name)
    }

    /// Declare `sub ≤ sup`.
    pub fn subsort(&mut self, sub: SortId, sup: SortId) {
        self.sorts.subsort(sub, sup);
    }

    /// Declare an operator rank. Repeated identical declarations are
    /// deduplicated; distinct ranks with the same name are overloads.
    pub fn op(&mut self, name: &str, args: &[SortId], result: SortId) -> OpId {
        let decl = OpDecl {
            name: name.to_string(),
            args: args.to_vec(),
            result,
        };
        if let Some(i) = self.ops.iter().position(|d| *d == decl) {
            return OpId(i as u32);
        }
        self.ops.push(decl);
        OpId((self.ops.len() - 1) as u32)
    }

    /// Validate the poset and the overloading conditions and freeze.
    pub fn finish(self) -> Result<Signature> {
        let poset = self.sorts.finish()?;
        let sig = Signature {
            poset,
            ops: self.ops,
        };
        sig.check_monotonicity()?;
        sig.check_preregularity()?;
        Ok(sig)
    }
}

/// An immutable, validated order-sorted signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    poset: SortPoset,
    ops: Vec<OpDecl>,
}

impl Signature {
    /// The sort poset.
    pub fn poset(&self) -> &SortPoset {
        &self.poset
    }

    /// Number of operator declarations (counting each overload).
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Fetch one declaration.
    pub fn op(&self, id: OpId) -> &OpDecl {
        &self.ops[id.index()]
    }

    /// All declarations, in declaration order.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpDecl)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, d)| (OpId(i as u32), d))
    }

    /// All ranks declared under a name.
    pub fn overloads<'a>(&'a self, name: &'a str) -> impl Iterator<Item = (OpId, &'a OpDecl)> {
        self.ops().filter(move |(_, d)| d.name == name)
    }

    /// Constants whose result sort is `≤ s`.
    pub fn constants_of(&self, s: SortId) -> Vec<OpId> {
        self.ops()
            .filter(|(_, d)| d.is_constant() && self.poset.leq(d.result, s))
            .map(|(i, _)| i)
            .collect()
    }

    /// Monotonicity: for two ranks `w1 → s1`, `w2 → s2` of the same name
    /// with `|w1| = |w2|` and `w1 ≤ w2` componentwise, require `s1 ≤ s2`.
    fn check_monotonicity(&self) -> Result<()> {
        for (i, d1) in self.ops.iter().enumerate() {
            for d2 in self.ops.iter().skip(i + 1) {
                if d1.name != d2.name || d1.args.len() != d2.args.len() {
                    continue;
                }
                if self.poset.leq_seq(&d1.args, &d2.args) && !self.poset.leq(d1.result, d2.result)
                {
                    return Err(OsaError::NonMonotoneOverload {
                        op: d1.name.clone(),
                    });
                }
                if self.poset.leq_seq(&d2.args, &d1.args) && !self.poset.leq(d2.result, d1.result)
                {
                    return Err(OsaError::NonMonotoneOverload {
                        op: d1.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Preregularity: for every name and every argument-sort string `w`
    /// for which *some* rank `w' ≥ w` applies, the set of applicable
    /// result sorts has a least element. Violations can only arise at
    /// (or below) componentwise meets of pairs of declared ranks, so we
    /// check every declared string and every glb-combination of every
    /// pair of same-name same-arity ranks.
    fn check_preregularity(&self) -> Result<()> {
        let mut candidates: Vec<(String, Vec<SortId>)> = self
            .ops
            .iter()
            .map(|d| (d.name.clone(), d.args.clone()))
            .collect();
        for (i, d1) in self.ops.iter().enumerate() {
            for d2 in self.ops.iter().skip(i + 1) {
                if d1.name != d2.name || d1.args.len() != d2.args.len() {
                    continue;
                }
                // glb choices per position
                let choices: Vec<Vec<SortId>> = d1
                    .args
                    .iter()
                    .zip(&d2.args)
                    .map(|(&a, &b)| self.poset.glbs(a, b))
                    .collect();
                if choices.iter().any(Vec::is_empty) {
                    continue; // ranks never jointly applicable
                }
                let mut tuples = vec![vec![]];
                for c in &choices {
                    let mut next = vec![];
                    for pre in &tuples {
                        for &s in c {
                            let mut p: Vec<SortId> = pre.clone();
                            p.push(s);
                            next.push(p);
                        }
                    }
                    tuples = next;
                }
                for t in tuples {
                    candidates.push((d1.name.clone(), t));
                }
            }
        }
        for (name, w) in candidates {
            let applicable: Vec<SortId> = self
                .ops
                .iter()
                .filter(|d2| {
                    d2.name == name
                        && d2.args.len() == w.len()
                        && self.poset.leq_seq(&w, &d2.args)
                })
                .map(|d2| d2.result)
                .collect();
            if applicable.is_empty() {
                continue;
            }
            if self.poset.least(&applicable).is_none() {
                return Err(OsaError::NotPreregular { op: name });
            }
        }
        Ok(())
    }

    /// The least result sort of `name` applicable to argument sorts
    /// `args` (least sort parse). `None` when no rank applies.
    pub fn least_result(&self, name: &str, args: &[SortId]) -> Option<SortId> {
        let applicable: Vec<SortId> = self
            .ops
            .iter()
            .filter(|d| {
                d.name == name && d.args.len() == args.len() && self.poset.leq_seq(args, &d.args)
            })
            .map(|d| d.result)
            .collect();
        if applicable.is_empty() {
            None
        } else {
            self.poset.least(&applicable)
        }
    }

    /// Resolve an op id for `name` applicable at exactly the given
    /// argument sorts, preferring the least rank.
    pub fn resolve(&self, name: &str, args: &[SortId]) -> Option<OpId> {
        let mut best: Option<(OpId, &OpDecl)> = None;
        for (id, d) in self.overloads(name) {
            if d.args.len() == args.len() && self.poset.leq_seq(args, &d.args) {
                best = match best {
                    None => Some((id, d)),
                    Some((bid, bd)) => {
                        if self.poset.leq(d.result, bd.result) {
                            Some((id, d))
                        } else {
                            Some((bid, bd))
                        }
                    }
                };
            }
        }
        best.map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_signature() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let zero = b.op("zero", &[], nat);
        let succ = b.op("succ", &[nat], nat);
        let sig = b.finish().unwrap();
        assert_eq!(sig.n_ops(), 2);
        assert!(sig.op(zero).is_constant());
        assert!(!sig.op(succ).is_constant());
    }

    #[test]
    fn op_interning_dedupes() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let z1 = b.op("zero", &[], nat);
        let z2 = b.op("zero", &[], nat);
        assert_eq!(z1, z2);
    }

    #[test]
    fn overloading_with_subsorts() {
        // plus : Nat Nat -> Nat, plus : NzNat NzNat -> NzNat is monotone
        // (NzNat ≤ Nat and NzNat ≤ Nat).
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let nz = b.sort("NzNat");
        b.subsort(nz, nat);
        b.op("plus", &[nat, nat], nat);
        b.op("plus", &[nz, nz], nz);
        let sig = b.finish().unwrap();
        assert_eq!(sig.least_result("plus", &[nz, nz]), Some(nz));
        assert_eq!(sig.least_result("plus", &[nz, nat]), Some(nat));
        assert_eq!(sig.least_result("plus", &[nat, nat]), Some(nat));
    }

    #[test]
    fn non_monotone_overload_rejected() {
        // f : Nz -> Nat but f : Nat -> Nz with Nz ≤ Nat: arguments get
        // bigger while result gets smaller — not monotone.
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let nz = b.sort("NzNat");
        b.subsort(nz, nat);
        b.op("f", &[nz], nat);
        b.op("f", &[nat], nz);
        assert!(matches!(
            b.finish(),
            Err(OsaError::NonMonotoneOverload { .. })
        ));
    }

    #[test]
    fn identical_args_incomparable_results_rejected() {
        // f : A -> L, f : A -> R with L,R incomparable violates
        // monotonicity (w1 = w2 but s1, s2 incomparable).
        let mut b = SignatureBuilder::new();
        let a = b.sort("A");
        let l = b.sort("L");
        let r = b.sort("R");
        b.op("f", &[a], l);
        b.op("f", &[a], r);
        assert!(b.finish().is_err());
    }

    #[test]
    fn preregularity_violation_rejected() {
        // A0 ≤ A1, A0 ≤ A2; f : A1 -> L, f : A2 -> R with L,R
        // incomparable. Monotone (A1, A2 incomparable) but at the meet
        // A0 both ranks apply and {L,R} has no least element.
        let mut b = SignatureBuilder::new();
        let a0 = b.sort("A0");
        let a1 = b.sort("A1");
        let a2 = b.sort("A2");
        let l = b.sort("L");
        let r = b.sort("R");
        b.subsort(a0, a1);
        b.subsort(a0, a2);
        b.op("f", &[a1], l);
        b.op("f", &[a2], r);
        assert!(matches!(b.finish(), Err(OsaError::NotPreregular { .. })));
    }

    #[test]
    fn resolve_prefers_least_rank() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let nz = b.sort("NzNat");
        b.subsort(nz, nat);
        let wide = b.op("plus", &[nat, nat], nat);
        let narrow = b.op("plus", &[nz, nz], nz);
        let sig = b.finish().unwrap();
        assert_eq!(sig.resolve("plus", &[nz, nz]), Some(narrow));
        assert_eq!(sig.resolve("plus", &[nat, nz]), Some(wide));
        assert_eq!(sig.resolve("plus", &[nat, nat, nat]), None);
        assert_eq!(sig.resolve("times", &[nat, nat]), None);
    }

    #[test]
    fn constants_of_collects_subsort_constants() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let nz = b.sort("NzNat");
        b.subsort(nz, nat);
        let zero = b.op("zero", &[], nat);
        let one = b.op("one", &[], nz);
        let sig = b.finish().unwrap();
        let cs = sig.constants_of(nat);
        assert!(cs.contains(&zero) && cs.contains(&one));
        let cs_nz = sig.constants_of(nz);
        assert!(!cs_nz.contains(&zero) && cs_nz.contains(&one));
    }

    #[test]
    fn overloads_iterates_all_ranks() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let nz = b.sort("NzNat");
        b.subsort(nz, nat);
        b.op("plus", &[nat, nat], nat);
        b.op("plus", &[nz, nz], nz);
        let sig = b.finish().unwrap();
        assert_eq!(sig.overloads("plus").count(), 2);
        assert_eq!(sig.overloads("minus").count(), 0);
    }
}
