//! Equations over order-sorted terms.

use crate::error::{OsaError, Result};
use crate::signature::Signature;
use crate::term::Term;
use std::fmt;

/// An (unconditional) equation `lhs = rhs`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Equation {
    /// Left-hand side.
    pub lhs: Term,
    /// Right-hand side.
    pub rhs: Term,
}

impl Equation {
    /// Construct an equation (validation happens in
    /// [`Equation::validate`], typically via `Theory::add_equation`).
    pub fn new(lhs: Term, rhs: Term) -> Self {
        Equation { lhs, rhs }
    }

    /// Check the equation against a signature:
    /// both sides must be well-sorted, their least sorts must lie in the
    /// same connected component of the sort poset (the order-sorted
    /// coherence requirement), and a shared variable must be used at the
    /// same sort on both sides.
    pub fn validate(&self, sig: &Signature) -> Result<()> {
        let ls = self.lhs.well_sorted(sig)?;
        let rs = self.rhs.well_sorted(sig)?;
        if !sig.poset().same_component(ls, rs) {
            return Err(OsaError::IncomparableEquation {
                detail: format!(
                    "lhs sort '{}' and rhs sort '{}' are in different components",
                    sig.poset().name(ls),
                    sig.poset().name(rs)
                ),
            });
        }
        let lv = self.lhs.vars();
        for (name, sort) in self.rhs.vars() {
            if let Some(&lsort) = lv.get(&name) {
                if lsort != sort {
                    return Err(OsaError::IllSorted {
                        detail: format!("variable '{name}' used at two sorts across the equation"),
                    });
                }
            }
        }
        Ok(())
    }

    /// True when every variable of the right side occurs on the left —
    /// the condition for use as a left-to-right rewrite rule.
    pub fn is_rule(&self) -> bool {
        if self.lhs.is_var() {
            return false;
        }
        let lv = self.lhs.vars();
        self.rhs.vars().keys().all(|k| lv.contains_key(k))
    }

    /// Rename all variables with a suffix (for critical-pair freshness).
    pub fn rename(&self, suffix: &str) -> Equation {
        let f = |n: &str| format!("{n}{suffix}");
        Equation {
            lhs: self.lhs.rename_vars(&f),
            rhs: self.rhs.rename_vars(&f),
        }
    }

    /// The flipped equation `rhs = lhs`.
    pub fn flip(&self) -> Equation {
        Equation {
            lhs: self.rhs.clone(),
            rhs: self.lhs.clone(),
        }
    }

    /// Pretty-print against a signature.
    pub fn display<'a>(&'a self, sig: &'a Signature) -> EquationDisplay<'a> {
        EquationDisplay { eq: self, sig }
    }
}

/// Pretty-printer for [`Equation`].
pub struct EquationDisplay<'a> {
    eq: &'a Equation,
    sig: &'a Signature,
}

impl fmt::Display for EquationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}",
            self.eq.lhs.display(self.sig),
            self.eq.rhs.display(self.sig)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureBuilder;

    #[test]
    fn validates_well_sorted_equation() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let zero = b.op("zero", &[], nat);
        let plus = b.op("plus", &[nat, nat], nat);
        let sig = b.finish().unwrap();
        let y = Term::var("y", nat);
        let eq = Equation::new(
            Term::app(plus, vec![Term::constant(zero), y.clone()]),
            y.clone(),
        );
        assert!(eq.validate(&sig).is_ok());
        assert!(eq.is_rule());
    }

    #[test]
    fn rejects_cross_component_equation() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let bool_ = b.sort("Bool");
        let zero = b.op("zero", &[], nat);
        let tt = b.op("true", &[], bool_);
        let sig = b.finish().unwrap();
        let eq = Equation::new(Term::constant(zero), Term::constant(tt));
        assert!(matches!(
            eq.validate(&sig),
            Err(OsaError::IncomparableEquation { .. })
        ));
    }

    #[test]
    fn rejects_variable_sort_clash_across_sides() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let nz = b.sort("NzNat");
        b.subsort(nz, nat);
        let id_n = b.op("idn", &[nat], nat);
        let id_z = b.op("idz", &[nz], nat);
        let sig = b.finish().unwrap();
        let eq = Equation::new(
            Term::app(id_n, vec![Term::var("x", nat)]),
            Term::app(id_z, vec![Term::var("x", nz)]),
        );
        assert!(eq.validate(&sig).is_err());
    }

    #[test]
    fn extra_rhs_variable_is_not_a_rule() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let zero = b.op("zero", &[], nat);
        let plus = b.op("plus", &[nat, nat], nat);
        let sig = b.finish().unwrap();
        let eq = Equation::new(
            Term::constant(zero),
            Term::app(plus, vec![Term::var("y", nat), Term::constant(zero)]),
        );
        assert!(eq.validate(&sig).is_ok());
        assert!(!eq.is_rule());
        assert!(eq.flip().is_rule());
    }

    #[test]
    fn variable_lhs_is_not_a_rule() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let _zero = b.op("zero", &[], nat);
        let _sig = b.finish().unwrap();
        let eq = Equation::new(Term::var("x", nat), Term::var("x", nat));
        assert!(!eq.is_rule());
    }

    #[test]
    fn rename_adds_suffix_to_all_vars() {
        let mut b = SignatureBuilder::new();
        let nat = b.sort("Nat");
        let plus = b.op("plus", &[nat, nat], nat);
        let _sig = b.finish().unwrap();
        let eq = Equation::new(
            Term::app(plus, vec![Term::var("x", nat), Term::var("y", nat)]),
            Term::var("x", nat),
        );
        let r = eq.rename("_1");
        assert!(r.lhs.vars().contains_key("x_1"));
        assert!(r.rhs.vars().contains_key("x_1"));
    }
}
