//! Property-based tests for the intensional-model framework.

use proptest::prelude::*;
use std::collections::BTreeMap;
use summa_intensional::formula::PredId;
use summa_intensional::prelude::*;

// ---------------------------------------------------------------------
// Random sentences over one unary and one binary predicate with two
// constants, evaluated over a two-element domain.
// ---------------------------------------------------------------------

fn tiny_language() -> (Language, Domain) {
    let mut lang = Language::new();
    lang.predicate("p", 1);
    lang.predicate("q", 2);
    lang.constant("a");
    lang.constant("b");
    let mut dom = Domain::new();
    dom.elem("e0");
    dom.elem("e1");
    (lang, dom)
}

fn arb_term() -> impl Strategy<Value = TermRef> {
    prop_oneof![
        Just(TermRef::var("x")),
        Just(TermRef::var("y")),
        (0u32..2).prop_map(|i| TermRef::Const(summa_intensional::formula::ConstId(i))),
    ]
}

fn arb_formula(depth: usize) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        arb_term().prop_map(|t| Formula::Pred(PredId(0), vec![t])),
        (arb_term(), arb_term()).prop_map(|(s, t)| Formula::Pred(PredId(1), vec![s, t])),
        (arb_term(), arb_term()).prop_map(|(s, t)| Formula::Eq(s, t)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = arb_formula(depth - 1);
        prop_oneof![
            leaf,
            inner.clone().prop_map(Formula::not),
            proptest::collection::vec(arb_formula(depth - 1), 2..3).prop_map(Formula::And),
            proptest::collection::vec(arb_formula(depth - 1), 2..3).prop_map(Formula::Or),
            (arb_formula(depth - 1), arb_formula(depth - 1))
                .prop_map(|(a, b)| Formula::implies(a, b)),
            inner.clone().prop_map(|f| Formula::forall("x", f)),
            inner.prop_map(|f| Formula::exists("y", f)),
        ]
        .boxed()
    }
}

/// Close a formula by quantifying its free variables.
fn close(f: Formula) -> Formula {
    let mut out = f.clone();
    for v in f.free_vars() {
        out = Formula::forall(&v, out);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closing_yields_sentences(f in arb_formula(2)) {
        prop_assert!(close(f).is_sentence());
    }

    #[test]
    fn negation_flips_satisfaction(f in arb_formula(2)) {
        let (lang, dom) = tiny_language();
        let sentence = close(f);
        let models = enumerate_models(&lang, &dom, 1_000_000).expect("small space");
        for m in models.iter().take(16) {
            let pos = m.satisfies(&dom, &sentence).expect("evaluates");
            let neg = m
                .satisfies(&dom, &Formula::not(sentence.clone()))
                .expect("evaluates");
            prop_assert_eq!(pos, !neg);
        }
    }

    #[test]
    fn de_morgan_laws_hold(a in arb_formula(1), b in arb_formula(1)) {
        let (lang, dom) = tiny_language();
        let lhs = close(Formula::not(Formula::And(vec![a.clone(), b.clone()])));
        let rhs = close(Formula::Or(vec![Formula::not(a), Formula::not(b)]));
        let models = enumerate_models(&lang, &dom, 1_000_000).expect("small space");
        for m in models.iter().take(16) {
            prop_assert_eq!(
                m.satisfies(&dom, &lhs).expect("evaluates"),
                m.satisfies(&dom, &rhs).expect("evaluates")
            );
        }
    }

    #[test]
    fn implication_agrees_with_disjunction(a in arb_formula(1), b in arb_formula(1)) {
        let (lang, dom) = tiny_language();
        let imp = close(Formula::implies(a.clone(), b.clone()));
        let dis = close(Formula::Or(vec![Formula::not(a), b]));
        let models = enumerate_models(&lang, &dom, 1_000_000).expect("small space");
        for m in models.iter().take(16) {
            prop_assert_eq!(
                m.satisfies(&dom, &imp).expect("evaluates"),
                m.satisfies(&dom, &dis).expect("evaluates")
            );
        }
    }

    #[test]
    fn tautologies_hold_everywhere(_seed in 0u8..8) {
        let (lang, dom) = tiny_language();
        let models = enumerate_models(&lang, &dom, 1_000_000).expect("small space");
        let t = Formula::tautology();
        for m in &models {
            prop_assert!(m.satisfies(&dom, &t).expect("evaluates"));
        }
    }
}

// ---------------------------------------------------------------------
// Intensional relations over enumerated blocks worlds.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aboveness_is_a_strict_order_in_every_world(
        n_blocks in 1usize..4,
        cols in 1i32..3,
        heights in 1i32..4,
    ) {
        let mut dom = Domain::new();
        let blocks: Vec<Elem> = (0..n_blocks)
            .map(|i| dom.elem(&format!("b{i}")))
            .collect();
        prop_assume!((cols * heights) as usize >= n_blocks);
        let space = WorldSpace::enumerate_blocks(&blocks, cols, heights);
        let above = IntensionalRelation::aboveness("above", &dom, &space)
            .expect("structured worlds");
        for w in 0..space.len() {
            let ext = above.at(w).expect("world exists");
            for &a in &blocks {
                prop_assert!(!ext.contains(&[a, a]));
                for &b in &blocks {
                    for &c in &blocks {
                        if ext.contains(&[a, b]) && ext.contains(&[b, c]) {
                            prop_assert!(ext.contains(&[a, c]), "transitivity");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn world_count_matches_falling_factorial(
        n_blocks in 1usize..4,
        cols in 1i32..3,
        heights in 1i32..3,
    ) {
        let cells = (cols * heights) as usize;
        prop_assume!(cells >= n_blocks);
        let mut dom = Domain::new();
        let blocks: Vec<Elem> = (0..n_blocks)
            .map(|i| dom.elem(&format!("b{i}")))
            .collect();
        let space = WorldSpace::enumerate_blocks(&blocks, cols, heights);
        // Placements of k distinguishable blocks into distinct cells:
        // cells! / (cells - k)!.
        let expected: usize = (cells - n_blocks + 1..=cells).product();
        prop_assert_eq!(space.len(), expected);
    }

    #[test]
    fn stipulated_tables_round_trip(n_worlds in 1usize..5) {
        let mut dom = Domain::new();
        let a = dom.elem("a");
        let b = dom.elem("b");
        let space = WorldSpace::opaque(n_worlds);
        let tables: Vec<Relation> = (0..n_worlds)
            .map(|i| {
                if i % 2 == 0 {
                    Relation::from_tuples(2, vec![vec![a, b]]).expect("arity 2")
                } else {
                    Relation::new(2)
                }
            })
            .collect();
        let rel = IntensionalRelation::from_table("r", 2, &space, tables.clone())
            .expect("lengths match");
        for (i, t) in tables.iter().enumerate() {
            prop_assert_eq!(rel.at(i).expect("in range"), t);
        }
        prop_assert_eq!(rel.is_rigid(), n_worlds == 1 || tables.windows(2).all(|w| w[0] == w[1]));
    }
}

// ---------------------------------------------------------------------
// Model enumeration combinatorics.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn enumeration_count_formula(n_consts in 0usize..3, n_unary in 0usize..2, d in 1usize..3) {
        let mut lang = Language::new();
        for i in 0..n_consts {
            lang.constant(&format!("c{i}"));
        }
        for i in 0..n_unary {
            lang.predicate(&format!("p{i}"), 1);
        }
        let mut dom = Domain::new();
        for i in 0..d {
            dom.elem(&format!("e{i}"));
        }
        let models = enumerate_models(&lang, &dom, 10_000_000).expect("bounded");
        let expected = d.pow(n_consts as u32) * 2usize.pow((d * n_unary) as u32);
        prop_assert_eq!(models.len(), expected);
    }

    #[test]
    fn satisfying_models_closed_under_conjunction_split(seed in 0u8..16) {
        let (lang, dom) = tiny_language();
        let _ = seed;
        let env_f = |name: &str| {
            let mut l = lang.clone();
            let p = l.predicate(name, 1);
            Formula::forall("x", Formula::Pred(p, vec![TermRef::var("x")]))
        };
        let f1 = env_f("p");
        let both = Formula::And(vec![f1.clone(), Formula::tautology()]);
        let models = enumerate_models(&lang, &dom, 1_000_000).expect("small");
        for m in models.iter().take(16) {
            let mut empty_env = BTreeMap::new();
            let a = m.eval(&dom, &f1, &mut empty_env).expect("evaluates");
            let c = m.satisfies(&dom, &both).expect("evaluates");
            prop_assert_eq!(a, c);
        }
    }
}

// ---------------------------------------------------------------------
// Designation vs signification.
// ---------------------------------------------------------------------

use summa_intensional::designation::{compare_descriptions, Description};
use summa_intensional::model::ExtModel;
use summa_intensional::relation::Relation;

/// Random worlds over a 3-element domain with one unary predicate:
/// the extension is given by a 3-bit mask.
fn world_from_mask(p: PredId, elems: &[Elem], mask: u8) -> ExtModel {
    let mut m = ExtModel::new();
    let tuples: Vec<Vec<Elem>> = elems
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &e)| vec![e])
        .collect();
    m.set_pred(p, Relation::from_tuples(1, tuples).expect("arity 1"));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn a_description_co_designates_and_co_signifies_with_itself(
        masks in proptest::collection::vec(0u8..8, 1..4),
        actual_idx in 0usize..4,
    ) {
        let mut lang = Language::new();
        let p = lang.predicate("p", 1);
        let mut dom = Domain::new();
        let elems: Vec<Elem> = (0..3).map(|i| dom.elem(&format!("e{i}"))).collect();
        let worlds: Vec<ExtModel> =
            masks.iter().map(|&m| world_from_mask(p, &elems, m)).collect();
        let actual = actual_idx % worlds.len();
        let d = Description::new(
            "the p",
            "x",
            Formula::Pred(p, vec![TermRef::var("x")]),
        )
        .expect("one free var");
        let r = compare_descriptions(&dom, &worlds, actual, &d, &d).expect("valid");
        prop_assert!(r.same_signification, "self-comparison must co-signify");
        // Co-designation holds exactly when the actual world has a
        // unique satisfier.
        let unique = masks[actual].count_ones() == 1;
        prop_assert_eq!(r.co_designate, unique);
    }

    #[test]
    fn same_signification_implies_co_designation_when_defined(
        masks in proptest::collection::vec(0u8..8, 2..4),
    ) {
        let mut lang = Language::new();
        let p = lang.predicate("p", 1);
        let q = lang.predicate("q", 1);
        let mut dom = Domain::new();
        let elems: Vec<Elem> = (0..3).map(|i| dom.elem(&format!("e{i}"))).collect();
        // Two descriptions over two predicates whose extensions are the
        // SAME masks per world: significations must coincide, and in
        // any world with a unique satisfier they co-designate.
        let worlds: Vec<ExtModel> = masks
            .iter()
            .map(|&mask| {
                let mut m = world_from_mask(p, &elems, mask);
                let tuples: Vec<Vec<Elem>> = elems
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &e)| vec![e])
                    .collect();
                m.set_pred(q, Relation::from_tuples(1, tuples).expect("arity 1"));
                m
            })
            .collect();
        let dp = Description::new("the p", "x", Formula::Pred(p, vec![TermRef::var("x")]))
            .expect("one free var");
        let dq = Description::new("the q", "x", Formula::Pred(q, vec![TermRef::var("x")]))
            .expect("one free var");
        for (actual, mask) in masks.iter().enumerate() {
            let r = compare_descriptions(&dom, &worlds, actual, &dp, &dq).expect("valid");
            prop_assert!(r.same_signification);
            if mask.count_ones() == 1 {
                prop_assert!(r.co_designate);
            }
        }
    }
}
