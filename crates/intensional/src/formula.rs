//! A small first-order language `L(V)`.
//!
//! A vocabulary `V` consists of constant symbols and predicate symbols
//! with arities; formulas are built from atomic predications with the
//! usual connectives and quantifiers. Everything is finite, so
//! satisfaction is decidable by enumeration.

use std::collections::BTreeSet;
use std::fmt;

/// Interned constant symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstId(pub u32);

/// Interned predicate symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

/// The vocabulary of a language.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Language {
    constants: Vec<String>,
    predicates: Vec<(String, usize)>,
}

impl Language {
    /// An empty language.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a constant symbol.
    pub fn constant(&mut self, name: &str) -> ConstId {
        if let Some(i) = self.constants.iter().position(|n| n == name) {
            return ConstId(i as u32);
        }
        self.constants.push(name.to_string());
        ConstId((self.constants.len() - 1) as u32)
    }

    /// Intern a predicate symbol with its arity.
    pub fn predicate(&mut self, name: &str, arity: usize) -> PredId {
        if let Some(i) = self
            .predicates
            .iter()
            .position(|(n, a)| n == name && *a == arity)
        {
            return PredId(i as u32);
        }
        self.predicates.push((name.to_string(), arity));
        PredId((self.predicates.len() - 1) as u32)
    }

    /// Constant name.
    pub fn constant_name(&self, c: ConstId) -> &str {
        &self.constants[c.0 as usize]
    }

    /// Predicate name.
    pub fn predicate_name(&self, p: PredId) -> &str {
        &self.predicates[p.0 as usize].0
    }

    /// Predicate arity.
    pub fn arity(&self, p: PredId) -> usize {
        self.predicates[p.0 as usize].1
    }

    /// Number of constants.
    pub fn n_constants(&self) -> usize {
        self.constants.len()
    }

    /// Number of predicates.
    pub fn n_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// All constants.
    pub fn constants(&self) -> impl Iterator<Item = ConstId> + '_ {
        (0..self.constants.len() as u32).map(ConstId)
    }

    /// All predicates.
    pub fn predicates(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.predicates.len() as u32).map(PredId)
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TermRef {
    /// A named variable.
    Var(String),
    /// A constant symbol.
    Const(ConstId),
}

impl TermRef {
    /// Shorthand for a variable term.
    pub fn var(name: &str) -> TermRef {
        TermRef::Var(name.to_string())
    }
}

/// A first-order formula over a [`Language`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// `p(t₁,…,tₙ)`.
    Pred(PredId, Vec<TermRef>),
    /// `t₁ = t₂`.
    Eq(TermRef, TermRef),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Universal quantification.
    Forall(String, Box<Formula>),
    /// Existential quantification.
    Exists(String, Box<Formula>),
}

impl Formula {
    /// `¬f`.
    #[allow(clippy::should_implement_trait)] // `Formula::not` mirrors logical ¬
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `a → b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// `∀x. f`.
    pub fn forall(x: &str, f: Formula) -> Formula {
        Formula::Forall(x.to_string(), Box::new(f))
    }

    /// `∃x. f`.
    pub fn exists(x: &str, f: Formula) -> Formula {
        Formula::Exists(x.to_string(), Box::new(f))
    }

    /// A tautology: `∀x. x = x`.
    pub fn tautology() -> Formula {
        Formula::forall("x", Formula::Eq(TermRef::var("x"), TermRef::var("x")))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.free_vars_inner(&mut vec![], &mut out);
        out
    }

    fn free_vars_inner(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::Pred(_, ts) => {
                for t in ts {
                    if let TermRef::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let TermRef::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.free_vars_inner(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.free_vars_inner(bound, out);
                }
            }
            Formula::Implies(a, b) => {
                a.free_vars_inner(bound, out);
                b.free_vars_inner(bound, out);
            }
            Formula::Forall(x, f) | Formula::Exists(x, f) => {
                bound.push(x.clone());
                f.free_vars_inner(bound, out);
                bound.pop();
            }
        }
    }

    /// True for sentences (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All predicate symbols used.
    pub fn predicates(&self) -> BTreeSet<PredId> {
        let mut out = BTreeSet::new();
        self.collect_preds(&mut out);
        out
    }

    fn collect_preds(&self, out: &mut BTreeSet<PredId>) {
        match self {
            Formula::Pred(p, _) => {
                out.insert(*p);
            }
            Formula::Eq(_, _) => {}
            Formula::Not(f) => f.collect_preds(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_preds(out);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_preds(out);
                b.collect_preds(out);
            }
            Formula::Forall(_, f) | Formula::Exists(_, f) => f.collect_preds(out),
        }
    }

    /// Pretty-print against a language.
    pub fn display<'a>(&'a self, lang: &'a Language) -> FormulaDisplay<'a> {
        FormulaDisplay { f: self, lang }
    }
}

/// Pretty-printer for [`Formula`].
pub struct FormulaDisplay<'a> {
    f: &'a Formula,
    lang: &'a Language,
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let term = |t: &TermRef| match t {
            TermRef::Var(v) => v.clone(),
            TermRef::Const(c) => self.lang.constant_name(*c).to_string(),
        };
        match self.f {
            Formula::Pred(p, ts) => {
                let args: Vec<String> = ts.iter().map(term).collect();
                write!(f, "{}({})", self.lang.predicate_name(*p), args.join(","))
            }
            Formula::Eq(a, b) => write!(f, "{} = {}", term(a), term(b)),
            Formula::Not(inner) => write!(f, "¬{}", inner.display(self.lang)),
            Formula::And(fs) => {
                let parts: Vec<String> =
                    fs.iter().map(|x| x.display(self.lang).to_string()).collect();
                write!(f, "({})", parts.join(" ∧ "))
            }
            Formula::Or(fs) => {
                let parts: Vec<String> =
                    fs.iter().map(|x| x.display(self.lang).to_string()).collect();
                write!(f, "({})", parts.join(" ∨ "))
            }
            Formula::Implies(a, b) => {
                write!(f, "({} → {})", a.display(self.lang), b.display(self.lang))
            }
            Formula::Forall(x, inner) => write!(f, "∀{x}.{}", inner.display(self.lang)),
            Formula::Exists(x, inner) => write!(f, "∃{x}.{}", inner.display(self.lang)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn language_interning() {
        let mut l = Language::new();
        let a = l.constant("a");
        assert_eq!(a, l.constant("a"));
        let p = l.predicate("above", 2);
        assert_eq!(p, l.predicate("above", 2));
        assert_eq!(l.arity(p), 2);
        assert_eq!(l.constant_name(a), "a");
        assert_eq!(l.predicate_name(p), "above");
    }

    #[test]
    fn free_vars_respect_binders() {
        let mut l = Language::new();
        let p = l.predicate("p", 2);
        let f = Formula::forall(
            "x",
            Formula::Pred(p, vec![TermRef::var("x"), TermRef::var("y")]),
        );
        assert_eq!(f.free_vars(), ["y".to_string()].into_iter().collect());
        assert!(!f.is_sentence());
        let g = Formula::forall("y", f);
        assert!(g.is_sentence());
    }

    #[test]
    fn tautology_is_a_sentence() {
        let t = Formula::tautology();
        assert!(t.is_sentence());
        assert!(t.predicates().is_empty());
    }

    #[test]
    fn display_renders_connectives() {
        let mut l = Language::new();
        let p = l.predicate("p", 1);
        let a = l.constant("a");
        let f = Formula::implies(
            Formula::Pred(p, vec![TermRef::Const(a)]),
            Formula::not(Formula::Pred(p, vec![TermRef::Const(a)])),
        );
        let s = format!("{}", f.display(&l));
        assert!(s.contains("p(a)") && s.contains('→') && s.contains('¬'));
    }
}
