//! Ontological commitments and Guarino's definition of an ontonomy.
//!
//! An ontological commitment `K` for a language `L` is an intensional
//! model: for every possible world, an extensional model of `L`. The
//! *intended models* of `L` according to `K` are exactly the
//! extensional models that `K` assigns to some world.
//!
//! Guarino's definition (as quoted in the paper):
//!
//! > Given a language L, with ontological commitment K, an \[ontonomy\]
//! > for L is a set of axioms designed in a way such that the set of
//! > its models approximates as best as possible the set of intended
//! > models of L according to K.
//!
//! The paper's §2 critique proceeds in three steps, each of which is a
//! checkable [`AdmissionLevel`] here:
//!
//! 1. **Exact** — models(axioms) = intended(K). Almost nothing
//!    qualifies.
//! 2. **Approximate** — models(axioms) ∩ intended(K) ≠ ∅ ("any system
//!    of statements that admits at least one model that is also a
//!    model for L is an ontonomy for L").
//! 3. **AbstractedFromLanguage** — the axioms merely admit *some*
//!    model ("if we abstract from the language, then any set of
//!    statements that admits at least a model is an ontonomy. In
//!    particular, any set of tautologies is an \[ontonomy\]").

use crate::domain::Domain;
use crate::error::Result;
use crate::formula::{Formula, Language};
use crate::model::{enumerate_models, ExtModel};
use crate::world::WorldSpace;

/// An ontological commitment: one extensional model per world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntologicalCommitment {
    models: Vec<ExtModel>,
}

impl OntologicalCommitment {
    /// Build from a world space and an assignment of one extensional
    /// model per world (in world order).
    pub fn new(space: &WorldSpace, models: Vec<ExtModel>) -> Result<Self> {
        if models.len() != space.len() {
            return Err(crate::error::IntensionalError::UnknownWorld(models.len()));
        }
        Ok(OntologicalCommitment { models })
    }

    /// The intended models (deduplicated, order preserved).
    pub fn intended_models(&self) -> Vec<&ExtModel> {
        let mut out: Vec<&ExtModel> = vec![];
        for m in &self.models {
            if !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }

    /// The model assigned to world `i`.
    pub fn at(&self, i: usize) -> Option<&ExtModel> {
        self.models.get(i)
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no worlds.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// The three admission levels the paper distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionLevel {
    /// models(axioms) must equal the intended-model set.
    Exact,
    /// models(axioms) must share at least one model with the
    /// intended-model set ("approximates").
    Approximate,
    /// The axioms must merely be satisfiable (the commitment and even
    /// the language are abstracted away).
    AbstractedFromLanguage,
}

/// The result of judging an axiom set against a commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntonomyJudgment {
    /// The level at which the judgment was made.
    pub level: AdmissionLevel,
    /// Whether the axiom set qualifies as an ontonomy at that level.
    pub admitted: bool,
    /// |models(axioms)| over the enumerated model space.
    pub n_models: usize,
    /// |intended(K)| (0 when the level abstracts from the language).
    pub n_intended: usize,
    /// |models(axioms) ∩ intended(K)|.
    pub n_shared: usize,
}

/// Judge whether `axioms` form an ontonomy for `lang` under
/// `commitment` at `level`, enumerating all models over `domain`
/// (bounded by `budget`).
pub fn judge_ontonomy(
    lang: &Language,
    domain: &Domain,
    commitment: &OntologicalCommitment,
    axioms: &[Formula],
    level: AdmissionLevel,
    budget: u64,
) -> Result<OntonomyJudgment> {
    let all = enumerate_models(lang, domain, budget)?;
    let mut models_of_axioms: Vec<&ExtModel> = vec![];
    for m in &all {
        if m.satisfies_all(domain, axioms)? {
            models_of_axioms.push(m);
        }
    }
    let intended = commitment.intended_models();
    let shared = models_of_axioms
        .iter()
        .filter(|m| intended.iter().any(|i| i == *m))
        .count();
    let admitted = match level {
        AdmissionLevel::Exact => {
            models_of_axioms.len() == intended.len() && shared == intended.len()
        }
        AdmissionLevel::Approximate => shared > 0,
        AdmissionLevel::AbstractedFromLanguage => !models_of_axioms.is_empty(),
    };
    Ok(OntonomyJudgment {
        level,
        admitted,
        n_models: models_of_axioms.len(),
        n_intended: intended.len(),
        n_shared: shared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::TermRef;
    use crate::relation::Relation;

    /// One unary predicate `p` and one constant over a 1-element
    /// domain: 2 models (p empty / p full).
    fn tiny() -> (Language, Domain, OntologicalCommitment) {
        let mut lang = Language::new();
        let p = lang.predicate("p", 1);
        let c = lang.constant("c");
        let mut dom = Domain::new();
        let e = dom.elem("e");
        // Commitment: one world, where p = {e}.
        let mut m = ExtModel::new();
        m.set_const(c, e);
        m.set_pred(p, Relation::from_tuples(1, vec![vec![e]]).unwrap());
        let space = WorldSpace::opaque(1);
        let k = OntologicalCommitment::new(&space, vec![m]).unwrap();
        (lang, dom, k)
    }

    fn p_of_c(lang: &mut Language) -> Formula {
        let p = lang.predicate("p", 1);
        let c = lang.constant("c");
        Formula::Pred(p, vec![TermRef::Const(c)])
    }

    #[test]
    fn exact_admission_requires_precise_axioms() {
        let (mut lang, dom, k) = tiny();
        let ax = vec![p_of_c(&mut lang)];
        let j = judge_ontonomy(&lang, &dom, &k, &ax, AdmissionLevel::Exact, 10_000).unwrap();
        // p(c) pins down the single intended model exactly.
        assert!(j.admitted);
        assert_eq!(j.n_models, 1);
        assert_eq!(j.n_intended, 1);
        // The empty axiom set has 2 models ≠ 1 intended: not exact.
        let j2 = judge_ontonomy(&lang, &dom, &k, &[], AdmissionLevel::Exact, 10_000).unwrap();
        assert!(!j2.admitted);
        assert_eq!(j2.n_models, 2);
    }

    #[test]
    fn approximate_admits_weak_axiom_sets() {
        let (lang, dom, k) = tiny();
        // The empty set shares the intended model: admitted.
        let j = judge_ontonomy(&lang, &dom, &k, &[], AdmissionLevel::Approximate, 10_000).unwrap();
        assert!(j.admitted);
        assert_eq!(j.n_shared, 1);
    }

    #[test]
    fn approximate_rejects_contradicting_axioms() {
        let (mut lang, dom, k) = tiny();
        let not_p = Formula::not(p_of_c(&mut lang));
        let j = judge_ontonomy(
            &lang,
            &dom,
            &k,
            &[not_p],
            AdmissionLevel::Approximate,
            10_000,
        )
        .unwrap();
        // ¬p(c) excludes the only intended model.
        assert!(!j.admitted);
        assert_eq!(j.n_shared, 0);
        assert_eq!(j.n_models, 1);
    }

    #[test]
    fn tautologies_admitted_once_language_is_abstracted() {
        let (lang, dom, k) = tiny();
        let taut = vec![Formula::tautology()];
        // The paper: "any set of tautologies is an ontonomy" under the
        // abstracted reading…
        let j = judge_ontonomy(
            &lang,
            &dom,
            &k,
            &taut,
            AdmissionLevel::AbstractedFromLanguage,
            10_000,
        )
        .unwrap();
        assert!(j.admitted);
        assert_eq!(j.n_models, 2); // all models satisfy a tautology
        // …and in fact also under Approximate (it shares all intended
        // models), which is precisely the over-breadth critique.
        let j2 =
            judge_ontonomy(&lang, &dom, &k, &taut, AdmissionLevel::Approximate, 10_000).unwrap();
        assert!(j2.admitted);
        // But never under Exact.
        let j3 = judge_ontonomy(&lang, &dom, &k, &taut, AdmissionLevel::Exact, 10_000).unwrap();
        assert!(!j3.admitted);
    }

    #[test]
    fn unsatisfiable_axioms_admitted_nowhere() {
        let (mut lang, dom, k) = tiny();
        let p = p_of_c(&mut lang);
        let contradiction = vec![p.clone(), Formula::not(p)];
        for level in [
            AdmissionLevel::Exact,
            AdmissionLevel::Approximate,
            AdmissionLevel::AbstractedFromLanguage,
        ] {
            let j = judge_ontonomy(&lang, &dom, &k, &contradiction, level, 10_000).unwrap();
            assert!(!j.admitted, "contradictions must fail at {level:?}");
        }
    }

    #[test]
    fn commitment_length_checked() {
        let space = WorldSpace::opaque(2);
        assert!(OntologicalCommitment::new(&space, vec![ExtModel::new()]).is_err());
        let k = OntologicalCommitment::new(&space, vec![ExtModel::new(), ExtModel::new()]).unwrap();
        assert_eq!(k.len(), 2);
        assert_eq!(k.intended_models().len(), 1); // identical models dedupe
    }
}
