//! Finite extensional models and satisfaction.
//!
//! An extensional model for `L(V)` is a pair `(D, R)` — a domain plus
//! interpretations of constants and predicates — exactly as the paper
//! recites the standard definition before Guarino's intensional
//! variant.

use crate::domain::{Domain, Elem};
use crate::error::{IntensionalError, Result};
use crate::formula::{ConstId, Formula, Language, PredId, TermRef};
use crate::relation::Relation;
use std::collections::BTreeMap;

/// A finite extensional model `(D, R)` for a language.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExtModel {
    consts: BTreeMap<ConstId, Elem>,
    preds: BTreeMap<PredId, Relation>,
}

impl ExtModel {
    /// An empty interpretation (fill with the setters).
    pub fn new() -> Self {
        ExtModel {
            consts: BTreeMap::new(),
            preds: BTreeMap::new(),
        }
    }

    /// Interpret a constant.
    pub fn set_const(&mut self, c: ConstId, e: Elem) {
        self.consts.insert(c, e);
    }

    /// Interpret a predicate.
    pub fn set_pred(&mut self, p: PredId, r: Relation) {
        self.preds.insert(p, r);
    }

    /// The interpretation of a constant.
    pub fn const_interp(&self, c: ConstId) -> Option<Elem> {
        self.consts.get(&c).copied()
    }

    /// The interpretation of a predicate.
    pub fn pred_interp(&self, p: PredId) -> Option<&Relation> {
        self.preds.get(&p)
    }

    fn term(&self, t: &TermRef, env: &BTreeMap<String, Elem>) -> Result<Elem> {
        match t {
            TermRef::Var(v) => env
                .get(v)
                .copied()
                .ok_or_else(|| IntensionalError::UnboundVariable(v.clone())),
            TermRef::Const(c) => self
                .const_interp(*c)
                .ok_or_else(|| IntensionalError::UnknownSymbol(format!("const#{}", c.0))),
        }
    }

    /// Satisfaction of a formula under an environment.
    pub fn eval(
        &self,
        domain: &Domain,
        f: &Formula,
        env: &mut BTreeMap<String, Elem>,
    ) -> Result<bool> {
        match f {
            Formula::Pred(p, ts) => {
                let rel = self
                    .pred_interp(*p)
                    .ok_or_else(|| IntensionalError::UnknownSymbol(format!("pred#{}", p.0)))?;
                let mut tuple = Vec::with_capacity(ts.len());
                for t in ts {
                    tuple.push(self.term(t, env)?);
                }
                if tuple.len() != rel.arity() {
                    return Err(IntensionalError::ArityMismatch {
                        expected: rel.arity(),
                        got: tuple.len(),
                    });
                }
                Ok(rel.contains(&tuple))
            }
            Formula::Eq(a, b) => Ok(self.term(a, env)? == self.term(b, env)?),
            Formula::Not(inner) => Ok(!self.eval(domain, inner, env)?),
            Formula::And(fs) => {
                for g in fs {
                    if !self.eval(domain, g, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for g in fs {
                    if self.eval(domain, g, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(a, b) => {
                Ok(!self.eval(domain, a, env)? || self.eval(domain, b, env)?)
            }
            Formula::Forall(x, inner) => {
                for e in domain.elems() {
                    let prev = env.insert(x.clone(), e);
                    let ok = self.eval(domain, inner, env)?;
                    match prev {
                        Some(p) => {
                            env.insert(x.clone(), p);
                        }
                        None => {
                            env.remove(x);
                        }
                    }
                    if !ok {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Exists(x, inner) => {
                for e in domain.elems() {
                    let prev = env.insert(x.clone(), e);
                    let ok = self.eval(domain, inner, env)?;
                    match prev {
                        Some(p) => {
                            env.insert(x.clone(), p);
                        }
                        None => {
                            env.remove(x);
                        }
                    }
                    if ok {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Satisfaction of a sentence.
    pub fn satisfies(&self, domain: &Domain, f: &Formula) -> Result<bool> {
        self.eval(domain, f, &mut BTreeMap::new())
    }

    /// Satisfaction of a set of sentences.
    pub fn satisfies_all(&self, domain: &Domain, fs: &[Formula]) -> Result<bool> {
        for f in fs {
            if !self.satisfies(domain, f)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl Default for ExtModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Enumerate every extensional model of `lang` over `domain`
/// (every constant assignment × every predicate extension), guarded by
/// a budget on the total count.
pub fn enumerate_models(lang: &Language, domain: &Domain, budget: u64) -> Result<Vec<ExtModel>> {
    // Count first.
    let d = domain.len() as u64;
    let mut bound: u64 = 1;
    for _ in lang.constants() {
        bound = bound.saturating_mul(d);
    }
    for p in lang.predicates() {
        let cells = (domain.len() as u64).saturating_pow(lang.arity(p) as u32);
        if cells >= 63 {
            return Err(IntensionalError::EnumerationTooLarge {
                bound: u64::MAX,
                budget,
            });
        }
        bound = bound.saturating_mul(1u64 << cells);
    }
    if bound > budget {
        return Err(IntensionalError::EnumerationTooLarge { bound, budget });
    }

    let mut models = vec![ExtModel::new()];
    for c in lang.constants() {
        let mut next = vec![];
        for m in &models {
            for e in domain.elems() {
                let mut m2 = m.clone();
                m2.set_const(c, e);
                next.push(m2);
            }
        }
        models = next;
    }
    for p in lang.predicates() {
        let tuples = domain.tuples(lang.arity(p));
        let mut next = vec![];
        for m in &models {
            for mask in 0u64..(1u64 << tuples.len()) {
                let mut rel = Relation::new(lang.arity(p));
                for (i, t) in tuples.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        rel.insert(t.clone()).expect("arity by construction");
                    }
                }
                let mut m2 = m.clone();
                m2.set_pred(p, rel);
                next.push(m2);
            }
        }
        models = next;
    }
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Language, Domain, PredId, ConstId, ConstId) {
        let mut lang = Language::new();
        let p = lang.predicate("above", 2);
        let ca = lang.constant("a");
        let cb = lang.constant("b");
        let mut dom = Domain::new();
        dom.elem("a");
        dom.elem("b");
        (lang, dom, p, ca, cb)
    }

    #[test]
    fn atomic_satisfaction() {
        let (_lang, dom, p, ca, cb) = tiny();
        let a = dom.find("a").unwrap();
        let b = dom.find("b").unwrap();
        let mut m = ExtModel::new();
        m.set_const(ca, a);
        m.set_const(cb, b);
        m.set_pred(p, Relation::from_tuples(2, vec![vec![a, b]]).unwrap());
        let f = Formula::Pred(p, vec![TermRef::Const(ca), TermRef::Const(cb)]);
        assert!(m.satisfies(&dom, &f).unwrap());
        let g = Formula::Pred(p, vec![TermRef::Const(cb), TermRef::Const(ca)]);
        assert!(!m.satisfies(&dom, &g).unwrap());
    }

    #[test]
    fn quantifiers_range_over_domain() {
        let (_lang, dom, p, ca, _cb) = tiny();
        let a = dom.find("a").unwrap();
        let b = dom.find("b").unwrap();
        let mut m = ExtModel::new();
        m.set_const(ca, a);
        m.set_pred(
            p,
            Relation::from_tuples(2, vec![vec![a, a], vec![a, b]]).unwrap(),
        );
        // ∀y. above(a, y) holds.
        let f = Formula::forall(
            "y",
            Formula::Pred(p, vec![TermRef::Const(ca), TermRef::var("y")]),
        );
        assert!(m.satisfies(&dom, &f).unwrap());
        // ∃y. above(y, a) holds (a above a).
        let g = Formula::exists(
            "y",
            Formula::Pred(p, vec![TermRef::var("y"), TermRef::Const(ca)]),
        );
        assert!(m.satisfies(&dom, &g).unwrap());
        // ∀y. above(y, a) fails (b not above a).
        let h = Formula::forall(
            "y",
            Formula::Pred(p, vec![TermRef::var("y"), TermRef::Const(ca)]),
        );
        assert!(!m.satisfies(&dom, &h).unwrap());
    }

    #[test]
    fn tautology_true_in_all_models() {
        let (lang, dom, ..) = tiny();
        let models = enumerate_models(&lang, &dom, 1_000_000).unwrap();
        let t = Formula::tautology();
        for m in &models {
            assert!(m.satisfies(&dom, &t).unwrap());
        }
    }

    #[test]
    fn enumeration_counts() {
        // 2 constants over |D| = 2 and one binary predicate over 4
        // cells: 2 * 2 * 2^4 = 64 models.
        let (lang, dom, ..) = tiny();
        let models = enumerate_models(&lang, &dom, 1_000_000).unwrap();
        assert_eq!(models.len(), 64);
    }

    #[test]
    fn enumeration_budget_enforced() {
        let (lang, dom, ..) = tiny();
        assert!(matches!(
            enumerate_models(&lang, &dom, 10),
            Err(IntensionalError::EnumerationTooLarge { .. })
        ));
    }

    #[test]
    fn unbound_variable_reported() {
        let (_lang, dom, p, ..) = tiny();
        let mut m = ExtModel::new();
        m.set_pred(p, Relation::new(2));
        let f = Formula::Pred(p, vec![TermRef::var("x"), TermRef::var("x")]);
        assert!(matches!(
            m.satisfies(&dom, &f),
            Err(IntensionalError::UnboundVariable(_))
        ));
    }
}
