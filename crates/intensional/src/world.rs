//! Possible worlds and intensional relations.
//!
//! The paper's key observation (§2) is a circularity: Guarino defines
//! intensional relations as functions from worlds to extensional
//! relations, but a world can only *have* structure through
//! extensional relations. We make the distinction executable:
//!
//! * a [`World::Blocks`] world carries primitive structure (block
//!   coordinates), so rules such as "x is above y" can be *evaluated*;
//! * a [`World::Opaque`] world is a bare index — a rule has nothing to
//!   read, and constructing a rule-based intensional relation over it
//!   fails with [`IntensionalError::OpaqueWorld`]. The only way to get
//!   an intensional relation over opaque worlds is to *stipulate* the
//!   extension per world ([`IntensionalRelation::from_table`]) — i.e.
//!   the extensional relation is logically prior, which is the paper's
//!   point.

use crate::domain::{Domain, Elem};
use crate::error::{IntensionalError, Result};
use crate::relation::Relation;
use std::collections::BTreeMap;

/// Primitive structure for the paper's blocks example: each placed
/// block has integer coordinates (column, height).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlocksWorld {
    positions: BTreeMap<Elem, (i32, i32)>,
}

impl BlocksWorld {
    /// An empty blocks world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Place (or move) a block.
    pub fn place(&mut self, block: Elem, column: i32, height: i32) {
        self.positions.insert(block, (column, height));
    }

    /// The position of a block, if placed.
    pub fn position(&self, block: Elem) -> Option<(i32, i32)> {
        self.positions.get(&block).copied()
    }

    /// Blocks placed in this world.
    pub fn blocks(&self) -> impl Iterator<Item = Elem> + '_ {
        self.positions.keys().copied()
    }

    /// Is `a` above `b` (same column, strictly greater height)?
    pub fn above(&self, a: Elem, b: Elem) -> bool {
        match (self.position(a), self.position(b)) {
            (Some((ca, ha)), Some((cb, hb))) => ca == cb && ha > hb,
            _ => false,
        }
    }
}

/// A possible world: structured or opaque.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum World {
    /// A world with primitive structure (readable by rules).
    Blocks(BlocksWorld),
    /// A bare world index with no structure at all.
    Opaque(u32),
}

impl World {
    /// True for opaque worlds.
    pub fn is_opaque(&self) -> bool {
        matches!(self, World::Opaque(_))
    }
}

/// A finite set `W` of possible worlds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldSpace {
    worlds: Vec<World>,
}

impl WorldSpace {
    /// A space of structured worlds.
    pub fn structured(worlds: Vec<BlocksWorld>) -> Self {
        WorldSpace {
            worlds: worlds.into_iter().map(World::Blocks).collect(),
        }
    }

    /// A space of `n` opaque worlds.
    pub fn opaque(n: usize) -> Self {
        WorldSpace {
            worlds: (0..n as u32).map(World::Opaque).collect(),
        }
    }

    /// Mixed construction.
    pub fn from_worlds(worlds: Vec<World>) -> Self {
        WorldSpace { worlds }
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True when there are no worlds.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Fetch a world.
    pub fn world(&self, i: usize) -> Result<&World> {
        self.worlds.get(i).ok_or(IntensionalError::UnknownWorld(i))
    }

    /// Iterate `(index, world)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &World)> {
        self.worlds.iter().enumerate()
    }

    /// All possible blocks-world configurations of `blocks` over a
    /// `columns × heights` grid — "the set of legal configurations of
    /// the elements of D" from the paper, made finite.
    pub fn enumerate_blocks(blocks: &[Elem], columns: i32, heights: i32) -> Self {
        let cells: Vec<(i32, i32)> = (0..columns)
            .flat_map(|c| (0..heights).map(move |h| (c, h)))
            .collect();
        let mut configs: Vec<BlocksWorld> = vec![BlocksWorld::new()];
        for &b in blocks {
            let mut next = vec![];
            for cfg in &configs {
                for &(c, h) in &cells {
                    // legality: no two blocks in the same cell
                    if cfg.positions.values().any(|&p| p == (c, h)) {
                        continue;
                    }
                    let mut cfg2 = cfg.clone();
                    cfg2.place(b, c, h);
                    next.push(cfg2);
                }
            }
            configs = next;
        }
        WorldSpace::structured(configs)
    }
}

/// An intensional relation `r : W → 2^{Dⁿ}` (the paper's structure
/// (2)): for every world, an extensional relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntensionalRelation {
    name: String,
    arity: usize,
    per_world: Vec<Relation>,
}

impl IntensionalRelation {
    /// Construct by *rule*: evaluate `rule(world)` in every world. This
    /// requires every world to be structured; an opaque world yields
    /// [`IntensionalError::OpaqueWorld`] — the executable form of the
    /// paper's circularity argument.
    pub fn from_rule(
        name: &str,
        arity: usize,
        space: &WorldSpace,
        rule: impl Fn(&BlocksWorld) -> Relation,
    ) -> Result<Self> {
        let mut per_world = Vec::with_capacity(space.len());
        for (i, w) in space.iter() {
            match w {
                World::Blocks(bw) => {
                    let r = rule(bw);
                    if r.arity() != arity {
                        return Err(IntensionalError::ArityMismatch {
                            expected: arity,
                            got: r.arity(),
                        });
                    }
                    per_world.push(r);
                }
                World::Opaque(_) => {
                    return Err(IntensionalError::OpaqueWorld {
                        world: i,
                        relation: name.to_string(),
                    })
                }
            }
        }
        Ok(IntensionalRelation {
            name: name.to_string(),
            arity,
            per_world,
        })
    }

    /// Construct by *stipulation*: one extensional relation per world,
    /// given explicitly. Works over any worlds — but the extensions
    /// are then logically prior to the intensional relation.
    pub fn from_table(name: &str, arity: usize, space: &WorldSpace, table: Vec<Relation>) -> Result<Self> {
        if table.len() != space.len() {
            return Err(IntensionalError::UnknownWorld(table.len()));
        }
        for r in &table {
            if r.arity() != arity {
                return Err(IntensionalError::ArityMismatch {
                    expected: arity,
                    got: r.arity(),
                });
            }
        }
        Ok(IntensionalRelation {
            name: name.to_string(),
            arity,
            per_world: table,
        })
    }

    /// The paper's `[above]` as a rule over blocks worlds.
    pub fn aboveness(name: &str, domain: &Domain, space: &WorldSpace) -> Result<Self> {
        let elems: Vec<Elem> = domain.elems().collect();
        Self::from_rule(name, 2, space, |w| {
            let mut r = Relation::new(2);
            for &a in &elems {
                for &b in &elems {
                    if a != b && w.above(a, b) {
                        r.insert(vec![a, b]).expect("arity 2 by construction");
                    }
                }
            }
            r
        })
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The extension at world `i` — the paper's structure (3):
    /// `[above](w) = {(a,b)}`.
    pub fn at(&self, i: usize) -> Result<&Relation> {
        self.per_world.get(i).ok_or(IntensionalError::UnknownWorld(i))
    }

    /// Is the relation *rigid* (same extension in all worlds)?
    pub fn is_rigid(&self) -> bool {
        self.per_world.windows(2).all(|w| w[0] == w[1])
    }

    /// How many distinct extensions occur across worlds?
    pub fn n_distinct_extensions(&self) -> usize {
        let mut seen: Vec<&Relation> = vec![];
        for r in &self.per_world {
            if !seen.contains(&r) {
                seen.push(r);
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks_domain() -> (Domain, Elem, Elem, Elem, Elem) {
        let mut d = Domain::new();
        let a = d.elem("a");
        let b = d.elem("b");
        let c = d.elem("c");
        let dd = d.elem("d");
        (d, a, b, c, dd)
    }

    #[test]
    fn aboveness_reads_world_structure() {
        let (dom, a, b, _c, d) = blocks_domain();
        let mut w = BlocksWorld::new();
        w.place(a, 0, 2);
        w.place(b, 0, 1);
        w.place(d, 0, 0);
        let space = WorldSpace::structured(vec![w]);
        let above = IntensionalRelation::aboveness("above", &dom, &space).unwrap();
        let ext = above.at(0).unwrap();
        assert_eq!(ext.len(), 3); // (a,b), (a,d), (b,d)
        assert!(ext.contains(&[a, b]));
        assert!(ext.contains(&[a, d]));
        assert!(ext.contains(&[b, d]));
    }

    #[test]
    fn different_worlds_different_extensions() {
        let (dom, a, b, ..) = blocks_domain();
        let mut w0 = BlocksWorld::new();
        w0.place(a, 0, 1);
        w0.place(b, 0, 0);
        let mut w1 = BlocksWorld::new();
        w1.place(b, 0, 1);
        w1.place(a, 0, 0);
        let space = WorldSpace::structured(vec![w0, w1]);
        let above = IntensionalRelation::aboveness("above", &dom, &space).unwrap();
        assert!(above.at(0).unwrap().contains(&[a, b]));
        assert!(above.at(1).unwrap().contains(&[b, a]));
        assert!(!above.is_rigid());
        assert_eq!(above.n_distinct_extensions(), 2);
    }

    #[test]
    fn different_columns_are_not_above() {
        let (dom, a, b, ..) = blocks_domain();
        let mut w = BlocksWorld::new();
        w.place(a, 0, 1);
        w.place(b, 1, 0);
        let space = WorldSpace::structured(vec![w]);
        let above = IntensionalRelation::aboveness("above", &dom, &space).unwrap();
        assert!(above.at(0).unwrap().is_empty());
    }

    #[test]
    fn rule_over_opaque_world_fails() {
        let (dom, ..) = blocks_domain();
        let space = WorldSpace::opaque(3);
        let err = IntensionalRelation::aboveness("above", &dom, &space).unwrap_err();
        assert!(matches!(err, IntensionalError::OpaqueWorld { world: 0, .. }));
    }

    #[test]
    fn stipulated_table_works_over_opaque_worlds() {
        let (_, a, b, ..) = blocks_domain();
        let space = WorldSpace::opaque(2);
        let r0 = Relation::from_tuples(2, vec![vec![a, b]]).unwrap();
        let r1 = Relation::new(2);
        let rel =
            IntensionalRelation::from_table("above", 2, &space, vec![r0.clone(), r1]).unwrap();
        assert_eq!(rel.at(0).unwrap(), &r0);
        assert!(rel.at(1).unwrap().is_empty());
        assert!(rel.at(2).is_err());
    }

    #[test]
    fn table_length_and_arity_checked() {
        let space = WorldSpace::opaque(2);
        assert!(IntensionalRelation::from_table("r", 2, &space, vec![Relation::new(2)]).is_err());
        assert!(IntensionalRelation::from_table(
            "r",
            2,
            &space,
            vec![Relation::new(2), Relation::new(1)]
        )
        .is_err());
    }

    #[test]
    fn enumerate_blocks_respects_legality() {
        let (_, a, b, ..) = blocks_domain();
        // 2 blocks on a 1×2 grid: exactly 2 legal configurations.
        let space = WorldSpace::enumerate_blocks(&[a, b], 1, 2);
        assert_eq!(space.len(), 2);
        // 2 blocks on a 2×2 grid: 4*3 = 12 configurations.
        let space2 = WorldSpace::enumerate_blocks(&[a, b], 2, 2);
        assert_eq!(space2.len(), 12);
    }

    #[test]
    fn mixed_space_fails_only_at_the_opaque_world() {
        let (dom, a, ..) = blocks_domain();
        let mut w = BlocksWorld::new();
        w.place(a, 0, 0);
        let space = WorldSpace::from_worlds(vec![World::Blocks(w), World::Opaque(7)]);
        let err = IntensionalRelation::aboveness("above", &dom, &space).unwrap_err();
        assert!(matches!(err, IntensionalError::OpaqueWorld { world: 1, .. }));
    }
}
