//! Extensional n-ary relations over a finite domain.

use crate::domain::{Domain, Elem};
use crate::error::{IntensionalError, Result};
use std::collections::BTreeSet;

/// An extensional relation: a set of `arity`-tuples, e.g. the paper's
/// structure (1): `[above] = {(a,b), (a,d), (b,d)}`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Vec<Elem>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Build from tuples, checking arity.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Vec<Elem>>) -> Result<Self> {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Insert a tuple.
    pub fn insert(&mut self, t: Vec<Elem>) -> Result<()> {
        if t.len() != self.arity {
            return Err(IntensionalError::ArityMismatch {
                expected: self.arity,
                got: t.len(),
            });
        }
        self.tuples.insert(t);
        Ok(())
    }

    /// Membership.
    pub fn contains(&self, t: &[Elem]) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate the tuples.
    pub fn tuples(&self) -> impl Iterator<Item = &Vec<Elem>> {
        self.tuples.iter()
    }

    /// The full relation `Dⁿ`.
    pub fn full(domain: &Domain, arity: usize) -> Self {
        Relation {
            arity,
            tuples: domain.tuples(arity).into_iter().collect(),
        }
    }

    /// Render as `{(a,b), …}` using domain names.
    pub fn render(&self, domain: &Domain) -> String {
        let mut parts = vec![];
        for t in &self.tuples {
            let names: Vec<&str> = t.iter().map(|&e| domain.name(e)).collect();
            parts.push(format!("({})", names.join(",")));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_one_from_the_paper() {
        // [above] = {(a,b), (a,d), (b,d)}
        let mut d = Domain::new();
        let a = d.elem("a");
        let b = d.elem("b");
        let _c = d.elem("c");
        let dd = d.elem("d");
        let above = Relation::from_tuples(
            2,
            vec![vec![a, b], vec![a, dd], vec![b, dd]],
        )
        .unwrap();
        assert_eq!(above.len(), 3);
        assert!(above.contains(&[a, b]));
        assert!(!above.contains(&[b, a]));
        let s = above.render(&d);
        assert!(s.contains("(a,b)") && s.contains("(b,d)"));
    }

    #[test]
    fn arity_is_enforced() {
        let mut d = Domain::new();
        let a = d.elem("a");
        let mut r = Relation::new(2);
        assert!(r.insert(vec![a]).is_err());
        assert!(r.insert(vec![a, a]).is_ok());
    }

    #[test]
    fn full_relation_has_all_tuples() {
        let mut d = Domain::new();
        d.elem("a");
        d.elem("b");
        let f = Relation::full(&d, 2);
        assert_eq!(f.len(), 4);
        assert_eq!(Relation::full(&d, 0).len(), 1);
    }
}
