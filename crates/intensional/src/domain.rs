//! Finite domains of named elements.

use std::fmt;

/// An element of a [`Domain`] (dense id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Elem(pub u32);

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A finite set `D` of named elements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Domain {
    names: Vec<String>,
}

impl Domain {
    /// An empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an element by name (idempotent).
    pub fn elem(&mut self, name: &str) -> Elem {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Elem(i as u32);
        }
        self.names.push(name.to_string());
        Elem((self.names.len() - 1) as u32)
    }

    /// Look up without interning.
    pub fn find(&self, name: &str) -> Option<Elem> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Elem(i as u32))
    }

    /// Name of an element.
    pub fn name(&self, e: Elem) -> &str {
        &self.names[e.0 as usize]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All elements.
    pub fn elems(&self) -> impl Iterator<Item = Elem> + '_ {
        (0..self.names.len() as u32).map(Elem)
    }

    /// All n-tuples over the domain (lexicographic order).
    pub fn tuples(&self, arity: usize) -> Vec<Vec<Elem>> {
        let mut out = vec![vec![]];
        for _ in 0..arity {
            let mut next = Vec::with_capacity(out.len() * self.len());
            for prefix in &out {
                for e in self.elems() {
                    let mut p = prefix.clone();
                    p.push(e);
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Domain::new();
        assert_eq!(d.elem("a"), d.elem("a"));
        assert_eq!(d.len(), 1);
        assert_eq!(d.find("a"), Some(Elem(0)));
        assert_eq!(d.find("z"), None);
        assert_eq!(d.name(Elem(0)), "a");
    }

    #[test]
    fn tuples_enumerate_cartesian_power() {
        let mut d = Domain::new();
        d.elem("a");
        d.elem("b");
        assert_eq!(d.tuples(0).len(), 1);
        assert_eq!(d.tuples(1).len(), 2);
        assert_eq!(d.tuples(2).len(), 4);
        assert_eq!(d.tuples(3).len(), 8);
    }
}
