//! # summa-intensional — Guarino's intensional-model framework
//!
//! An executable rendering of the formal apparatus of Guarino, *Formal
//! ontology and information systems* (FOIS 1998), as analyzed in §2 of
//! *Summa Contra Ontologiam*:
//!
//! * a finite [`domain::Domain`] of elements;
//! * [`relation::Relation`] — extensional n-ary relations, e.g. the
//!   paper's `[above] = {(a,b), (a,d), (b,d)}` (structure (1));
//! * [`world::WorldSpace`] — sets of possible worlds, either
//!   *structured* (carrying primitive state, the paper's blocks world)
//!   or *opaque* (bare indices with no structure);
//! * [`world::IntensionalRelation`] — functions `r : W → 2^{Dⁿ}`
//!   (structure (2)), constructible from a rule over structured worlds
//!   or by explicit table over opaque ones;
//! * [`formula`] / [`model`] — a small first-order language `L(V)` with
//!   finite extensional models and satisfaction checking;
//! * [`commitment::OntologicalCommitment`] — intensional models mapping
//!   each world to an extensional model, yielding the *intended model
//!   set* of a language;
//! * [`commitment::OntonomyJudgment`] — Guarino's definition of an
//!   ontonomy ("a set of axioms whose models approximate the intended
//!   models") made checkable at the paper's three strictness levels:
//!   exact, approximate, and abstracted-from-language;
//! * [`circularity`] — the paper's circularity argument as a
//!   dependency analysis: defining intensional relations requires
//!   world structure, which is itself extensional.
//!
//! ## Quick example — the paper's structures (1)–(3)
//!
//! ```
//! use summa_intensional::prelude::*;
//!
//! // Four blocks a, b, c, d.
//! let mut dom = Domain::new();
//! let (a, b, _c, d) = (dom.elem("a"), dom.elem("b"), dom.elem("c"), dom.elem("d"));
//!
//! // A structured world where a is above b and d, and b is above d.
//! let mut w0 = BlocksWorld::new();
//! w0.place(a, 0, 2);
//! w0.place(b, 0, 1);
//! w0.place(d, 0, 0);
//! let space = WorldSpace::structured(vec![w0]);
//!
//! // [above] as an intensional relation: a rule over world structure.
//! let above = IntensionalRelation::aboveness("above", &dom, &space).unwrap();
//! let ext = above.at(0).unwrap();            // structure (1) for this world
//! assert!(ext.contains(&[a, b]));
//! assert!(ext.contains(&[a, d]));
//! assert!(ext.contains(&[b, d]));
//! assert_eq!(ext.len(), 3);
//! ```

pub mod circularity;
pub mod commitment;
pub mod designation;
pub mod domain;
pub mod error;
pub mod formula;
pub mod model;
pub mod relation;
pub mod world;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::circularity::{CircularityReport, DependencyGraph, Notion};
    pub use crate::commitment::{AdmissionLevel, OntologicalCommitment, OntonomyJudgment};
    pub use crate::designation::{
        compare_descriptions, husserl_example, Description, DesignationReport,
    };
    pub use crate::domain::{Domain, Elem};
    pub use crate::error::IntensionalError;
    pub use crate::formula::{Formula, Language, TermRef};
    pub use crate::model::{enumerate_models, ExtModel};
    pub use crate::relation::Relation;
    pub use crate::world::{BlocksWorld, IntensionalRelation, World, WorldSpace};
}
