//! Designation vs signification — the Husserl example.
//!
//! §3 of the paper:
//!
//! > "the general idea in ontology seems to be that A means B if and
//! > only if A designates B. It is important however to keep the
//! > distinction between the two and, for this, I will just consider a
//! > famous example from Husserl: *the winner at Jena* / *the loser at
//! > Waterloo*. We notice that the meaning of these two phrases is
//! > different, although their designatum is the same: Napoleon."
//!
//! We model a *description* as a unary formula (one free variable) and
//! give it two readings over a world space equipped with one
//! extensional model per world:
//!
//! * its **designatum** in a world: the unique element satisfying it
//!   there (if any) — a world-relative referent;
//! * its **signification**: the function from worlds to referents (its
//!   intension).
//!
//! Two descriptions can co-designate in the *actual* world while their
//! significations differ — which is exactly why "A designates B"
//! cannot serve as a theory of meaning, even before the paper's deeper
//! objections.

use crate::domain::{Domain, Elem};
use crate::error::{IntensionalError, Result};
use crate::formula::Formula;
use crate::model::ExtModel;
use std::collections::BTreeMap;

/// A definite description: a formula with exactly one free variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Description {
    /// Display name ("the winner at Jena").
    pub name: String,
    /// The free variable.
    pub var: String,
    /// The describing formula.
    pub body: Formula,
}

impl Description {
    /// Build a description, checking that `var` is the only free
    /// variable of `body`.
    pub fn new(name: &str, var: &str, body: Formula) -> Result<Self> {
        let fv = body.free_vars();
        if fv.len() != 1 || !fv.contains(var) {
            return Err(IntensionalError::UnboundVariable(format!(
                "description '{name}' must have exactly the free variable '{var}'"
            )));
        }
        Ok(Description {
            name: name.to_string(),
            var: var.to_string(),
            body,
        })
    }

    /// The elements satisfying the description in one model.
    pub fn extension(&self, domain: &Domain, model: &ExtModel) -> Result<Vec<Elem>> {
        let mut out = vec![];
        for e in domain.elems() {
            let mut env = BTreeMap::new();
            env.insert(self.var.clone(), e);
            if model.eval(domain, &self.body, &mut env)? {
                out.push(e);
            }
        }
        Ok(out)
    }

    /// The designatum in one model: the unique satisfier, when unique.
    pub fn designatum(&self, domain: &Domain, model: &ExtModel) -> Result<Option<Elem>> {
        let ext = self.extension(domain, model)?;
        Ok(match ext.as_slice() {
            [single] => Some(*single),
            _ => None,
        })
    }

    /// The signification: the designatum in every world of a
    /// commitment (one model per world).
    pub fn signification(
        &self,
        domain: &Domain,
        worlds: &[ExtModel],
    ) -> Result<Vec<Option<Elem>>> {
        worlds
            .iter()
            .map(|m| self.designatum(domain, m))
            .collect()
    }
}

/// The comparison of two descriptions over a world space with a
/// designated actual world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignationReport {
    /// The designata in the actual world.
    pub actual_designata: (Option<Elem>, Option<Elem>),
    /// Do the two descriptions co-designate in the actual world?
    pub co_designate: bool,
    /// Are the two significations (world-indexed referents) equal?
    pub same_signification: bool,
}

/// Compare two descriptions: designation in the actual world vs
/// signification across all worlds.
pub fn compare_descriptions(
    domain: &Domain,
    worlds: &[ExtModel],
    actual: usize,
    a: &Description,
    b: &Description,
) -> Result<DesignationReport> {
    if actual >= worlds.len() {
        return Err(IntensionalError::UnknownWorld(actual));
    }
    let sig_a = a.signification(domain, worlds)?;
    let sig_b = b.signification(domain, worlds)?;
    let actual_a = sig_a[actual];
    let actual_b = sig_b[actual];
    Ok(DesignationReport {
        actual_designata: (actual_a, actual_b),
        co_designate: actual_a.is_some() && actual_a == actual_b,
        same_signification: sig_a == sig_b,
    })
}

/// The paper's example, ready-made: a three-man domain (Napoleon,
/// Wellington, Blücher), an actual world where Napoleon both won at
/// Jena and lost at Waterloo, and a counterfactual world where
/// Wellington lost at Waterloo while Napoleon still won at Jena.
pub fn husserl_example() -> (
    Domain,
    Vec<ExtModel>,
    Description,
    Description,
) {
    use crate::formula::{Language, TermRef};
    use crate::relation::Relation;

    let mut lang = Language::new();
    let won_jena = lang.predicate("won_at_jena", 1);
    let lost_waterloo = lang.predicate("lost_at_waterloo", 1);

    let mut dom = Domain::new();
    let napoleon = dom.elem("napoleon");
    let wellington = dom.elem("wellington");
    let _bluecher = dom.elem("bluecher");

    // Actual world: Napoleon won at Jena AND lost at Waterloo.
    let mut actual = ExtModel::new();
    actual.set_pred(
        won_jena,
        Relation::from_tuples(1, vec![vec![napoleon]]).expect("arity 1"),
    );
    actual.set_pred(
        lost_waterloo,
        Relation::from_tuples(1, vec![vec![napoleon]]).expect("arity 1"),
    );

    // Counterfactual: Napoleon won at Jena, but Wellington lost at
    // Waterloo (history went the other way in Belgium).
    let mut counterfactual = ExtModel::new();
    counterfactual.set_pred(
        won_jena,
        Relation::from_tuples(1, vec![vec![napoleon]]).expect("arity 1"),
    );
    counterfactual.set_pred(
        lost_waterloo,
        Relation::from_tuples(1, vec![vec![wellington]]).expect("arity 1"),
    );

    let winner = Description::new(
        "the winner at Jena",
        "x",
        Formula::Pred(won_jena, vec![TermRef::var("x")]),
    )
    .expect("one free variable");
    let loser = Description::new(
        "the loser at Waterloo",
        "x",
        Formula::Pred(lost_waterloo, vec![TermRef::var("x")]),
    )
    .expect("one free variable");

    (dom, vec![actual, counterfactual], winner, loser)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Language, TermRef};
    use crate::relation::Relation;

    #[test]
    fn husserl_co_designation_without_co_signification() {
        let (dom, worlds, winner, loser) = husserl_example();
        let report =
            compare_descriptions(&dom, &worlds, 0, &winner, &loser).expect("valid worlds");
        // Same designatum in the actual world: Napoleon.
        assert!(report.co_designate);
        let nap = dom.find("napoleon").expect("in domain");
        assert_eq!(report.actual_designata, (Some(nap), Some(nap)));
        // Different significations: in the counterfactual world the
        // loser at Waterloo is Wellington.
        assert!(!report.same_signification);
    }

    #[test]
    fn designatum_requires_uniqueness() {
        let mut lang = Language::new();
        let p = lang.predicate("p", 1);
        let mut dom = Domain::new();
        let a = dom.elem("a");
        let b = dom.elem("b");
        let mut m = ExtModel::new();
        m.set_pred(
            p,
            Relation::from_tuples(1, vec![vec![a], vec![b]]).expect("arity 1"),
        );
        let d = Description::new("a p", "x", Formula::Pred(p, vec![TermRef::var("x")]))
            .expect("one free var");
        // Two satisfiers: no designatum.
        assert_eq!(d.designatum(&dom, &m).expect("evaluates"), None);
        assert_eq!(d.extension(&dom, &m).expect("evaluates").len(), 2);
        // No satisfier: no designatum either.
        let mut empty = ExtModel::new();
        empty.set_pred(p, Relation::new(1));
        assert_eq!(d.designatum(&dom, &empty).expect("evaluates"), None);
    }

    #[test]
    fn descriptions_must_have_one_free_variable() {
        let mut lang = Language::new();
        let q = lang.predicate("q", 2);
        assert!(Description::new(
            "bad",
            "x",
            Formula::Pred(q, vec![TermRef::var("x"), TermRef::var("y")]),
        )
        .is_err());
        assert!(Description::new("closed", "x", Formula::tautology()).is_err());
    }

    #[test]
    fn identical_descriptions_share_signification() {
        let (dom, worlds, winner, _) = husserl_example();
        let report =
            compare_descriptions(&dom, &worlds, 0, &winner, &winner).expect("valid");
        assert!(report.co_designate);
        assert!(report.same_signification);
    }

    #[test]
    fn actual_world_index_is_validated() {
        let (dom, worlds, winner, loser) = husserl_example();
        assert!(compare_descriptions(&dom, &worlds, 99, &winner, &loser).is_err());
    }
}
