//! The paper's circularity argument as a dependency analysis.
//!
//! §2 of *Summa Contra Ontologiam*:
//!
//! > "…the worlds, that one needs in order to define the intensional
//! > relation, can only have structure by virtue of the extensional
//! > relations that the intensional ones are supposed to define. We
//! > are stuck in the middle of a circular argument."
//!
//! We render the argument as a directed graph of *definitional
//! dependencies* between the formal notions of Guarino's construction
//! and detect cycles. Two graphs are provided ready-made:
//!
//! * [`DependencyGraph::guarino`] — the construction as the paper
//!   reads it (worlds are bare indices): intensional relations depend
//!   on world structure, world structure depends on extensional
//!   relations, extensional relations are produced by applying
//!   intensional relations to worlds → a cycle;
//! * [`DependencyGraph::guarino_with_primitive_worlds`] — the repair
//!   the paper implicitly demands: worlds carry *primitive* (pre-
//!   relational) structure, breaking the cycle — at the price of
//!   making the extensional facts logically prior, which contradicts
//!   the intensional relations' definitional role.

use std::collections::BTreeMap;
use summa_guard::{Budget, Governed, Interrupt, Meter};

/// A formal notion in the dependency analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Notion {
    /// An intensional relation `r : W → 2^{Dⁿ}`.
    IntensionalRelation,
    /// The structure of a possible world.
    WorldStructure,
    /// An extensional relation (a set of tuples).
    ExtensionalRelation,
    /// Primitive, pre-relational world state (e.g. block coordinates).
    PrimitiveState,
}

impl Notion {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Notion::IntensionalRelation => "intensional relation",
            Notion::WorldStructure => "world structure",
            Notion::ExtensionalRelation => "extensional relation",
            Notion::PrimitiveState => "primitive state",
        }
    }
}

/// A directed graph of "X is defined in terms of Y" edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyGraph {
    edges: Vec<(Notion, Notion, &'static str)>,
}

/// The outcome of cycle detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircularityReport {
    /// A definitional cycle, as a sequence of notions (first = last),
    /// when one exists.
    pub cycle: Option<Vec<Notion>>,
    /// A topological order of the notions when the graph is acyclic.
    pub topological_order: Option<Vec<Notion>>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the edge "`from` is defined in terms of `to`".
    pub fn depends(&mut self, from: Notion, to: Notion, why: &'static str) {
        self.edges.push((from, to, why));
    }

    /// The edges.
    pub fn edges(&self) -> &[(Notion, Notion, &'static str)] {
        &self.edges
    }

    /// Guarino's construction as the paper reads it.
    pub fn guarino() -> Self {
        let mut g = Self::new();
        g.depends(
            Notion::IntensionalRelation,
            Notion::WorldStructure,
            "r : W → 2^{Dⁿ} assigns an extension by inspecting each world",
        );
        g.depends(
            Notion::WorldStructure,
            Notion::ExtensionalRelation,
            "a world's structure is exactly which tuples hold in it",
        );
        g.depends(
            Notion::ExtensionalRelation,
            Notion::IntensionalRelation,
            "extensions are obtained by applying intensional relations to worlds",
        );
        g
    }

    /// The repaired construction: worlds carry primitive state.
    pub fn guarino_with_primitive_worlds() -> Self {
        let mut g = Self::new();
        g.depends(
            Notion::IntensionalRelation,
            Notion::WorldStructure,
            "r : W → 2^{Dⁿ} assigns an extension by inspecting each world",
        );
        g.depends(
            Notion::WorldStructure,
            Notion::PrimitiveState,
            "world structure is read off pre-relational state (e.g. coordinates)",
        );
        g.depends(
            Notion::ExtensionalRelation,
            Notion::IntensionalRelation,
            "extensions are obtained by applying intensional relations to worlds",
        );
        g
    }

    /// Detect a cycle (DFS three-colouring); produce a topological
    /// order when acyclic.
    pub fn analyze(&self) -> CircularityReport {
        self.analyze_metered(&mut Meter::unlimited())
            .expect("unlimited meter never interrupts")
    }

    /// Budget-governed cycle detection. An interrupted analysis
    /// carries no partial report: a half-explored graph supports
    /// neither a cycle claim nor a topological order.
    pub fn analyze_governed(&self, budget: &Budget) -> Governed<CircularityReport> {
        let mut meter = budget.meter();
        match self.analyze_metered(&mut meter) {
            Ok(r) => Governed::Completed(r),
            Err(i) => Governed::from_interrupt(i, None),
        }
    }

    /// The metered DFS, charging one step per edge traversal and per
    /// node retirement.
    pub fn analyze_metered(
        &self,
        meter: &mut Meter,
    ) -> Result<CircularityReport, Interrupt> {
        let mut nodes: Vec<Notion> = vec![];
        for &(a, b, _) in &self.edges {
            if !nodes.contains(&a) {
                nodes.push(a);
            }
            if !nodes.contains(&b) {
                nodes.push(b);
            }
        }
        let adj: BTreeMap<Notion, Vec<Notion>> = {
            let mut m: BTreeMap<Notion, Vec<Notion>> = BTreeMap::new();
            for &(a, b, _) in &self.edges {
                m.entry(a).or_default().push(b);
            }
            m
        };
        #[derive(PartialEq, Clone, Copy)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: BTreeMap<Notion, Color> =
            nodes.iter().map(|&n| (n, Color::White)).collect();
        let mut order: Vec<Notion> = vec![];
        // Iterative DFS with an explicit stack of (node, child cursor).
        for &start in &nodes {
            if color[&start] != Color::White {
                continue;
            }
            let mut stack: Vec<(Notion, usize)> = vec![(start, 0)];
            color.insert(start, Color::Grey);
            while let Some(&mut (n, ref mut cursor)) = stack.last_mut() {
                let children = adj.get(&n).map(Vec::as_slice).unwrap_or(&[]);
                if *cursor < children.len() {
                    meter.charge(1)?;
                    let child = children[*cursor];
                    *cursor += 1;
                    match color[&child] {
                        Color::White => {
                            color.insert(child, Color::Grey);
                            stack.push((child, 0));
                        }
                        Color::Grey => {
                            // Found a cycle: slice the stack from child.
                            let mut cyc: Vec<Notion> = stack
                                .iter()
                                .map(|&(x, _)| x)
                                .skip_while(|&x| x != child)
                                .collect();
                            cyc.push(child);
                            return Ok(CircularityReport {
                                cycle: Some(cyc),
                                topological_order: None,
                            });
                        }
                        Color::Black => {}
                    }
                } else {
                    meter.charge(1)?;
                    color.insert(n, Color::Black);
                    order.push(n);
                    stack.pop();
                }
            }
        }
        order.reverse();
        Ok(CircularityReport {
            cycle: None,
            topological_order: Some(order),
        })
    }

    /// Render the edges as "X ← Y (why)" lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (a, b, why) in &self.edges {
            out.push_str(&format!("{} depends on {}: {}\n", a.name(), b.name(), why));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarino_construction_is_circular() {
        let g = DependencyGraph::guarino();
        let report = g.analyze();
        let cycle = report.cycle.expect("the paper's cycle must be found");
        // The cycle passes through all three notions.
        assert!(cycle.contains(&Notion::IntensionalRelation));
        assert!(cycle.contains(&Notion::WorldStructure));
        assert!(cycle.contains(&Notion::ExtensionalRelation));
        assert_eq!(cycle.first(), cycle.last());
        assert!(report.topological_order.is_none());
    }

    #[test]
    fn primitive_worlds_break_the_cycle() {
        let g = DependencyGraph::guarino_with_primitive_worlds();
        let report = g.analyze();
        assert!(report.cycle.is_none());
        let order = report.topological_order.expect("acyclic graph");
        // In the repaired order, primitive state must come after (i.e.
        // be depended on by) world structure: extensional facts are
        // logically prior — the paper's conclusion.
        let pos = |n: Notion| order.iter().position(|&x| x == n).expect("present");
        assert!(pos(Notion::WorldStructure) < pos(Notion::PrimitiveState));
        assert!(pos(Notion::IntensionalRelation) < pos(Notion::WorldStructure));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = DependencyGraph::new();
        let r = g.analyze();
        assert!(r.cycle.is_none());
        assert_eq!(r.topological_order, Some(vec![]));
    }

    #[test]
    fn self_loop_detected() {
        let mut g = DependencyGraph::new();
        g.depends(Notion::WorldStructure, Notion::WorldStructure, "self");
        let r = g.analyze();
        assert_eq!(
            r.cycle,
            Some(vec![Notion::WorldStructure, Notion::WorldStructure])
        );
    }

    #[test]
    fn governed_analysis_completes_and_exhausts() {
        let g = DependencyGraph::guarino();
        let done = g.analyze_governed(&Budget::unlimited());
        assert!(done.is_completed());
        assert_eq!(done.completed(), Some(g.analyze()));
        // The cycle needs three edge traversals; one step cannot reach
        // a verdict.
        let starved = g.analyze_governed(&Budget::new().with_steps(1));
        assert!(matches!(
            starved,
            Governed::Exhausted { partial: None, .. }
        ));
    }

    #[test]
    fn render_mentions_reasons() {
        let g = DependencyGraph::guarino();
        let s = g.render();
        assert!(s.contains("intensional relation depends on world structure"));
        assert!(!s.contains("circular")); // render is neutral
        assert_eq!(s.lines().count(), 3);
    }
}
