//! Error types for the intensional-model framework.

use std::fmt;

/// Errors raised while building or evaluating intensional structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntensionalError {
    /// A rule-based intensional relation was requested over a world
    /// with no structure to read — the paper's circularity, surfaced
    /// as an error.
    OpaqueWorld { world: usize, relation: String },
    /// A world index outside the world space.
    UnknownWorld(usize),
    /// An element does not belong to the domain.
    UnknownElem(String),
    /// Tuple arity does not match the relation's arity.
    ArityMismatch { expected: usize, got: usize },
    /// A formula used an unbound variable.
    UnboundVariable(String),
    /// A formula used a symbol not in the language's vocabulary.
    UnknownSymbol(String),
    /// Model enumeration would exceed the given budget.
    EnumerationTooLarge { bound: u64, budget: u64 },
}

impl fmt::Display for IntensionalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntensionalError::OpaqueWorld { world, relation } => write!(
                f,
                "cannot evaluate rule-based relation '{relation}' in opaque world {world}: \
                 worlds have structure only via extensional relations (circularity)"
            ),
            IntensionalError::UnknownWorld(w) => write!(f, "unknown world {w}"),
            IntensionalError::UnknownElem(e) => write!(f, "unknown element '{e}'"),
            IntensionalError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            IntensionalError::UnboundVariable(v) => write!(f, "unbound variable '{v}'"),
            IntensionalError::UnknownSymbol(s) => write!(f, "unknown symbol '{s}'"),
            IntensionalError::EnumerationTooLarge { bound, budget } => {
                write!(f, "model enumeration needs {bound} models, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for IntensionalError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IntensionalError>;
