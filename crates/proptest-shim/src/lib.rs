//! A minimal, dependency-free property-testing harness exposing the
//! subset of the `proptest` API this workspace uses.
//!
//! The build must succeed with the network disabled, so the real
//! `proptest` crate cannot be fetched; the workspace instead aliases
//! this crate as `proptest` in `[dev-dependencies]`
//! (`proptest = { package = "summa-proptest-shim", path = … }`), and
//! the existing property tests compile unchanged.
//!
//! Supported surface:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_filter`,
//!   `boxed`; strategies for integer ranges, tuples (2–4), [`Just`];
//! * [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(…)]`,
//!   multiple `#[test] fn name(pat in strategy, …) { … }` items;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`, `prop_oneof!`.
//!
//! Differences from real proptest: generation is a fixed-seed
//! SplitMix64 stream (fully deterministic per test name), and there is
//! **no shrinking** — a failure reports the case number and message
//! only.

use std::rc::Rc;

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64).
// ---------------------------------------------------------------------

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded explicitly.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derive a seed from a test name (FNV-1a) so every test gets a
    /// stable but distinct stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

/// A value generator. Mirrors `proptest::strategy::Strategy`.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retry generation until `f` accepts the value (up to an attempt
    /// cap, after which the last value is returned regardless).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..1000 {
            if (self.f)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn ErasedStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_erased(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub fn union<T>(alternatives: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
where
    T: 'static,
{
    assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
    UnionStrategy { alternatives }.boxed()
}

struct UnionStrategy<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for UnionStrategy<T> {
    fn clone(&self) -> Self {
        UnionStrategy {
            alternatives: self.alternatives.clone(),
        }
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range strategy");
        char::from_u32(lo + rng.below((hi - lo) as u64) as u32).unwrap_or(self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec<S::Value>` with lengths drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// Output of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.sizes.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Runner plumbing.
// ---------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case (and test) fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Drive one property: generate inputs and run `case` up to
/// `config.cases` times. Called by the [`proptest!`] expansion.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64) * 64;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property '{name}': too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {passed}: {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// The property-test declaration macro (see module docs for the
/// supported grammar).
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    // Without one.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*);
    };
    (@with_config ($cfg:expr)) => {};
    (@with_config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config = $cfg;
            // Strategies are built once, like real proptest.
            let strategy = ($($strat,)+);
            $crate::run_property(stringify!($name), &config, |rng| {
                let ($($arg,)+) = strategy.generate(rng);
                $body
                Ok(())
            });
        }
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
}

/// Assert inside a property; failure fails the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both {:?}", a
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        use $crate::Strategy as _;
        $crate::union(vec![$($arm.boxed()),+])
    }};
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}
