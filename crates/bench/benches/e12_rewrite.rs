//! E12 — order-sorted rewriting scaling: Peano addition normal forms
//! as term size grows, plus critical-pair analysis cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::osa::prelude::*;

fn peano() -> (Theory, OpId, OpId, OpId) {
    let mut b = SignatureBuilder::new();
    let nat = b.sort("Nat");
    let zero = b.op("zero", &[], nat);
    let succ = b.op("succ", &[nat], nat);
    let plus = b.op("plus", &[nat, nat], nat);
    let sig = b.finish().expect("ok");
    let mut th = Theory::new(sig);
    let x = Term::var("x", nat);
    let y = Term::var("y", nat);
    th.add_equation(Equation::new(
        Term::app(plus, vec![Term::constant(zero), y.clone()]),
        y.clone(),
    ))
    .expect("valid");
    th.add_equation(Equation::new(
        Term::app(plus, vec![Term::app(succ, vec![x.clone()]), y.clone()]),
        Term::app(succ, vec![Term::app(plus, vec![x, y])]),
    ))
    .expect("valid");
    (th, zero, succ, plus)
}

fn num(n: usize, zero: OpId, succ: OpId) -> Term {
    let mut t = Term::constant(zero);
    for _ in 0..n {
        t = Term::app(succ, vec![t]);
    }
    t
}

fn print_record() {
    summa_bench::banner("E12", "order-sorted rewriting substrate (synthetic)");
    let (th, zero, succ, plus) = peano();
    let rs = RewriteSystem::from_theory(&th).expect("orientable");
    for &n in &[4usize, 16, 64] {
        let t = Term::app(plus, vec![num(n, zero, succ), num(n, zero, succ)]);
        let nf = rs.normal_form(&t, 100_000).expect("terminates");
        println!("  {n} + {n} normalizes to a term of depth {}", nf.depth());
    }
    println!(
        "  critical pairs: {}, locally confluent: {}",
        rs.critical_pairs().len(),
        rs.is_locally_confluent(1000).expect("within budget")
    );
}

fn bench(c: &mut Criterion) {
    print_record();
    let (th, zero, succ, plus) = peano();
    let rs = RewriteSystem::from_theory(&th).expect("orientable");
    let mut group = c.benchmark_group("e12_rewrite");
    for &n in &[4usize, 16, 64] {
        let t = Term::app(plus, vec![num(n, zero, succ), num(n, zero, succ)]);
        group.bench_with_input(
            BenchmarkId::new("peano_addition_nf", n),
            &n,
            |bencher, _| {
                bencher.iter(|| rs.normal_form(black_box(&t), 1_000_000).expect("ok"))
            },
        );
    }
    group.bench_function("critical_pairs", |b| {
        b.iter(|| black_box(&rs).critical_pairs())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
