//! E3 — the admission matrix (§2's over-breadth results): prints the
//! full artifact × definition table, then times single-definition
//! judgments and the whole-matrix computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use summa_core::prelude::*;

fn print_record() {
    summa_bench::banner(
        "E3",
        "\"a C program … a grocery list … a tax return form would qualify\", §2",
    );
    let m = syntactic_critique();
    println!("{}", m.render());
    for d in &m.definitions {
        println!(
            "  {:<26} admits {:>2} of {}",
            d,
            m.admission_count(d),
            m.artifacts.len()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_record();
    let corpus = standard_corpus();
    let grocery = corpus
        .iter()
        .find(|a| a.name() == "grocery list")
        .expect("corpus entry");

    let mut group = c.benchmark_group("e3_admission");
    group.bench_function("full_matrix", |b| {
        b.iter(|| black_box(syntactic_critique()))
    });
    let guarino = GuarinoDefinition::approximate();
    group.bench_function("guarino_judges_grocery_list", |b| {
        b.iter(|| guarino.admits(black_box(grocery), None))
    });
    let bcm = BcmDefinition;
    let vehicles = corpus
        .iter()
        .find(|a| a.name() == "vehicles BCM ontonomy")
        .expect("corpus entry");
    group.bench_function("bcm_judges_vehicles", |b| {
        b.iter(|| bcm.admits(black_box(vehicles), None))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
