//! E4 — Definition 1 (Bench-Capon & Malcolm): prints the vehicles
//! ontology signature and its model-check verdicts, then times
//! signature validation and instance-model checking as the hierarchy
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::ontonomy::corpus::vehicles_signature;
use summa_core::substrates::ontonomy::prelude::*;
use summa_core::substrates::osa::algebra::AlgebraBuilder;
use summa_core::substrates::osa::signature::SignatureBuilder as OsaSignatureBuilder;
use summa_core::substrates::osa::theory::{DataDomain, Theory};

fn print_record() {
    summa_bench::banner("E4", "Definition 1, §2");
    let v = vehicles_signature().expect("well-formed");
    print!("{}", v.ontonomy.signature.render());
    println!(
        "  sample model is a model: {}",
        v.ontonomy.is_model(&v.sample_model()).is_ok()
    );
    println!(
        "  broken model rejected:   {}",
        v.ontonomy.is_model(&v.broken_model()).is_err()
    );
}

/// A synthetic ontology signature: a class chain of length `n` with
/// one attribute at the top (inherited everywhere by closure).
fn chain_signature(n: usize) -> OntologySignature {
    let mut ob = OsaSignatureBuilder::new();
    let s = ob.sort("V");
    let val = ob.op("v", &[], s);
    let osig = ob.finish().expect("ok");
    let theory = Theory::new(osig.clone());
    let mut ab = AlgebraBuilder::new(osig);
    let e = ab.elem("v", s);
    ab.interpret(val, &[], e);
    let dd = DataDomain::new(theory, ab.finish().expect("total")).expect("model");
    let mut b = SignatureBuilder::new(dd);
    let mut prev = b.class("C0");
    b.attribute(prev, "a", AttrTarget::Sort(s));
    for i in 1..n {
        let c = b.class(&format!("C{i}"));
        b.subclass(c, prev);
        prev = c;
    }
    b.finish().expect("well-formed")
}

use summa_core::substrates::ontonomy::signature::OntologySignature;

fn bench(c: &mut Criterion) {
    print_record();
    let mut group = c.benchmark_group("e4_bcm");
    let v = vehicles_signature().expect("well-formed");
    let model = v.sample_model();
    group.bench_function("vehicles_model_check", |b| {
        b.iter(|| v.ontonomy.is_model(black_box(&model)))
    });
    for &n in summa_bench::SWEEP_MEDIUM {
        let sig = chain_signature(n);
        group.bench_with_input(
            BenchmarkId::new("inheritance_check_chain", n),
            &n,
            |bencher, _| bencher.iter(|| black_box(&sig).check_inheritance()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
