//! E1 — structures (1)–(3): extensional vs intensional `[above]` on
//! the blocks world. Prints the paper's structure (1) and (3), then
//! times intensional-relation construction as the world space grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::intensional::prelude::*;

fn print_record() {
    summa_bench::banner("E1", "structures (1)–(3), §2");
    let mut dom = Domain::new();
    let (a, b, c, d) = (dom.elem("a"), dom.elem("b"), dom.elem("c"), dom.elem("d"));
    let mut w0 = BlocksWorld::new();
    w0.place(a, 0, 2);
    w0.place(b, 0, 1);
    w0.place(d, 0, 0);
    w0.place(c, 1, 0);
    let mut w1 = BlocksWorld::new();
    w1.place(a, 0, 0);
    w1.place(b, 0, 1);
    let space = WorldSpace::structured(vec![w0, w1]);
    let above = IntensionalRelation::aboveness("above", &dom, &space).expect("structured");
    println!("  (1) [above](w0) = {}", above.at(0).expect("w0").render(&dom));
    println!("  (3) [above](w1) = {}", above.at(1).expect("w1").render(&dom));
    println!(
        "  rigid: {}, distinct extensions: {}",
        above.is_rigid(),
        above.n_distinct_extensions()
    );
}

fn bench(c: &mut Criterion) {
    print_record();
    let mut group = c.benchmark_group("e1_intensional");
    for &n_blocks in &[2usize, 3, 4] {
        let mut dom = Domain::new();
        let blocks: Vec<Elem> = (0..n_blocks)
            .map(|i| dom.elem(&format!("b{i}")))
            .collect();
        let space = WorldSpace::enumerate_blocks(&blocks, 2, 2);
        group.bench_with_input(
            BenchmarkId::new("aboveness_over_enumerated_worlds", n_blocks),
            &n_blocks,
            |bencher, _| {
                bencher.iter(|| {
                    IntensionalRelation::aboveness("above", black_box(&dom), black_box(&space))
                        .expect("structured")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
