//! Brute-force vs enhanced-traversal classification.
//!
//! Like `parallel.rs` this bench is also a report generator: besides
//! printing ns/iter it writes `BENCH_classify.json` at the workspace
//! root, comparing the classical O(n²) subsumption grid
//! (`classify_brute_force_governed`) against the enhanced traversal
//! (`classify_enhanced_governed`: told-subsumer seeding, row
//! satisfiability probes, top-down pruning) per workload — wall time
//! *and* issued satisfiability calls, since the sat-call count is the
//! machine-independent measure the traversal actually optimizes.
//!
//! Every instrumented run asserts the two hierarchies are
//! byte-identical, and the diamond lattice additionally asserts the
//! enhanced lane issues at most 25% of the brute-force sat calls (the
//! acceptance target).
//!
//! `SUMMA_BENCH_SMOKE=1` shrinks the measurement window to one sample
//! per lane so CI can validate the report format without paying for a
//! full measurement.

use criterion::{json_escape, Criterion};
use std::fmt::Write as _;
use summa_dl::classify::{
    classify_brute_force_governed, classify_enhanced_governed, ClassifyStats,
};
use summa_dl::concept::Vocabulary;
use summa_dl::generate;
use summa_dl::tableau::Tableau;
use summa_dl::tbox::TBox;
use summa_guard::Budget;

struct Workload {
    name: &'static str,
    voc: Vocabulary,
    tbox: TBox,
}

fn workloads() -> Vec<Workload> {
    // Same corpus as the parallel bench so the two reports are
    // comparable: an incoherent pigeonhole TBox (every cell an
    // exponential refutation — and every *row* unsatisfiable, the
    // enhanced lane's best case), a random EL terminology, and a deep
    // diamond lattice (127 atoms, the acceptance workload).
    let (p_voc, p_tbox, _) = generate::pigeonhole_tbox(3, 2);
    let (e_voc, e_tbox, _) = generate::random_el(12, 2, 16, 0x5EED);
    let (d_voc, d_tbox, _) = generate::diamond(6);
    vec![
        Workload {
            name: "pigeonhole",
            voc: p_voc,
            tbox: p_tbox,
        },
        Workload {
            name: "random_el",
            voc: e_voc,
            tbox: e_tbox,
        },
        Workload {
            name: "diamond",
            voc: d_voc,
            tbox: d_tbox,
        },
    ]
}

fn smoke() -> bool {
    std::env::var("SUMMA_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let loads = workloads();
    let mut c = Criterion::default();
    {
        let mut g = c.benchmark_group("classify_strategy");
        g.sample_size(if smoke() { 1 } else { 10 });
        for w in &loads {
            g.bench_function(format!("{}/brute", w.name), |b| {
                b.iter(|| {
                    classify_brute_force_governed(
                        &mut Tableau::new(&w.tbox, &w.voc),
                        &w.tbox,
                        &Budget::unlimited(),
                    )
                })
            });
            g.bench_function(format!("{}/enhanced", w.name), |b| {
                b.iter(|| {
                    classify_enhanced_governed(
                        &mut Tableau::new(&w.tbox, &w.voc),
                        &w.tbox,
                        &Budget::unlimited(),
                    )
                })
            });
        }
        g.finish();
    }

    // One instrumented run per workload and lane: sat-call counts, a
    // byte-equality check between the hierarchies, and the diamond
    // acceptance ratio.
    let mut entries = Vec::new();
    for w in &loads {
        let budget = Budget::unlimited();
        let (brute, brute_stats): (_, ClassifyStats) =
            classify_brute_force_governed(&mut Tableau::new(&w.tbox, &w.voc), &w.tbox, &budget);
        let (enhanced, enhanced_stats) =
            classify_enhanced_governed(&mut Tableau::new(&w.tbox, &w.voc), &w.tbox, &budget);
        let brute = brute.expect_completed("unlimited");
        let enhanced = enhanced.expect_completed("unlimited");
        assert_eq!(
            brute, enhanced,
            "enhanced hierarchy must be byte-identical to brute force"
        );
        let ratio = enhanced_stats.sat_tests as f64 / brute_stats.sat_tests.max(1) as f64;
        if w.name == "diamond" {
            assert!(
                ratio <= 0.25,
                "diamond acceptance: enhanced must issue ≤ 25% of brute-force \
                 sat calls, got {:.1}% ({}/{})",
                ratio * 100.0,
                enhanced_stats.sat_tests,
                brute_stats.sat_tests,
            );
        }

        let brute_ns = c
            .ns_per_iter("classify_strategy", &format!("{}/brute", w.name))
            .expect("timed");
        let enhanced_ns = c
            .ns_per_iter("classify_strategy", &format!("{}/enhanced", w.name))
            .expect("timed");
        let speedup = brute_ns as f64 / enhanced_ns.max(1) as f64;
        let atoms = w.tbox.atoms().len();
        println!(
            "  {:<12} {} atoms: sat calls {} -> {} ({:.1}%), pruned {}, speedup {:.2}x",
            w.name,
            atoms,
            brute_stats.sat_tests,
            enhanced_stats.sat_tests,
            ratio * 100.0,
            enhanced_stats.pruned,
            speedup,
        );
        let mut e = String::new();
        write!(
            e,
            "    {{\"name\": \"{}\", \"atoms\": {}, \"grid_cells\": {}, \
             \"brute_force_ns\": {}, \"enhanced_ns\": {}, \"speedup\": {:.3}, \
             \"brute_force_sat_tests\": {}, \"enhanced_sat_tests\": {}, \
             \"enhanced_pruned\": {}, \"sat_call_ratio\": {:.4}}}",
            json_escape(w.name),
            atoms,
            atoms * atoms,
            brute_ns,
            enhanced_ns,
            speedup,
            brute_stats.sat_tests,
            enhanced_stats.sat_tests,
            enhanced_stats.pruned,
            ratio,
        )
        .expect("write to string");
        entries.push(e);
    }

    // Provenance header, mirroring BENCH_parallel.json so downstream
    // tooling parses both the same way.
    let summa_threads = match std::env::var("SUMMA_THREADS") {
        Ok(v) => format!("\"{}\"", json_escape(&v)),
        Err(_) => "null".to_string(),
    };
    let caveat = if smoke() {
        ",\n  \"caveat\": \"smoke mode (SUMMA_BENCH_SMOKE=1): one sample per lane, wall times are format placeholders; sat-call counts are exact either way\"".to_string()
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"bench\": \"classification_strategies\",\n  \"host_cpus\": {},\n  \"summa_threads_env\": {},\n  \"generated_at\": \"{}\"{},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        host_cpus,
        summa_threads,
        summa_bench::iso8601_utc_now(),
        caveat,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_classify.json");
    std::fs::write(path, &json).expect("write BENCH_classify.json");
    println!("\nwrote {path}");
}
