//! Serving-layer latency/throughput bench: batched vs unbatched
//! scheduling, and cold vs warm serving, over the real TCP loopback
//! path.
//!
//! Each lane starts an in-process [`summa_serve::server::Server`]
//! with the telemetry plane armed, drives it with concurrent
//! synchronous clients, and measures client-observed latency per
//! request. The report (`BENCH_serve.json`) carries p50/p95 latency
//! and aggregate throughput per lane, the scheduler's own batch
//! counters, **the plane's per-phase p50s** (queue-wait /
//! batch-formation / execute / serialize), and — for the warm-path
//! lanes — the index hit rate and the `served` breakdown
//! (index / shared-cache / prover), so a cold/warm gap can be
//! attributed instead of argued about.
//!
//! Lanes:
//!
//! * `subsumes/unbatched` vs `subsumes/batched` — the scheduling
//!   comparison, run **cold** (`cold: true`) so both lanes measure the
//!   prover path and the batching delta is not drowned by index
//!   lookups;
//! * `subsumes/cold` vs `subsumes/warm` — the same batched workload
//!   with the warm path off and on. The acceptance gate lives here: in
//!   a real (non-smoke) run the warm lane's server-side `execute`
//!   phase p50 must be at least 5× faster than the cold lane's.
//!
//! `SUMMA_BENCH_SMOKE=1` shrinks the run so CI can validate the report
//! format without paying for a measurement (the 5× gate is skipped —
//! tiny counts measure scheduling noise, not reasoning).

use criterion::json_escape;
use std::fmt::Write as _;
use std::time::Instant;
use summa_serve::client::Client;
use summa_serve::server::{Server, ServerConfig};
use summa_serve::telemetry::{TelemetryConfig, PHASES};
use summa_serve::wire::{Op, STATUS_OK};

fn smoke() -> bool {
    std::env::var("SUMMA_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

struct LaneResult {
    name: String,
    max_batch: usize,
    cold: bool,
    clients: usize,
    requests: u64,
    p50_ns: u64,
    p95_ns: u64,
    throughput_rps: f64,
    batches: u64,
    max_batch_observed: u64,
    /// Server-side p50 per phase for the benched op, in `PHASES`
    /// order — scraped from the telemetry plane, not re-measured.
    phase_p50_ns: [u64; 4],
    /// Warm-path attribution from the server's own books: how many
    /// answers came from the index, the shared cache (index misses),
    /// and the per-request prover.
    served_index: u64,
    served_cache: u64,
    served_prover: u64,
}

impl LaneResult {
    /// Index hit rate over the requests the warm path saw at all.
    fn index_hit_rate(&self) -> f64 {
        let warm = self.served_index + self.served_cache;
        if warm == 0 {
            0.0
        } else {
            self.served_index as f64 / warm as f64
        }
    }

    /// The execute-phase p50 — the reasoning share of a request, and
    /// the figure the warm-vs-cold acceptance gate compares.
    fn execute_p50_ns(&self) -> u64 {
        PHASES
            .iter()
            .position(|p| p.name() == "execute")
            .map(|i| self.phase_p50_ns[i])
            .unwrap_or(0)
    }
}

/// Drive one lane: `clients` concurrent tenants, `per_client`
/// subsumption queries each, against a server with the given batch
/// ceiling, warm (`cold: false`) or per-request-fresh (`cold: true`).
fn run_lane(
    name: &str,
    max_batch: usize,
    cold: bool,
    clients: usize,
    per_client: usize,
) -> LaneResult {
    let server = Server::start(ServerConfig {
        threads: 4,
        max_batch,
        cold,
        telemetry: TelemetryConfig::default(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("bench-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                let mut latencies = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let q0 = Instant::now();
                    let resp = client
                        .subsumes("vehicles", "car", "motorvehicle")
                        .expect("answered");
                    latencies.push(q0.elapsed().as_nanos() as u64);
                    assert_eq!(resp.status, STATUS_OK);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall = t0.elapsed();

    // Per-phase server-side p50s for the benched op, straight off the
    // plane's registry (the same histograms a Telemetry scrape
    // exports).
    let registry = server.telemetry().registry();
    let mut phase_p50_ns = [0u64; 4];
    for (i, p) in PHASES.iter().enumerate() {
        let h = registry.histogram(&format!(
            "serve.phase.{}.{}",
            p.name(),
            Op::Subsumes.name()
        ));
        phase_p50_ns[i] = h.quantile_ns(0.50);
    }

    let stats = server.shutdown();
    assert!(stats.reconciles(), "bench books reconcile: {stats:?}");
    assert_eq!(stats.accepted, latencies.len() as u64);
    if cold {
        assert_eq!(stats.index_hits, 0, "cold lane must never touch the index");
    }

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    LaneResult {
        name: name.to_string(),
        max_batch,
        cold,
        clients,
        requests: latencies.len() as u64,
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        throughput_rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        batches: stats.batches,
        max_batch_observed: stats.max_batch,
        phase_p50_ns,
        served_index: stats.index_hits,
        served_cache: stats.index_misses,
        served_prover: stats
            .completed
            .saturating_sub(stats.index_hits + stats.index_misses),
    }
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (clients, per_client) = if smoke() { (2, 8) } else { (4, 150) };

    let lanes = [
        // Scheduling comparison, pinned cold so both lanes prove.
        run_lane("subsumes/unbatched", 1, true, clients, per_client),
        run_lane("subsumes/batched", 8, true, clients, per_client),
        // The warm-path comparison: identical workload, warmth toggled.
        run_lane("subsumes/cold", 8, true, clients, per_client),
        run_lane("subsumes/warm", 8, false, clients, per_client),
    ];

    let mut entries = Vec::new();
    for lane in &lanes {
        println!(
            "  {:<20} {} reqs x {} clients ({}): p50 {} ns, p95 {} ns, {:.0} req/s, \
             {} batches (max {}), index hit rate {:.2} \
             (served index/cache/prover {}/{}/{})",
            lane.name,
            lane.requests,
            lane.clients,
            if lane.cold { "cold" } else { "warm" },
            lane.p50_ns,
            lane.p95_ns,
            lane.throughput_rps,
            lane.batches,
            lane.max_batch_observed,
            lane.index_hit_rate(),
            lane.served_index,
            lane.served_cache,
            lane.served_prover,
        );
        let mut phase_cols = String::new();
        for (i, p) in PHASES.iter().enumerate() {
            print!("      phase {:<11} p50 {} ns", p.name(), lane.phase_p50_ns[i]);
            println!();
            write!(
                phase_cols,
                "{}\"phase_{}_p50_ns\": {}",
                if i == 0 { "" } else { ", " },
                p.name(),
                lane.phase_p50_ns[i],
            )
            .expect("write to string");
        }
        let mut e = String::new();
        write!(
            e,
            "    {{\"name\": \"{}\", \"max_batch\": {}, \"cold\": {}, \"clients\": {}, \
             \"requests\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"throughput_rps\": {:.1}, \"batches\": {}, \
             \"max_batch_observed\": {}, \"index_hit_rate\": {:.4}, \
             \"served\": {{\"index\": {}, \"cache\": {}, \"prover\": {}}}, {}}}",
            json_escape(&lane.name),
            lane.max_batch,
            lane.cold,
            lane.clients,
            lane.requests,
            lane.p50_ns,
            lane.p95_ns,
            lane.throughput_rps,
            lane.batches,
            lane.max_batch_observed,
            lane.index_hit_rate(),
            lane.served_index,
            lane.served_cache,
            lane.served_prover,
            phase_cols,
        )
        .expect("write to string");
        entries.push(e);
    }

    // The acceptance gate: the warm lane answers its named-pair
    // workload from the snapshot's classification index, so its
    // server-side execute phase must be at least 5× faster at p50 than
    // the same workload proved cold. Smoke runs skip the gate (tiny
    // counts measure scheduling noise, not reasoning).
    let cold_exec = lanes[2].execute_p50_ns();
    let warm_exec = lanes[3].execute_p50_ns();
    let speedup = cold_exec as f64 / warm_exec.max(1) as f64;
    println!(
        "\n  warm path: execute p50 cold {} ns vs warm {} ns ({speedup:.1}x)",
        cold_exec, warm_exec
    );
    if !smoke() {
        assert!(
            warm_exec.saturating_mul(5) <= cold_exec,
            "warm execute p50 ({warm_exec} ns) must be >=5x faster than cold ({cold_exec} ns)"
        );
        assert!(
            lanes[3].index_hit_rate() > 0.99,
            "named-pair workload must answer from the index: {:.4}",
            lanes[3].index_hit_rate()
        );
    }

    let summa_threads = match std::env::var("SUMMA_THREADS") {
        Ok(v) => format!("\"{}\"", json_escape(&v)),
        Err(_) => "null".to_string(),
    };
    let caveat = if smoke() {
        ",\n  \"caveat\": \"smoke mode (SUMMA_BENCH_SMOKE=1): tiny request counts, figures are format placeholders and the 5x warm gate is skipped; accounting assertions are exact either way\"".to_string()
    } else {
        String::new()
    };
    let anomaly_note = "on 1-core hosts the batched lane can still measure slower than unbatched \
                        at p50: batch formation now runs outside the queue lock (the scheduler \
                        steals the pending queue under the lock and scans off-lock, so admissions \
                        no longer serialize behind the coalescing scan), but a coalesced batch \
                        still wakes its blocked connection handlers in one burst that \
                        time-slices over the single core. the phase_*_p50_ns columns bound the \
                        server-side share; the rest of the client-observed gap is wakeup \
                        scheduling under core contention. batching trades per-request latency \
                        for throughput and only pays off when cores are available";
    let json = format!(
        "{{\n  \"bench\": \"serve_latency\",\n  \"host_cpus\": {},\n  \"summa_threads_env\": {},\n  \"generated_at\": \"{}\",\n  \"warm_execute_speedup\": {:.2},\n  \"anomaly_note\": \"{}\"{},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        host_cpus,
        summa_threads,
        summa_bench::iso8601_utc_now(),
        speedup,
        json_escape(anomaly_note),
        caveat,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
