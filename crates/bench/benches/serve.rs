//! Serving-layer latency/throughput bench: batched vs unbatched
//! scheduling over the real TCP loopback path.
//!
//! Each lane starts an in-process [`summa_serve::server::Server`]
//! with the telemetry plane armed, drives it with concurrent
//! synchronous clients, and measures client-observed latency per
//! request. The report (`BENCH_serve.json`) carries p50/p95 latency
//! and aggregate throughput per lane, the scheduler's own batch
//! counters, **and the plane's per-phase p50s** (queue-wait /
//! batch-formation / execute / serialize), so a batched/unbatched gap
//! can be attributed to a phase instead of argued about.
//!
//! Why the phase breakdown exists: on 1-core hosts (and small-core CI
//! runners) the batched lane has repeatedly measured *slower* at p50
//! than the unbatched lane. The phase columns show where the time
//! goes — batch formation runs under the queue lock, so with no spare
//! core the coalescing scan serializes against client admissions, and
//! queue-wait inflates while requests sit behind the scan. Batching
//! buys throughput when cores are available to spend on it; it is not
//! a latency device. The report carries this as `anomaly_note` so a
//! reader of the raw JSON sees the explanation next to the numbers.
//!
//! `SUMMA_BENCH_SMOKE=1` shrinks the run so CI can validate the report
//! format without paying for a measurement.

use criterion::json_escape;
use std::fmt::Write as _;
use std::time::Instant;
use summa_serve::client::Client;
use summa_serve::server::{Server, ServerConfig};
use summa_serve::telemetry::{TelemetryConfig, PHASES};
use summa_serve::wire::{Op, STATUS_OK};

fn smoke() -> bool {
    std::env::var("SUMMA_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

struct LaneResult {
    name: String,
    max_batch: usize,
    clients: usize,
    requests: u64,
    p50_ns: u64,
    p95_ns: u64,
    throughput_rps: f64,
    batches: u64,
    max_batch_observed: u64,
    /// Server-side p50 per phase for the benched op, in `PHASES`
    /// order — scraped from the telemetry plane, not re-measured.
    phase_p50_ns: [u64; 4],
}

/// Drive one lane: `clients` concurrent tenants, `per_client`
/// subsumption queries each, against a server with the given
/// batch ceiling.
fn run_lane(name: &str, max_batch: usize, clients: usize, per_client: usize) -> LaneResult {
    let server = Server::start(ServerConfig {
        threads: 4,
        max_batch,
        telemetry: TelemetryConfig::default(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("bench-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                let mut latencies = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let q0 = Instant::now();
                    let resp = client
                        .subsumes("vehicles", "car", "motorvehicle")
                        .expect("answered");
                    latencies.push(q0.elapsed().as_nanos() as u64);
                    assert_eq!(resp.status, STATUS_OK);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall = t0.elapsed();

    // Per-phase server-side p50s for the benched op, straight off the
    // plane's registry (the same histograms a Telemetry scrape
    // exports).
    let registry = server.telemetry().registry();
    let mut phase_p50_ns = [0u64; 4];
    for (i, p) in PHASES.iter().enumerate() {
        let h = registry.histogram(&format!(
            "serve.phase.{}.{}",
            p.name(),
            Op::Subsumes.name()
        ));
        phase_p50_ns[i] = h.quantile_ns(0.50);
    }

    let stats = server.shutdown();
    assert!(stats.reconciles(), "bench books reconcile: {stats:?}");
    assert_eq!(stats.accepted, latencies.len() as u64);

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    LaneResult {
        name: name.to_string(),
        max_batch,
        clients,
        requests: latencies.len() as u64,
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        throughput_rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        batches: stats.batches,
        max_batch_observed: stats.max_batch,
        phase_p50_ns,
    }
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (clients, per_client) = if smoke() { (2, 8) } else { (4, 150) };

    let lanes = [
        run_lane("subsumes/unbatched", 1, clients, per_client),
        run_lane("subsumes/batched", 8, clients, per_client),
    ];

    let mut entries = Vec::new();
    for lane in &lanes {
        println!(
            "  {:<20} {} reqs x {} clients: p50 {} ns, p95 {} ns, {:.0} req/s, \
             {} batches (max {})",
            lane.name,
            lane.requests,
            lane.clients,
            lane.p50_ns,
            lane.p95_ns,
            lane.throughput_rps,
            lane.batches,
            lane.max_batch_observed,
        );
        let mut phase_cols = String::new();
        for (i, p) in PHASES.iter().enumerate() {
            print!("      phase {:<11} p50 {} ns", p.name(), lane.phase_p50_ns[i]);
            println!();
            write!(
                phase_cols,
                "{}\"phase_{}_p50_ns\": {}",
                if i == 0 { "" } else { ", " },
                p.name(),
                lane.phase_p50_ns[i],
            )
            .expect("write to string");
        }
        let mut e = String::new();
        write!(
            e,
            "    {{\"name\": \"{}\", \"max_batch\": {}, \"clients\": {}, \
             \"requests\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"throughput_rps\": {:.1}, \"batches\": {}, \
             \"max_batch_observed\": {}, {}}}",
            json_escape(&lane.name),
            lane.max_batch,
            lane.clients,
            lane.requests,
            lane.p50_ns,
            lane.p95_ns,
            lane.throughput_rps,
            lane.batches,
            lane.max_batch_observed,
            phase_cols,
        )
        .expect("write to string");
        entries.push(e);
    }

    let summa_threads = match std::env::var("SUMMA_THREADS") {
        Ok(v) => format!("\"{}\"", json_escape(&v)),
        Err(_) => "null".to_string(),
    };
    let caveat = if smoke() {
        ",\n  \"caveat\": \"smoke mode (SUMMA_BENCH_SMOKE=1): tiny request counts, figures are format placeholders; accounting assertions are exact either way\"".to_string()
    } else {
        String::new()
    };
    let anomaly_note = "on 1-core hosts the batched lane measures slower than unbatched: batch \
                        formation runs under the queue lock, so without a spare core the \
                        coalescing scan serializes against client admissions, and a coalesced \
                        batch wakes its blocked connection handlers in one burst that then \
                        time-slices over the single core. the phase_*_p50_ns columns bound the \
                        server-side share; the rest of the client-observed gap is wakeup \
                        scheduling under core contention. batching trades per-request latency \
                        for throughput and only pays off when cores are available";
    let json = format!(
        "{{\n  \"bench\": \"serve_latency\",\n  \"host_cpus\": {},\n  \"summa_threads_env\": {},\n  \"generated_at\": \"{}\",\n  \"anomaly_note\": \"{}\"{},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        host_cpus,
        summa_threads,
        summa_bench::iso8601_utc_now(),
        json_escape(anomaly_note),
        caveat,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
