//! E7 — the differentiation regress ("when can we stop? we can't"):
//! prints the collapse count and differentiation cost as the
//! vocabulary grows — the monotone, unbounded trend the paper
//! predicts — then times the greedy differentiation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::structure::differentiation::{
    count_internal_collapses, differentiate_greedily, symmetric_family,
};

fn print_record() {
    summa_bench::banner("E7", "the \"we can't stop\" regress, §3");
    println!("  family size | collapsed pairs | axioms to separate");
    for &n in &[2usize, 3, 4] {
        let (mut voc, t) = symmetric_family(n);
        let collapses = count_internal_collapses(&t, &voc, 8);
        let out = differentiate_greedily(&t, &mut voc, 8, 256);
        println!(
            "  {:>11} | {:>15} | {:>18} (remaining: {})",
            n, collapses, out.axioms_added, out.remaining_collapses
        );
    }
    println!("  → cost grows with vocabulary; no fixed point of differentiation.");
}

fn bench(c: &mut Criterion) {
    print_record();
    let mut group = c.benchmark_group("e7_regress");
    group.sample_size(10);
    // The greedy differentiation at n=6 already takes minutes per run
    // (pinned VF2 over a maximally symmetric family is factorial), so
    // the timed sweep stops at 4; the regress *trend* is printed in
    // the record above up to n=5.
    for &n in &[2usize, 3, 4] {
        let (voc, t) = symmetric_family(n);
        group.bench_with_input(
            BenchmarkId::new("count_collapses", n),
            &n,
            |bencher, _| {
                bencher.iter(|| count_internal_collapses(black_box(&t), black_box(&voc), 8))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("differentiate_greedily", n),
            &n,
            |bencher, _| {
                bencher.iter(|| {
                    let mut voc2 = voc.clone();
                    differentiate_greedily(black_box(&t), &mut voc2, 8, 256)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
