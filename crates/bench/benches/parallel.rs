//! Sequential vs multi-threaded reasoning throughput.
//!
//! Unlike the other benches this one is also a report generator:
//! besides printing ns/iter it writes `BENCH_parallel.json` at the
//! workspace root, comparing sequential and `SUMMA_BENCH_THREADS`-way
//! parallel classification wall time per workload, together with the
//! shared subsumption cache's hit/miss counts from one instrumented
//! parallel run. Each timed parallel iteration builds a *fresh* cache
//! so cross-iteration reuse cannot flatter the speedup.

use criterion::{json_escape, Criterion};
use std::fmt::Write as _;
use std::sync::Arc;
use summa_dl::cache::SatCache;
use summa_dl::classify::{classify_parallel_governed, classify_parallel_governed_with, Classifier};
use summa_dl::concept::Vocabulary;
use summa_dl::generate;
use summa_dl::tableau::Tableau;
use summa_dl::tbox::TBox;
use summa_guard::Budget;

/// Thread count for the parallel lane (the acceptance target is a
/// ≥ 2× speedup at 4 threads on the pigeonhole workload).
fn threads() -> usize {
    std::env::var("SUMMA_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

struct Workload {
    name: &'static str,
    voc: Vocabulary,
    tbox: TBox,
}

fn workloads() -> Vec<Workload> {
    // The adversarial lane: incoherent pigeonhole TBox, every
    // subsumption cell an exponential refutation.
    // holes = 3 puts the whole 14-atom grid near 400 ms sequentially
    // (≈ 2 ms a cell); holes = 4 already takes minutes — the workload
    // is exponential by design, so resist the urge to turn it up.
    let (p_voc, p_tbox, _) = generate::pigeonhole_tbox(3, 2);
    // Generated corpora: a random EL terminology (kept small — tableau
    // cost on random existential TBoxes grows violently with size) and
    // a deep diamond lattice (many mid-weight cells).
    let (e_voc, e_tbox, _) = generate::random_el(12, 2, 16, 0x5EED);
    let (d_voc, d_tbox, _) = generate::diamond(6);
    vec![
        Workload {
            name: "pigeonhole",
            voc: p_voc,
            tbox: p_tbox,
        },
        Workload {
            name: "random_el",
            voc: e_voc,
            tbox: e_tbox,
        },
        Workload {
            name: "diamond",
            voc: d_voc,
            tbox: d_tbox,
        },
    ]
}

fn main() {
    let threads = threads();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let loads = workloads();
    let mut c = Criterion::default();
    {
        let mut g = c.benchmark_group("classify");
        g.sample_size(10);
        for w in &loads {
            g.bench_function(format!("{}/seq", w.name), |b| {
                b.iter(|| {
                    Tableau::new(&w.tbox, &w.voc).classify_governed(
                        &w.tbox,
                        &w.voc,
                        &Budget::unlimited(),
                    )
                })
            });
            g.bench_function(format!("{}/par{threads}", w.name), |b| {
                b.iter(|| {
                    classify_parallel_governed(&w.tbox, &w.voc, &Budget::unlimited(), threads)
                })
            });
        }
        g.finish();
    }

    // One instrumented parallel run per workload: cache statistics, a
    // sequential-equivalence check on the hierarchies themselves, and
    // a warm-cache rerun against the same shared cache — the
    // cross-run reuse `classify_parallel_governed_with` exists for.
    let mut entries = Vec::new();
    for w in &loads {
        let seq = Tableau::new(&w.tbox, &w.voc)
            .classify_governed(&w.tbox, &w.voc, &Budget::unlimited())
            .expect_completed("unlimited");
        let cache = Arc::new(SatCache::new());
        let (par, spend) = classify_parallel_governed_with(
            &w.tbox,
            &w.voc,
            &Budget::unlimited(),
            threads,
            Arc::clone(&cache),
        );
        let par = par.expect_completed("unlimited");
        assert_eq!(seq, par, "parallel hierarchy must equal sequential");
        let warm_started = std::time::Instant::now();
        let (warm, warm_spend) = classify_parallel_governed_with(
            &w.tbox,
            &w.voc,
            &Budget::unlimited(),
            threads,
            Arc::clone(&cache),
        );
        let warm_ns = warm_started.elapsed().as_nanos();
        assert_eq!(seq, warm.expect_completed("unlimited"));

        let seq_ns = c
            .ns_per_iter("classify", &format!("{}/seq", w.name))
            .expect("timed");
        let par_ns = c
            .ns_per_iter("classify", &format!("{}/par{threads}", w.name))
            .expect("timed");
        let speedup = seq_ns as f64 / par_ns as f64;
        let warm_speedup = seq_ns as f64 / warm_ns.max(1) as f64;
        let atoms = w.tbox.atoms().len();
        println!(
            "  {:<12} {} atoms: speedup {:.2}x cold / {:.2}x warm, cache cold {}/{} warm {}/{} hit",
            w.name,
            atoms,
            speedup,
            warm_speedup,
            spend.cache_hits,
            spend.cache_hits + spend.cache_misses,
            warm_spend.cache_hits,
            warm_spend.cache_hits + warm_spend.cache_misses,
        );
        let mut e = String::new();
        write!(
            e,
            "    {{\"name\": \"{}\", \"atoms\": {}, \"sequential_ns\": {}, \"parallel_ns\": {}, \
             \"speedup\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"warm_parallel_ns\": {}, \"warm_speedup\": {:.3}, \
             \"warm_cache_hits\": {}, \"warm_cache_misses\": {}}}",
            json_escape(w.name),
            atoms,
            seq_ns,
            par_ns,
            speedup,
            spend.cache_hits,
            spend.cache_misses,
            warm_ns,
            warm_speedup,
            warm_spend.cache_hits,
            warm_spend.cache_misses,
        )
        .expect("write to string");
        entries.push(e);
    }

    // Provenance header: what was run, where, and when. `host_cpus`
    // keys the interpretation — on a single-core host the parallel
    // lane cannot beat wall clock no matter how well the executor
    // scales — and the explicit caveat says so in the report itself
    // whenever the lane was oversubscribed.
    let summa_threads = match std::env::var("SUMMA_THREADS") {
        Ok(v) => format!("\"{}\"", json_escape(&v)),
        Err(_) => "null".to_string(),
    };
    let caveat = if threads > host_cpus {
        format!(
            ",\n  \"caveat\": \"{} threads timed on a {}-cpu host: parallel lanes are oversubscribed and speedups near or below 1.0 are expected, not regressions\"",
            threads, host_cpus
        )
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"bench\": \"parallel_classification\",\n  \"threads\": {},\n  \"host_cpus\": {},\n  \"summa_threads_env\": {},\n  \"generated_at\": \"{}\"{},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        threads,
        host_cpus,
        summa_threads,
        summa_bench::iso8601_utc_now(),
        caveat,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {path}");
}
