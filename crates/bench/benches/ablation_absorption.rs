//! Ablation — the absorption optimization of the tableau reasoner.
//!
//! DESIGN.md calls out absorption (lazy application of atomic-LHS
//! GCIs) as the design choice that makes general-TBox tableau
//! reasoning tractable here. This bench measures the same
//! satisfiability workload with absorption on and off; the expected
//! shape is a widening gap as the number of axioms grows, since every
//! non-absorbed GCI becomes one more disjunction at every node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::dl::generate;
use summa_core::substrates::dl::prelude::*;

fn print_record() {
    summa_bench::banner("A1 (ablation)", "absorption in the tableau, DESIGN.md §2 notes");
    for &n in &[4usize, 6, 8] {
        let (voc, t, ids) = generate::random_el(n, 2, n, 3);
        let query = Concept::atom(ids[0]);
        let mut with = Tableau::new(&t, &voc);
        let mut without = Tableau::new_without_absorption(&t, &voc).with_budget(200_000);
        let a = with.is_satisfiable(&query);
        let b = without
            .try_is_satisfiable(&query)
            .map(|x| x.to_string())
            .unwrap_or_else(|_| "budget exceeded".to_string());
        println!("  n={n}: with absorption → {a}; without → {b}");
    }
}

fn bench(c: &mut Criterion) {
    print_record();
    let mut group = c.benchmark_group("ablation_absorption");
    group.sample_size(10);
    for &n in &[4usize, 6, 8] {
        let (voc, t, ids) = generate::random_el(n, 2, n, 3);
        let query = Concept::atom(ids[0]);
        group.bench_with_input(BenchmarkId::new("with_absorption", n), &n, |b, _| {
            b.iter(|| {
                let mut r = Tableau::new(black_box(&t), &voc);
                r.is_satisfiable(black_box(&query))
            })
        });
        group.bench_with_input(BenchmarkId::new("without_absorption", n), &n, |b, _| {
            b.iter(|| {
                let mut r = Tableau::new_without_absorption(black_box(&t), &voc)
                    .with_budget(200_000);
                // Budget errors count as completed work for timing
                // purposes; correctness equivalence is asserted in the
                // dl unit tests.
                let _ = r.try_is_satisfiable(black_box(&query));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
