//! E9 — the age-adjective correspondence table: regenerates the
//! paper's three-language table and the alignment statistics, then
//! times alignment computation on growing synthetic fields.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::lexfield::prelude::*;

fn print_record() {
    summa_bench::banner("E9", "the vecchio/viejo/vieux table, §3");
    let f = age_adjectives_dataset();
    println!(
        "  {:<32}{:<12}{:<12}{:<12}",
        "situation", "Italian", "Spanish", "French"
    );
    for pt in f.space.points() {
        let word = |field: &LexicalField| {
            field
                .words_for(pt)
                .iter()
                .map(|&i| field.name(i).to_string())
                .collect::<Vec<_>>()
                .join("/")
        };
        println!(
            "  {:<32}{:<12}{:<12}{:<12}",
            f.space.label(pt),
            word(&f.italian),
            word(&f.spanish),
            word(&f.french)
        );
    }
    for (a, b) in [
        (&f.italian, &f.spanish),
        (&f.italian, &f.french),
        (&f.spanish, &f.french),
    ] {
        let al = Alignment::between(&f.space, a, b);
        println!(
            "  {:>8} → {:<8} bijective={:<5} ambiguity={}",
            a.language(),
            b.language(),
            al.is_bijective(),
            al.total_ambiguity()
        );
    }
}

/// Synthetic fields over an `n`-point space: L1 divides it into
/// pairs, L2 into offset pairs — guaranteed misalignment.
fn synthetic_pair(n: usize) -> (SemanticSpace, LexicalField, LexicalField) {
    let mut space = SemanticSpace::new();
    let pts: Vec<Point> = (0..n).map(|i| space.point(&format!("p{i}"))).collect();
    let mut f1 = LexicalField::new("L1");
    for (w, chunk) in pts.chunks(2).enumerate() {
        f1.item(&format!("u{w}"), chunk.iter().copied());
    }
    let mut f2 = LexicalField::new("L2");
    f2.item("v_first", [pts[0]]);
    for (w, chunk) in pts[1..].chunks(2).enumerate() {
        f2.item(&format!("v{w}"), chunk.iter().copied());
    }
    (space, f1, f2)
}

fn bench(c: &mut Criterion) {
    print_record();
    let f = age_adjectives_dataset();
    let mut group = c.benchmark_group("e9_alignment");
    group.bench_function("age_table_alignment_it_es", |b| {
        b.iter(|| Alignment::between(black_box(&f.space), &f.italian, &f.spanish))
    });
    for &n in summa_bench::SWEEP_MEDIUM {
        let (space, f1, f2) = synthetic_pair(n);
        group.bench_with_input(
            BenchmarkId::new("synthetic_alignment", n),
            &n,
            |bencher, _| {
                bencher.iter(|| Alignment::between(black_box(&space), &f1, &f2))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
