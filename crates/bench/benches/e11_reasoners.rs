//! E11 — reasoner substrate scaling: the polynomial EL classifier vs
//! the tableau on (a) shared EL workloads and (b) the hard ALC family
//! only the tableau can handle. The expected shape: EL wins on the
//! shared fragment and scales smoothly; tableau cost explodes on the
//! branching family — the crossover is at *expressivity*, not size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::dl::classify::Classifier;
use summa_core::substrates::dl::el::ElClassifier;
use summa_core::substrates::dl::generate;
use summa_core::substrates::dl::prelude::*;

fn print_record() {
    summa_bench::banner("E11", "reasoner-substrate scaling (synthetic)");
    println!("  workload           | EL pairs | tableau pairs | agree");
    for &n in &[8usize, 12, 16] {
        let (voc, t, _) = generate::random_el(n, 3, n * 2, 42);
        let h_el = ElClassifier::new(&t, &voc)
            .expect("EL")
            .classify(&t, &voc)
            .expect("ok");
        let h_tab = Tableau::new(&t, &voc).classify(&t, &voc).expect("ok");
        println!(
            "  random_el(n={n:<3})   | {:>8} | {:>13} | {}",
            h_el.n_pairs(),
            h_tab.n_pairs(),
            h_el == h_tab
        );
    }
    for &n in &[4usize, 6] {
        let (voc, c) = generate::hard_alc(n);
        let mut r = Tableau::new(&TBox::new(), &voc);
        println!(
            "  hard_alc(n={n:<2}) satisfiable by tableau: {} (EL: outside fragment)",
            r.is_satisfiable(&c)
        );
    }
}

fn bench(c: &mut Criterion) {
    print_record();
    let mut group = c.benchmark_group("e11_reasoners");
    group.sample_size(10);
    // (a) Shared EL workloads: classify with both reasoners. The
    // brute-force tableau classification is quadratic in atoms with
    // nontrivial per-query cost, so the sweep stays modest.
    for &n in &[8usize, 12, 16] {
        let (voc, t, _) = generate::random_el(n, 3, n * 2, 42);
        group.bench_with_input(
            BenchmarkId::new("el_classify", n),
            &n,
            |bencher, _| {
                bencher.iter(|| {
                    ElClassifier::new(black_box(&t), &voc)
                        .expect("EL")
                        .classify(&t, &voc)
                        .expect("ok")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tableau_classify", n),
            &n,
            |bencher, _| {
                bencher.iter(|| {
                    Tableau::new(black_box(&t), &voc)
                        .classify(&t, &voc)
                        .expect("ok")
                })
            },
        );
    }
    // (b) The branching family: tableau only (cost explodes with n —
    // that explosion is the measurement).
    for &n in &[3usize, 4, 5] {
        let (voc, concept) = generate::hard_alc(n);
        group.bench_with_input(
            BenchmarkId::new("tableau_hard_alc", n),
            &n,
            |bencher, _| {
                bencher.iter(|| {
                    // A fresh reasoner each time: no cache effects.
                    let mut r = Tableau::new(&TBox::new(), &voc);
                    r.is_satisfiable(black_box(&concept))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
