//! Agenda/trail kernel vs reference clone-per-disjunct engine.
//!
//! Like `classify.rs` this bench doubles as a report generator: besides
//! printing ns/iter it writes `BENCH_tableau.json` at the workspace
//! root, comparing the two expansion engines
//! (`Tableau::with_reference_kernel(false)` — the agenda-driven,
//! trail-backtracking kernel — against `true`, the original
//! full-`State`-clone engine) per workload. Three measures per lane:
//! wall time, states popped (`dl.rule.search`, the charged search-loop
//! counter — byte-identical between engines by contract), and label
//! scans (`dl.tableau.label_scans`, complete single-node label
//! traversals — the machine-independent quantity the agenda actually
//! eliminates).
//!
//! Every instrumented run asserts the verdict vectors and states-popped
//! counts are identical and that the kernel performs *strictly fewer*
//! label scans on every lane. In non-smoke mode the pigeonhole lane
//! additionally asserts the kernel is at least 2x faster on wall time
//! (the acceptance target: exponential refutations are where clone-
//! per-disjunct backtracking hurts the most).
//!
//! `SUMMA_BENCH_SMOKE=1` shrinks the measurement window to one sample
//! per lane so CI can validate the report format without paying for a
//! full measurement; the counter assertions are exact either way.

use criterion::{json_escape, Criterion};
use std::fmt::Write as _;
use summa_dl::concept::{Concept, Vocabulary};
use summa_dl::generate;
use summa_dl::tableau::Tableau;
use summa_dl::tbox::TBox;
use summa_guard::Budget;

struct Workload {
    name: &'static str,
    voc: Vocabulary,
    tbox: TBox,
    /// Satisfiability queries issued per iteration, in order.
    queries: Vec<Concept>,
}

fn workloads() -> Vec<Workload> {
    // The classify/parallel corpus, re-cut for raw sat calls: an
    // incoherent pigeonhole TBox (every probe an exponential
    // refutation — maximum backtracking, the trail's best case), a
    // random EL terminology under a full subsumption sweep (shallow,
    // agenda-dominated), and a deep diamond lattice probed on a
    // deterministic sample of non-subsumption pairs.
    let (p_voc, p_tbox, p_probes) = generate::pigeonhole_tbox(4, 3);
    let p_queries = p_probes.iter().map(|&c| Concept::atom(c)).collect();

    let (e_voc, e_tbox, e_atoms) = generate::random_el(12, 2, 16, 0x5EED);
    let mut e_queries = Vec::new();
    for &a in &e_atoms {
        for &b in &e_atoms {
            if a != b {
                e_queries.push(Concept::and(vec![
                    Concept::atom(a),
                    Concept::not(Concept::atom(b)),
                ]));
            }
        }
    }

    let (d_voc, d_tbox, d_atoms) = generate::diamond(6);
    let n = d_atoms.len();
    let d_queries = (0..24)
        .map(|i| {
            let a = d_atoms[(i * 13 + 5) % n];
            let b = d_atoms[(i * 7 + 3) % n];
            Concept::and(vec![Concept::atom(a), Concept::not(Concept::atom(b))])
        })
        .collect();

    vec![
        Workload {
            name: "pigeonhole",
            voc: p_voc,
            tbox: p_tbox,
            queries: p_queries,
        },
        Workload {
            name: "random_el",
            voc: e_voc,
            tbox: e_tbox,
            queries: e_queries,
        },
        Workload {
            name: "diamond",
            voc: d_voc,
            tbox: d_tbox,
            queries: d_queries,
        },
    ]
}

fn smoke() -> bool {
    std::env::var("SUMMA_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// One instrumented pass of a workload through one engine: fresh
/// reasoner (fresh memo — the timed loops get the same), traced budget,
/// every query metered. Returns the verdict vector plus the two
/// counters the report cares about.
fn instrumented(w: &Workload, reference: bool) -> (Vec<bool>, u64, u64) {
    let mut reasoner = Tableau::new(&w.tbox, &w.voc).with_reference_kernel(reference);
    let tracer = summa_guard::obs::Tracer::enabled();
    let budget = Budget::unlimited().with_tracer(tracer.clone());
    let mut meter = budget.meter();
    let verdicts = w
        .queries
        .iter()
        .map(|q| reasoner.sat_metered(q, &mut meter).expect("unlimited"))
        .collect();
    let counters = tracer.snapshot().counters;
    let lookup = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    (
        verdicts,
        lookup("dl.rule.search"),
        lookup("dl.tableau.label_scans"),
    )
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let loads = workloads();
    let mut c = Criterion::default();
    {
        let mut g = c.benchmark_group("tableau_kernel");
        g.sample_size(if smoke() { 1 } else { 10 });
        for w in &loads {
            // Reasoners are built inside the closure: the sat memo
            // must start cold every iteration or later samples time a
            // cache lookup instead of the expansion engine.
            g.bench_function(format!("{}/reference", w.name), |b| {
                b.iter(|| {
                    let mut r = Tableau::new(&w.tbox, &w.voc).with_reference_kernel(true);
                    w.queries
                        .iter()
                        .filter(|q| r.is_satisfiable(q))
                        .count()
                })
            });
            g.bench_function(format!("{}/kernel", w.name), |b| {
                b.iter(|| {
                    let mut r = Tableau::new(&w.tbox, &w.voc).with_reference_kernel(false);
                    w.queries
                        .iter()
                        .filter(|q| r.is_satisfiable(q))
                        .count()
                })
            });
        }
        g.finish();
    }

    // One instrumented run per workload and engine: verdict equality,
    // states-popped equality (byte-identity contract), and the
    // strictly-fewer-label-scans acceptance check on every lane.
    let mut entries = Vec::new();
    for w in &loads {
        let (ref_verdicts, ref_popped, ref_scans) = instrumented(w, true);
        let (ker_verdicts, ker_popped, ker_scans) = instrumented(w, false);
        assert_eq!(
            ref_verdicts, ker_verdicts,
            "{}: engine verdicts diverge",
            w.name
        );
        assert_eq!(
            ref_popped, ker_popped,
            "{}: states-popped counts diverge (byte-identity contract)",
            w.name
        );
        assert!(
            ker_scans < ref_scans,
            "{}: kernel must perform strictly fewer label scans \
             (kernel {ker_scans}, reference {ref_scans})",
            w.name
        );

        let ref_ns = c
            .ns_per_iter("tableau_kernel", &format!("{}/reference", w.name))
            .expect("timed");
        let ker_ns = c
            .ns_per_iter("tableau_kernel", &format!("{}/kernel", w.name))
            .expect("timed");
        let speedup = ref_ns as f64 / ker_ns.max(1) as f64;
        if w.name == "pigeonhole" && !smoke() {
            assert!(
                speedup >= 2.0,
                "pigeonhole acceptance: kernel must be >= 2x faster on \
                 sat-call wall time, got {speedup:.2}x ({ref_ns} ns vs {ker_ns} ns)",
            );
        }
        let scan_ratio = ker_scans as f64 / ref_scans.max(1) as f64;
        println!(
            "  {:<12} {} queries: label scans {} -> {} ({:.1}%), states popped {}, speedup {:.2}x",
            w.name,
            w.queries.len(),
            ref_scans,
            ker_scans,
            scan_ratio * 100.0,
            ker_popped,
            speedup,
        );
        let mut e = String::new();
        write!(
            e,
            "    {{\"name\": \"{}\", \"queries\": {}, \
             \"reference_ns\": {}, \"kernel_ns\": {}, \"speedup\": {:.3}, \
             \"states_popped\": {}, \"reference_label_scans\": {}, \
             \"kernel_label_scans\": {}, \"label_scan_ratio\": {:.4}}}",
            json_escape(w.name),
            w.queries.len(),
            ref_ns,
            ker_ns,
            speedup,
            ker_popped,
            ref_scans,
            ker_scans,
            scan_ratio,
        )
        .expect("write to string");
        entries.push(e);
    }

    // Provenance header, mirroring BENCH_classify.json so downstream
    // tooling parses both the same way.
    let summa_threads = match std::env::var("SUMMA_THREADS") {
        Ok(v) => format!("\"{}\"", json_escape(&v)),
        Err(_) => "null".to_string(),
    };
    let caveat = if smoke() {
        ",\n  \"caveat\": \"smoke mode (SUMMA_BENCH_SMOKE=1): one sample per lane, wall times are format placeholders and the 2x pigeonhole gate is skipped; counter comparisons are exact either way\"".to_string()
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"bench\": \"tableau_kernel\",\n  \"host_cpus\": {},\n  \"summa_threads_env\": {},\n  \"generated_at\": \"{}\"{},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        host_cpus,
        summa_threads,
        summa_bench::iso8601_utc_now(),
        caveat,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tableau.json");
    std::fs::write(path, &json).expect("write BENCH_tableau.json");
    println!("\nwrote {path}");
}
