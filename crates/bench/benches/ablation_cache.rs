//! Ablation — the tableau's satisfiability cache under classification.
//!
//! Classification issues O(n²) subsumption queries with heavily
//! overlapping subproblems; the memo table keyed by NNF input turns
//! repeated queries into lookups. This bench classifies the same TBox
//! with one shared (caching) reasoner vs a fresh reasoner per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::dl::classify::Classifier;
use summa_core::substrates::dl::generate;
use summa_core::substrates::dl::prelude::*;

fn classify_fresh_per_query(tbox: &TBox, voc: &Vocabulary) -> usize {
    // The cache-less baseline: a new reasoner for every pairwise test.
    let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
    let mut pairs = 0;
    for &sub in &atoms {
        for &sup in &atoms {
            let mut r = Tableau::new(tbox, voc);
            if !r.is_satisfiable(&Concept::and(vec![
                Concept::atom(sub),
                Concept::not(Concept::atom(sup)),
            ])) {
                pairs += 1;
            }
        }
    }
    pairs
}

fn print_record() {
    summa_bench::banner("A2 (ablation)", "satisfiability cache under classification");
    for &n in &[6usize, 10] {
        let (voc, t, _) = generate::random_el(n, 2, n * 2, 9);
        let cached = Tableau::new(&t, &voc)
            .classify(&t, &voc)
            .expect("classification")
            .n_pairs();
        let fresh = classify_fresh_per_query(&t, &voc);
        println!("  n={n}: cached classification finds {cached} pairs, fresh-per-query {fresh}");
        assert_eq!(cached, fresh, "the ablation must not change answers");
    }
}

fn bench(c: &mut Criterion) {
    print_record();
    let mut group = c.benchmark_group("ablation_cache");
    group.sample_size(10);
    for &n in &[6usize, 10, 14] {
        let (voc, t, _) = generate::random_el(n, 2, n * 2, 9);
        group.bench_with_input(BenchmarkId::new("shared_cached", n), &n, |b, _| {
            b.iter(|| {
                Tableau::new(black_box(&t), &voc)
                    .classify(&t, &voc)
                    .expect("classification")
            })
        });
        group.bench_with_input(BenchmarkId::new("fresh_per_query", n), &n, |b, _| {
            b.iter(|| classify_fresh_per_query(black_box(&t), &voc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
