//! E10 — "trespassers will be prosecuted": prints the per-context
//! interpretations, meaning variance and encoding loss, then times
//! the fixpoint interpreter on synthetic convention chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::hermeneutic::prelude::*;

fn print_record() {
    summa_bench::banner("E10", "the trespassers sign, §3");
    let text = trespassers_sign();
    let contexts = all_contexts();
    for ctx in &contexts {
        let (props, rounds, _) = interpret_traced(&text, ctx);
        println!(
            "  {:<18} {} propositions, {} circle rounds",
            ctx.name(),
            props.len(),
            rounds
        );
    }
    let refs: Vec<&Context> = contexts.iter().collect();
    let v = MeaningVariance::across(&text, &refs);
    println!(
        "  distinct meanings: {} / {}; mean distance {:.2}",
        v.n_distinct,
        contexts.len(),
        v.mean_jaccard_distance
    );
    let frozen = interpret(&text, &contexts[0]);
    println!(
        "  encoding loss (door reading frozen): {:.2}",
        encoding_loss(&text, &frozen, &refs)
    );
}

/// A chain context of depth `n` (n rounds of the circle).
fn chain_context(n: usize) -> (Text, Context) {
    let mut text = Text::new();
    text.cue("cue:start");
    let mut ctx = Context::new("chain");
    ctx.add(Convention::new("r0", ["cue:start"], [], "p0"));
    for i in 1..n {
        let prev = format!("p{}", i - 1);
        let cur = format!("p{i}");
        ctx.add(Convention::new(
            &format!("r{i}"),
            [],
            [prev.as_str()],
            &cur,
        ));
    }
    (text, ctx)
}

fn bench(c: &mut Criterion) {
    print_record();
    let text = trespassers_sign();
    let door = door_of_building_context();
    let mut group = c.benchmark_group("e10_hermeneutic");
    group.bench_function("interpret_at_door", |b| {
        b.iter(|| interpret(black_box(&text), black_box(&door)))
    });
    for &n in summa_bench::SWEEP_MEDIUM {
        let (t, ctx) = chain_context(n);
        group.bench_with_input(
            BenchmarkId::new("fixpoint_chain", n),
            &n,
            |bencher, _| bencher.iter(|| interpret(black_box(&t), black_box(&ctx))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
