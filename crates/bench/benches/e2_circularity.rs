//! E2 — the circularity of Guarino's construction: prints the
//! dependency cycle and the repaired order, then times cycle
//! detection on growing synthetic dependency graphs (the analysis
//! itself must stay cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::intensional::circularity::{DependencyGraph, Notion};

fn print_record() {
    summa_bench::banner("E2", "the circularity argument, §2");
    let g = DependencyGraph::guarino();
    print!("{}", g.render());
    match g.analyze().cycle {
        Some(cycle) => {
            let names: Vec<&str> = cycle.iter().map(|n| n.name()).collect();
            println!("  cycle: {}", names.join(" → "));
        }
        None => println!("  no cycle (unexpected)"),
    }
    let repaired = DependencyGraph::guarino_with_primitive_worlds();
    match repaired.analyze().topological_order {
        Some(order) => {
            let names: Vec<&str> = order.iter().map(|n| n.name()).collect();
            println!("  repaired (primitive worlds): {}", names.join(" → "));
        }
        None => println!("  repaired graph unexpectedly cyclic"),
    }
}

/// A synthetic dependency graph: a long chain with a closing edge
/// (cyclic) built from alternating notion labels.
fn synthetic(n_edges: usize, cyclic: bool) -> DependencyGraph {
    let notions = [
        Notion::IntensionalRelation,
        Notion::WorldStructure,
        Notion::ExtensionalRelation,
        Notion::PrimitiveState,
    ];
    let mut g = DependencyGraph::new();
    for i in 0..n_edges {
        g.depends(notions[i % 3], notions[(i + 1) % 3], "chain");
    }
    if !cyclic {
        // Redirect everything toward primitive state: acyclic.
        let mut g2 = DependencyGraph::new();
        for &notion in notions.iter().take(3.min(n_edges)) {
            g2.depends(notion, Notion::PrimitiveState, "grounded");
        }
        return g2;
    }
    g
}

fn bench(c: &mut Criterion) {
    print_record();
    let mut group = c.benchmark_group("e2_circularity");
    for &n in &[3usize, 30, 300] {
        let cyclic = synthetic(n, true);
        group.bench_with_input(BenchmarkId::new("detect_cycle", n), &n, |bencher, _| {
            bencher.iter(|| black_box(&cyclic).analyze())
        });
    }
    let acyclic = synthetic(3, false);
    group.bench_function("topological_order", |bencher| {
        bencher.iter(|| black_box(&acyclic).analyze())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
