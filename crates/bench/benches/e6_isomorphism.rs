//! E6 — CAR ≅ DOG (structures (4) ≅ (8)) and the repair: prints the
//! collapse report, then times the isomorphism check on the paper's
//! graphs and on growing symmetric families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use summa_core::substrates::dl::corpus::{
    animals_tbox, animals_tbox_repaired, vehicles_tbox, PaperVocab,
};
use summa_core::substrates::structure::differentiation::symmetric_family;
use summa_core::substrates::structure::graph::{DefGraph, LabelMode};
use summa_core::substrates::structure::prelude::*;

fn print_record() {
    summa_bench::banner("E6", "structures (4) ≅ (8), diagrams (6)–(7), §3");
    let p = PaperVocab::new();
    let v = vehicles_tbox(&p);
    let a = animals_tbox(&p);
    println!(
        "  CAR ≅ DOG before repair: {}",
        structurally_indistinguishable(&v, p.car, &a, p.dog, &p.voc).is_some()
    );
    let pairs = find_isomorphic_pairs(&v, &a, &p.voc, 8);
    println!("  collapsed pairs between (4) and (8): {}", pairs.len());
    for r in pairs.iter().take(6) {
        println!("    {} ≅ {}", r.left_name, r.right_name);
    }
    let repaired = animals_tbox_repaired(&p);
    println!(
        "  CAR ≅ DOG after (9)–(11):  {}",
        structurally_indistinguishable(&v, p.car, &repaired, p.dog, &p.voc).is_some()
    );
}

fn bench(c: &mut Criterion) {
    print_record();
    let p = PaperVocab::new();
    let v = vehicles_tbox(&p);
    let a = animals_tbox(&p);
    let mut group = c.benchmark_group("e6_isomorphism");
    group.bench_function("car_dog_check", |b| {
        b.iter(|| {
            structurally_indistinguishable(
                black_box(&v),
                p.car,
                black_box(&a),
                p.dog,
                &p.voc,
            )
        })
    });
    group.bench_function("all_pairs_4_vs_8", |b| {
        b.iter(|| find_isomorphic_pairs(black_box(&v), black_box(&a), &p.voc, 8))
    });
    // Raw VF2 on growing skeletons.
    for &n in summa_bench::SWEEP_SMALL {
        let (voc, t) = symmetric_family(n);
        let g = DefGraph::from_tbox(&t, &voc, LabelMode::Anonymous);
        group.bench_with_input(
            BenchmarkId::new("vf2_self_isomorphism", n),
            &n,
            |bencher, _| bencher.iter(|| find_isomorphism(black_box(&g), black_box(&g))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
