//! # summa-bench — the experiment and benchmark harness
//!
//! One Criterion bench per experiment of the DESIGN.md index
//! (E1–E12, excluding E5/E8 which are example-only figure
//! regenerations). Each bench first prints the regenerated experiment
//! rows — the reproduction record that EXPERIMENTS.md pins — and then
//! times the core operation over a parameter sweep.
//!
//! Run everything with `cargo bench`, or a single experiment with
//! e.g. `cargo bench --bench e6_isomorphism`.

/// Print a banner separating the experiment record from Criterion's
/// timing output.
pub fn banner(experiment: &str, paper_artifact: &str) {
    println!("\n=== {experiment} — reproduces: {paper_artifact} ===");
}

/// Standard sweep sizes for scaling experiments.
pub const SWEEP_SMALL: &[usize] = &[2, 4, 6];
/// Larger sweep for polynomial-cost experiments.
pub const SWEEP_MEDIUM: &[usize] = &[8, 16, 32, 64];

#[cfg(test)]
mod tests {
    #[test]
    fn sweeps_are_increasing() {
        assert!(super::SWEEP_SMALL.windows(2).all(|w| w[0] < w[1]));
        assert!(super::SWEEP_MEDIUM.windows(2).all(|w| w[0] < w[1]));
    }
}
