//! # summa-bench — the experiment and benchmark harness
//!
//! One Criterion bench per experiment of the DESIGN.md index
//! (E1–E12, excluding E5/E8 which are example-only figure
//! regenerations). Each bench first prints the regenerated experiment
//! rows — the reproduction record that EXPERIMENTS.md pins — and then
//! times the core operation over a parameter sweep.
//!
//! Run everything with `cargo bench`, or a single experiment with
//! e.g. `cargo bench --bench e6_isomorphism`.

/// Print a banner separating the experiment record from Criterion's
/// timing output.
pub fn banner(experiment: &str, paper_artifact: &str) {
    println!("\n=== {experiment} — reproduces: {paper_artifact} ===");
}

/// Standard sweep sizes for scaling experiments.
pub const SWEEP_SMALL: &[usize] = &[2, 4, 6];
/// Larger sweep for polynomial-cost experiments.
pub const SWEEP_MEDIUM: &[usize] = &[8, 16, 32, 64];

/// The current UTC wall-clock time as an ISO-8601 timestamp
/// (`YYYY-MM-DDTHH:MM:SSZ`), computed from the Unix epoch without any
/// date dependency. Used to stamp benchmark reports with provenance.
pub fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso8601_from_unix(secs)
}

/// Format Unix seconds as `YYYY-MM-DDTHH:MM:SSZ` using the standard
/// civil-from-days calendar algorithm (proleptic Gregorian).
pub fn iso8601_from_unix(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Howard Hinnant's civil_from_days, shifted so the era starts on
    // 0000-03-01 and leap days land at era boundaries.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweeps_are_increasing() {
        assert!(super::SWEEP_SMALL.windows(2).all(|w| w[0] < w[1]));
        assert!(super::SWEEP_MEDIUM.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn iso8601_matches_known_instants() {
        assert_eq!(super::iso8601_from_unix(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(super::iso8601_from_unix(951_827_696), "2000-02-29T12:34:56Z");
        // 2038-01-19T03:14:07Z, the 32-bit rollover instant.
        assert_eq!(super::iso8601_from_unix(2_147_483_647), "2038-01-19T03:14:07Z");
    }

    #[test]
    fn iso8601_now_is_well_formed() {
        let now = super::iso8601_utc_now();
        assert_eq!(now.len(), 20);
        assert!(now.ends_with('Z'));
        assert_eq!(&now[4..5], "-");
        assert_eq!(&now[10..11], "T");
    }
}
