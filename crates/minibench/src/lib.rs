//! A minimal, dependency-free benchmark harness exposing the subset of
//! the `criterion` API this workspace's benches use.
//!
//! The build must work with the network disabled, so the real
//! `criterion` crate cannot be fetched; the workspace aliases this
//! crate as `criterion` in `[dev-dependencies]`
//! (`criterion = { package = "summa-minibench", path = … }`) and the
//! bench files compile unchanged.
//!
//! Timing model: each benchmark is warmed up briefly, then timed over
//! enough iterations to cover a small measurement window, and the
//! mean per-iteration time is printed. No statistics, plots, or
//! baselines — this is a smoke-and-ballpark harness, not a substitute
//! for criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle, constructed by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Record>,
}

/// One measured benchmark: the mean per-iteration wall time over the
/// whole measurement window. Collected so `harness = false` benches
/// can post-process results (compute speedups, emit JSON reports)
/// instead of scraping stdout.
#[derive(Debug, Clone)]
pub struct Record {
    /// The enclosing benchmark group's name.
    pub group: String,
    /// The benchmark's label within the group.
    pub label: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: u128,
    /// Number of iterations timed.
    pub iters: u64,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            parent: self,
            sample_size: 20,
        }
    }

    /// All results measured so far, in execution order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The mean ns/iter of the record matching `group` and `label`.
    pub fn ns_per_iter(&self, group: &str, label: &str) -> Option<u128> {
        self.records
            .iter()
            .find(|r| r.group == group && r.label == label)
            .map(|r| r.ns_per_iter)
    }
}

/// Escape a string for inclusion in a JSON document — the helper that
/// lets dependency-free benches emit valid report files.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A named parameterized benchmark id, printed as `name/param`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    group: String,
    parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples (kept for API compatibility;
    /// also scales the measurement window down for slow benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Run a benchmark against one input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group. No-op; exists for criterion compatibility.
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis((10 * self.sample_size as u64).min(500)),
        };
        f(&mut b);
        if b.iters == 0 {
            println!("  {label:<48} (no iterations)");
        } else {
            let per = b.total.as_nanos() / b.iters as u128;
            println!("  {label:<48} {:>12} ns/iter ({} iters)", per, b.iters);
            self.parent.records.push(Record {
                group: self.group.clone(),
                label: label.to_string(),
                ns_per_iter: per,
                iters: b.iters,
            });
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration pass.
        let start = Instant::now();
        std::hint::black_box(routine());
        let first = start.elapsed();

        let window = self.budget;
        let start = Instant::now();
        let mut iters = 1u64;
        let mut elapsed = first;
        while elapsed < window && iters < 1_000_000 {
            std::hint::black_box(routine());
            iters += 1;
            elapsed = start.elapsed() + first;
        }
        self.total += elapsed;
        self.iters += iters;
    }
}

/// Declare a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
