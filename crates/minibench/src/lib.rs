//! A minimal, dependency-free benchmark harness exposing the subset of
//! the `criterion` API this workspace's benches use.
//!
//! The build must work with the network disabled, so the real
//! `criterion` crate cannot be fetched; the workspace aliases this
//! crate as `criterion` in `[dev-dependencies]`
//! (`criterion = { package = "summa-minibench", path = … }`) and the
//! bench files compile unchanged.
//!
//! Timing model: each benchmark is warmed up briefly, then timed over
//! enough iterations to cover a small measurement window, and the
//! mean per-iteration time is printed. No statistics, plots, or
//! baselines — this is a smoke-and-ballpark harness, not a substitute
//! for criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle, constructed by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
        }
    }
}

/// A named parameterized benchmark id, printed as `name/param`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples (kept for API compatibility;
    /// also scales the measurement window down for slow benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Run a benchmark against one input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group. No-op; exists for criterion compatibility.
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis((10 * self.sample_size as u64).min(500)),
        };
        f(&mut b);
        if b.iters == 0 {
            println!("  {label:<48} (no iterations)");
        } else {
            let per = b.total.as_nanos() / b.iters as u128;
            println!("  {label:<48} {:>12} ns/iter ({} iters)", per, b.iters);
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration pass.
        let start = Instant::now();
        std::hint::black_box(routine());
        let first = start.elapsed();

        let window = self.budget;
        let start = Instant::now();
        let mut iters = 1u64;
        let mut elapsed = first;
        while elapsed < window && iters < 1_000_000 {
            std::hint::black_box(routine());
            iters += 1;
            elapsed = start.elapsed() + first;
        }
        self.total += elapsed;
        self.iters += iters;
    }
}

/// Declare a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
