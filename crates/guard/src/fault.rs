//! Deterministic, site-tagged fault injection.
//!
//! [`FaultPlan`] (PR 1) can only force *budget exhaustion* at a step
//! count. A production resilience story needs to rehearse the failures
//! that actually happen — a worker thread panicking, a cache shard
//! returning garbage, a spurious cancellation — and it needs every
//! rehearsal to be **replayable**: the same schedule must produce the
//! same faults at the same places, so a chaos run that exposes a bug
//! can be re-run under a debugger.
//!
//! The [`FaultInjector`] is that schedule. Substrates register *named
//! injection sites* (`exec.task`, `exec.worker`, `dl.sat`,
//! `dl.classify.row`, `dl.cache.insert`, …) by calling
//! [`Meter::fault_point`](crate::Meter::fault_point) (or
//! [`FaultInjector::arrive`] directly where no meter flows). Each
//! arrival at a site increments that site's counter, and the injector's
//! specs decide whether this arrival faults:
//!
//! * `site@N=kind` — fault the N-th arrival at `site` (1-based, fires
//!   exactly once);
//! * `site@p0.01=kind` — fault each arrival independently with
//!   probability 0.01, drawn from a SplitMix64 stream seeded by
//!   `(seed, site, arrival)` so the decision is a pure function of the
//!   schedule.
//!
//! Kinds ([`FaultKind`]): `panic` unwinds the current task (the
//! executor's supervisor catches, retries, and quarantines);
//! `cancel` trips the meter as [`Interrupt::Cancelled`]; `trip` trips
//! it as [`ExhaustionReason::FaultInjected`]; `poison` is consumed by
//! storage sites (the shared [`SatCache`]) to corrupt an entry in a
//! checksum-detectable way.
//!
//! A whole process can be put under a schedule with two environment
//! variables — `SUMMA_FAULT_PLAN="exec.task@3=panic;dl.cache.insert@2=poison"`
//! and `SUMMA_FAULT_SEED=42` — which every [`Budget`](crate::Budget)
//! without an explicit injector picks up, exactly as `SUMMA_TRACE`
//! feeds the global tracer.
//!
//! [`SatCache`]: ../summa_dl/cache/struct.SatCache.html

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// What an injection site should do when its arrival is scheduled to
/// fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind the current task with a tagged panic. The executor's
    /// supervisor converts this into a retry (and eventually a
    /// quarantine), never a pool abort.
    Panic,
    /// Trip the meter as a spurious [`Interrupt::Cancelled`]
    /// (`Interrupt`: crate::Interrupt).
    Cancel,
    /// Trip the meter as
    /// [`ExhaustionReason::FaultInjected`](crate::ExhaustionReason) —
    /// a forced budget trip.
    Trip,
    /// Corrupt the entry being written (storage sites only): the store
    /// flips the value without updating its checksum, so integrity
    /// verification on the read path must catch it.
    Poison,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "cancel" => Some(FaultKind::Cancel),
            "trip" => Some(FaultKind::Trip),
            "poison" => Some(FaultKind::Poison),
            _ => None,
        }
    }

    /// The plan-syntax name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Cancel => "cancel",
            FaultKind::Trip => "trip",
            FaultKind::Poison => "poison",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When a spec fires at its site.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on exactly the N-th arrival (1-based).
    AtHit(u64),
    /// Fire each arrival independently; the threshold is the
    /// probability scaled to `u64::MAX`.
    PerArrival(u64),
}

/// One scheduled fault: a site, a trigger, a kind.
#[derive(Debug, Clone, PartialEq)]
struct FaultSpec {
    site: String,
    trigger: Trigger,
    kind: FaultKind,
}

/// A fault that actually fired — the injector keeps a log so chaos
/// tests can assert the schedule was exercised and failures can be
/// traced back to their injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// The injection site that faulted.
    pub site: String,
    /// Which arrival at the site faulted (1-based).
    pub hit: u64,
    /// What the site was told to do.
    pub kind: FaultKind,
}

/// The deterministic fault schedule: shared (behind an `Arc`) by every
/// meter of a run, all methods take `&self`.
#[derive(Debug, Default)]
pub struct FaultInjector {
    seed: u64,
    specs: Vec<FaultSpec>,
    /// Arrival counters per site. A plain mutex: injection is a chaos-
    /// test facility, never on an uninstrumented hot path (meters check
    /// an `Option` and bail before locking when no injector is
    /// attached).
    hits: Mutex<HashMap<String, u64>>,
    fired: Mutex<Vec<FiredFault>>,
    n_fired: AtomicU64,
}

impl FaultInjector {
    /// An empty schedule (no site ever faults) with the given seed for
    /// probabilistic specs added later.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            ..Default::default()
        }
    }

    /// Schedule `kind` to fire on the `hit`-th arrival (1-based) at
    /// `site`. Fires exactly once.
    pub fn with_fault_at(mut self, site: &str, hit: u64, kind: FaultKind) -> Self {
        self.specs.push(FaultSpec {
            site: site.to_string(),
            trigger: Trigger::AtHit(hit.max(1)),
            kind,
        });
        self
    }

    /// Schedule `kind` to fire on each arrival at `site` independently
    /// with probability `p` (clamped to `[0, 1]`), decided by a
    /// SplitMix64 stream over `(seed, site, arrival)` — a pure function
    /// of the schedule, so runs replay exactly.
    pub fn with_fault_rate(mut self, site: &str, p: f64, kind: FaultKind) -> Self {
        let p = p.clamp(0.0, 1.0);
        self.specs.push(FaultSpec {
            site: site.to_string(),
            trigger: Trigger::PerArrival((p * u64::MAX as f64) as u64),
            kind,
        });
        self
    }

    /// Parse a plan string: `;`- or `,`-separated entries of the form
    /// `site@N=kind` (fire on the N-th arrival) or `site@pX=kind`
    /// (fire with probability X per arrival). Whitespace around entries
    /// is ignored; kinds are `panic`, `cancel`, `trip`, `poison`.
    pub fn parse_plan(plan: &str, seed: u64) -> Result<Self, String> {
        let mut inj = FaultInjector::new(seed);
        for entry in plan.split([';', ',']) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site_trigger, kind) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{entry}`: missing `=kind`"))?;
            let kind = FaultKind::parse(kind.trim())
                .ok_or_else(|| format!("fault spec `{entry}`: unknown kind `{kind}`"))?;
            let (site, trigger) = site_trigger
                .split_once('@')
                .ok_or_else(|| format!("fault spec `{entry}`: missing `@trigger`"))?;
            let site = site.trim();
            if site.is_empty() {
                return Err(format!("fault spec `{entry}`: empty site"));
            }
            let trigger = trigger.trim();
            if let Some(p) = trigger.strip_prefix('p') {
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("fault spec `{entry}`: bad probability `{trigger}`"))?;
                inj = inj.with_fault_rate(site, p, kind);
            } else {
                let hit: u64 = trigger
                    .parse()
                    .map_err(|_| format!("fault spec `{entry}`: bad hit count `{trigger}`"))?;
                inj = inj.with_fault_at(site, hit, kind);
            }
        }
        Ok(inj)
    }

    /// The process-global injector parsed once from `SUMMA_FAULT_PLAN`
    /// (schedule) and `SUMMA_FAULT_SEED` (seed, default 0). `None` when
    /// no plan is set or the plan fails to parse — a malformed plan
    /// must never fault *differently* than intended, so it faults not
    /// at all.
    pub fn global() -> Option<&'static Arc<FaultInjector>> {
        static GLOBAL: OnceLock<Option<Arc<FaultInjector>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let plan = std::env::var("SUMMA_FAULT_PLAN").ok()?;
                let seed = std::env::var("SUMMA_FAULT_SEED")
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(0);
                FaultInjector::parse_plan(&plan, seed).ok().map(Arc::new)
            })
            .as_ref()
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Register one arrival at `site` and return the fault, if this
    /// arrival is scheduled to have one. The first matching spec (in
    /// plan order) wins.
    pub fn arrive(&self, site: &str) -> Option<FaultKind> {
        if self.specs.iter().all(|s| s.site != site) {
            // Unscheduled sites stay cheap-ish: no counter churn.
            return None;
        }
        let hit = {
            let mut hits = self.hits.lock().unwrap_or_else(PoisonError::into_inner);
            let h = hits.entry(site.to_string()).or_insert(0);
            *h += 1;
            *h
        };
        for spec in &self.specs {
            if spec.site != site {
                continue;
            }
            let fire = match spec.trigger {
                Trigger::AtHit(h) => h == hit,
                Trigger::PerArrival(threshold) => {
                    splitmix64(self.seed ^ str_hash(site) ^ hit.wrapping_mul(0x9e3779b97f4a7c15))
                        < threshold
                }
            };
            if fire {
                self.fired
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(FiredFault {
                        site: site.to_string(),
                        hit,
                        kind: spec.kind,
                    });
                self.n_fired.fetch_add(1, Ordering::Relaxed);
                return Some(spec.kind);
            }
        }
        None
    }

    /// Total faults fired so far.
    pub fn n_fired(&self) -> u64 {
        self.n_fired.load(Ordering::Relaxed)
    }

    /// The log of fired faults, in firing order (per-site order is
    /// exact; cross-site interleaving follows execution).
    pub fn fired_log(&self) -> Vec<FiredFault> {
        self.fired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Arrivals observed at `site` so far.
    pub fn arrivals(&self, site: &str) -> u64 {
        self.hits
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(site)
            .copied()
            .unwrap_or(0)
    }
}

/// The panic message prefix every injected panic carries, so
/// supervisors and humans can tell rehearsed failures from real ones.
pub const INJECTED_PANIC_PREFIX: &str = "summa-fault: injected panic";

/// Panic with the tagged injected-fault message for `site`. Kept in
/// one place so the supervisor's quarantine records and the chaos
/// tests agree on the format.
pub fn injected_panic(site: &str) -> ! {
    panic!("{INJECTED_PANIC_PREFIX} at {site}")
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the site name: stable across processes (site names are
/// compile-time constants, not attacker input).
fn str_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_hit_fires_exactly_once_at_the_scheduled_arrival() {
        let inj = FaultInjector::new(0).with_fault_at("a.site", 3, FaultKind::Panic);
        assert_eq!(inj.arrive("a.site"), None);
        assert_eq!(inj.arrive("a.site"), None);
        assert_eq!(inj.arrive("a.site"), Some(FaultKind::Panic));
        assert_eq!(inj.arrive("a.site"), None);
        assert_eq!(inj.n_fired(), 1);
        assert_eq!(
            inj.fired_log(),
            vec![FiredFault {
                site: "a.site".into(),
                hit: 3,
                kind: FaultKind::Panic
            }]
        );
        assert_eq!(inj.arrivals("a.site"), 4);
    }

    #[test]
    fn unscheduled_sites_never_fault_and_are_not_counted() {
        let inj = FaultInjector::new(0).with_fault_at("a", 1, FaultKind::Trip);
        for _ in 0..100 {
            assert_eq!(inj.arrive("b"), None);
        }
        assert_eq!(inj.arrivals("b"), 0, "unscheduled sites skip counting");
    }

    #[test]
    fn probabilistic_schedule_is_replayable() {
        let run = |seed| {
            let inj = FaultInjector::new(seed).with_fault_rate("s", 0.05, FaultKind::Cancel);
            (0..2000).filter(|_| inj.arrive("s").is_some()).count()
        };
        assert_eq!(run(7), run(7), "same seed, same fault arrivals");
        assert!(run(7) > 0, "p=0.05 over 2000 arrivals fires w.h.p.");
        // Not a fixed pattern: a different seed gives a different
        // (deterministic) schedule.
        let trace = |seed| {
            let inj = FaultInjector::new(seed).with_fault_rate("s", 0.05, FaultKind::Cancel);
            (0..2000)
                .map(|_| inj.arrive("s").is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(trace(7), trace(8));
    }

    #[test]
    fn plan_parsing_round_trips_the_grammar() {
        let inj = FaultInjector::parse_plan(
            " exec.task@3=panic; dl.cache.insert@1=poison , dl.sat@p0.25=trip ;",
            42,
        )
        .expect("valid plan");
        assert_eq!(inj.seed(), 42);
        assert_eq!(inj.arrive("dl.cache.insert"), Some(FaultKind::Poison));
        assert_eq!(inj.arrive("exec.task"), None);
        assert_eq!(inj.arrive("exec.task"), None);
        assert_eq!(inj.arrive("exec.task"), Some(FaultKind::Panic));
        // Malformed plans are rejected with a pointed message.
        for bad in [
            "exec.task=panic",
            "exec.task@3",
            "exec.task@3=explode",
            "@3=panic",
            "exec.task@px=panic",
            "exec.task@notanumber=panic",
        ] {
            assert!(
                FaultInjector::parse_plan(bad, 0).is_err(),
                "`{bad}` must not parse"
            );
        }
        // The empty plan is a valid no-op schedule.
        assert!(FaultInjector::parse_plan("", 0).is_ok());
    }

    #[test]
    fn first_matching_spec_wins() {
        let inj = FaultInjector::new(0)
            .with_fault_at("s", 1, FaultKind::Cancel)
            .with_fault_at("s", 1, FaultKind::Panic);
        assert_eq!(inj.arrive("s"), Some(FaultKind::Cancel));
    }

    #[test]
    fn injected_panic_is_tagged() {
        let err = std::panic::catch_unwind(|| injected_panic("exec.task")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got {msg}");
        assert!(msg.contains("exec.task"));
    }
}
