//! Resource governance for the reasoning substrates.
//!
//! Every engine in this workspace — the ALC tableau, Knuth–Bendix
//! rewriting, subgraph-isomorphism search — is worst-case explosive or
//! outright non-terminating. A production critique pipeline cannot let
//! a pathological input hang or panic the whole admission matrix, so
//! every long-running entry point runs under an explicit [`Budget`]
//! and reports its outcome as a [`Governed<T>`]: either the complete
//! answer, or a truthful partial answer tagged with *why* the engine
//! stopped.
//!
//! The pieces:
//!
//! * [`Budget`] — an immutable resource envelope: step limit,
//!   wall-clock deadline, memory proxy limit, a cooperative
//!   [`CancelToken`], and an optional [`FaultPlan`] for failure
//!   injection in tests.
//! * [`Meter`] — the mutable spend tracker an engine carries through
//!   its inner loop. `meter.charge(n)?` is the single cheap call sites
//!   make; it returns an [`Interrupt`] when the envelope is exceeded.
//! * [`Governed<T>`] — the three-way outcome
//!   (`Completed | Exhausted | Cancelled`), with the partial result
//!   preserved where one exists.
//! * [`Spend`] — how much of the envelope a computation actually used,
//!   surfaced per-cell in the admission matrix report.
//!
//! The idiomatic plumbing pattern used across the substrates:
//!
//! ```text
//! fn work_metered(…, meter: &mut Meter) -> Result<T, Interrupt>   // internal
//! pub fn work_governed(…, budget: &Budget) -> Governed<T>         // public
//! ```
//!
//! Composite services (classification, realization, the critiques)
//! share one `Meter` across all their inner calls so the envelope
//! bounds the *whole* service, not each sub-call separately.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod fault;

pub use fault::{FaultInjector, FaultKind, FiredFault};

/// Structured tracing and metrics (re-exported `summa-obs`).
///
/// The [`Tracer`](obs::Tracer) rides inside [`Budget`] / [`Meter`] /
/// [`SharedBudget`], so every governed engine can emit spans
/// (`meter.span("dl.sat")`) and counters (`meter.count(…, 1)`) without
/// depending on `summa-obs` directly. Tracing is observation-only: no
/// tracer call can perturb metering, results, or control flow, and the
/// disabled hot path is a single atomic load.
pub use summa_obs as obs;

/// How often (in charged steps) the meter re-checks the wall clock and
/// the cancel flag. `Instant::now()` and the atomic load are cheap but
/// not free; engines charge in the innermost loop.
const CHECK_INTERVAL: u64 = 64;

// ---------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------

/// A cheap, cloneable cooperative cancellation flag.
///
/// Clone the token, hand one clone to the computation (inside a
/// [`Budget`]) and keep the other; calling [`cancel`](Self::cancel)
/// makes every in-flight governed computation holding the twin return
/// [`Governed::Cancelled`] at its next meter check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------

/// Deterministic failure injection for testing degradation paths.
///
/// A plan can force exhaustion at an exact step
/// ([`fail_at_step`](Self::fail_at_step)) and/or fail each charged
/// step with a fixed probability drawn from a seeded generator
/// ([`probabilistic`](Self::probabilistic)). Injected faults surface
/// as [`ExhaustionReason::FaultInjected`] — never as a panic.
///
/// Plans are `Send + Sync` and cheap to clone, so one plan can be
/// shared across every worker of a parallel run. By default each
/// clone fires independently; [`fail_once_at_step`]
/// (Self::fail_once_at_step) arms a *shared* one-shot trigger instead,
/// so exactly one worker (whichever crosses the step mark first)
/// observes the fault — the idiom for testing that a single poisoned
/// worker degrades a parallel service cleanly.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    fail_at: Option<u64>,
    /// Probability scaled to u64::MAX; 0 disables.
    per_step_threshold: u64,
    seed: u64,
    /// When present, the fault fires at most once across *all* clones
    /// of this plan: the flag starts `true` and the first claimant
    /// swaps it to `false`.
    armed: Option<Arc<AtomicBool>>,
}

impl FaultPlan {
    /// Fail the computation once its step count reaches `step`.
    pub fn fail_at_step(step: u64) -> Self {
        FaultPlan {
            fail_at: Some(step),
            ..Default::default()
        }
    }

    /// Fail exactly **one** holder of this plan (or its clones) when
    /// its step count reaches `step`. Clones share the trigger: after
    /// the first firing every other worker proceeds unfaulted.
    pub fn fail_once_at_step(step: u64) -> Self {
        FaultPlan {
            fail_at: Some(step),
            armed: Some(Arc::new(AtomicBool::new(true))),
            ..Default::default()
        }
    }

    /// Fail each charged step independently with probability `p`
    /// (clamped to `[0, 1]`), using `seed` for reproducibility.
    pub fn probabilistic(p: f64, seed: u64) -> Self {
        let p = p.clamp(0.0, 1.0);
        FaultPlan {
            fail_at: None,
            per_step_threshold: (p * u64::MAX as f64) as u64,
            seed,
            armed: None,
        }
    }

    /// Has the shared one-shot trigger already fired? (Always `false`
    /// for per-clone plans.)
    pub fn fired(&self) -> bool {
        self.armed
            .as_ref()
            .map(|a| !a.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    fn should_fail(&self, step: u64, rng_state: &mut u64) -> bool {
        if let Some(at) = self.fail_at {
            if step >= at {
                // One-shot plans fire for the first claimant only.
                if let Some(armed) = &self.armed {
                    return armed.swap(false, Ordering::AcqRel);
                }
                return true;
            }
        }
        if self.per_step_threshold > 0 {
            // SplitMix64: deterministic stream from the seed.
            *rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *rng_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            return z < self.per_step_threshold;
        }
        false
    }
}

// ---------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------

/// An immutable resource envelope for one governed computation.
///
/// Build by chaining: `Budget::new().with_steps(1_000).with_deadline(
/// Duration::from_millis(10))`. A default budget is unlimited.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_steps: Option<u64>,
    max_duration: Option<Duration>,
    max_memory: Option<u64>,
    cancel: Option<CancelToken>,
    fault: Option<FaultPlan>,
    /// Explicit fault schedule; `None` falls back to the process-global
    /// one (gated by `SUMMA_FAULT_PLAN`/`SUMMA_FAULT_SEED`).
    injector: Option<Arc<FaultInjector>>,
    /// Explicit tracer; `None` falls back to the process-global one
    /// (gated by `SUMMA_TRACE`).
    tracer: Option<obs::Tracer>,
}

impl Budget {
    /// An unlimited budget: the computation runs to completion (or
    /// until cancelled, if a token is attached later).
    pub fn new() -> Self {
        Self::default()
    }

    /// Alias for [`Budget::new`]; reads better at call sites that
    /// explicitly want no limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limit the number of abstract steps (nodes created, rewrites
    /// applied, search states visited — each engine documents its
    /// step unit).
    pub fn with_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Limit wall-clock time. The deadline starts when the [`Meter`]
    /// is created, i.e. when the governed call begins.
    pub fn with_deadline(mut self, max_duration: Duration) -> Self {
        self.max_duration = Some(max_duration);
        self
    }

    /// Limit the memory *proxy*: engines charge this counter with
    /// their dominant allocation unit (tableau nodes, union-find
    /// entries, …). It is not an allocator hook.
    pub fn with_memory(mut self, max_units: u64) -> Self {
        self.max_memory = Some(max_units);
        self
    }

    /// Attach a cooperative cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a fault-injection plan (tests only).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attach a deterministic site-tagged fault schedule (chaos tests
    /// only). Without one, meters fall back to the process-global
    /// injector parsed from `SUMMA_FAULT_PLAN`/`SUMMA_FAULT_SEED` —
    /// which is absent in production, making every
    /// [`fault_point`](Meter::fault_point) a no-op `Option` check.
    pub fn with_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The fault schedule meters drawn from this budget consult: the
    /// explicit one if attached, else the process-global one (if any).
    pub fn injector(&self) -> Option<Arc<FaultInjector>> {
        self.injector
            .clone()
            .or_else(|| FaultInjector::global().cloned())
    }

    /// Attach an explicit [`Tracer`](obs::Tracer). Without one, every
    /// meter drawn from this budget records to the process-global
    /// tracer, which is enabled only when `SUMMA_TRACE` is set — so
    /// untraced runs pay one atomic load per instrumentation point.
    pub fn with_tracer(mut self, tracer: obs::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The tracer meters drawn from this budget will record to: the
    /// explicit one if attached, else the process-global tracer.
    pub fn tracer(&self) -> obs::Tracer {
        self.tracer
            .clone()
            .unwrap_or_else(|| obs::Tracer::global().clone())
    }

    /// The configured step limit, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The configured deadline duration, if any.
    pub fn max_duration(&self) -> Option<Duration> {
        self.max_duration
    }

    /// Start metering against this budget.
    pub fn meter(&self) -> Meter {
        Meter::new(self)
    }

    /// Turn this budget into a **shared** envelope that several worker
    /// meters can drain concurrently. One pool of steps and memory
    /// units bounds the whole parallel computation, and the first
    /// interrupt any worker hits is published to all of them.
    pub fn share(&self) -> SharedBudget {
        SharedBudget::new(self)
    }
}

// ---------------------------------------------------------------------
// SharedBudget — one envelope, many workers
// ---------------------------------------------------------------------

/// Tripped-state encoding for the shared ledger (0 = running).
const TRIP_NONE: u8 = 0;
const TRIP_STEPS: u8 = 1;
const TRIP_DEADLINE: u8 = 2;
const TRIP_MEMORY: u8 = 3;
const TRIP_FAULT: u8 = 4;
const TRIP_CANCELLED: u8 = 5;
const TRIP_TASKFAILURE: u8 = 6;

fn encode_interrupt(i: Interrupt) -> u8 {
    match i {
        Interrupt::Exhausted(ExhaustionReason::Steps) => TRIP_STEPS,
        Interrupt::Exhausted(ExhaustionReason::Deadline) => TRIP_DEADLINE,
        Interrupt::Exhausted(ExhaustionReason::Memory) => TRIP_MEMORY,
        Interrupt::Exhausted(ExhaustionReason::FaultInjected) => TRIP_FAULT,
        Interrupt::Exhausted(ExhaustionReason::TaskFailure) => TRIP_TASKFAILURE,
        Interrupt::Cancelled => TRIP_CANCELLED,
    }
}

fn decode_interrupt(code: u8) -> Option<Interrupt> {
    match code {
        TRIP_STEPS => Some(Interrupt::Exhausted(ExhaustionReason::Steps)),
        TRIP_DEADLINE => Some(Interrupt::Exhausted(ExhaustionReason::Deadline)),
        TRIP_MEMORY => Some(Interrupt::Exhausted(ExhaustionReason::Memory)),
        TRIP_FAULT => Some(Interrupt::Exhausted(ExhaustionReason::FaultInjected)),
        TRIP_TASKFAILURE => Some(Interrupt::Exhausted(ExhaustionReason::TaskFailure)),
        TRIP_CANCELLED => Some(Interrupt::Cancelled),
        _ => None,
    }
}

/// The concurrent spend pool behind a [`SharedBudget`]: all worker
/// meters charge the same atomic counters, so the envelope bounds the
/// parallel computation as a whole, exactly as a sequential [`Meter`]
/// bounds a sequential one.
#[derive(Debug)]
pub(crate) struct SharedLedger {
    max_steps: Option<u64>,
    steps: AtomicU64,
    max_memory: Option<u64>,
    memory: AtomicU64,
    peak_memory: AtomicU64,
    /// First interrupt any worker hit; sticky once set.
    tripped: AtomicU8,
}

impl SharedLedger {
    /// Record an interrupt (first writer wins) and return the
    /// prevailing one.
    fn trip(&self, i: Interrupt) -> Interrupt {
        let _ = self.tripped.compare_exchange(
            TRIP_NONE,
            encode_interrupt(i),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        decode_interrupt(self.tripped.load(Ordering::Acquire)).unwrap_or(i)
    }

    fn interrupted(&self) -> Option<Interrupt> {
        decode_interrupt(self.tripped.load(Ordering::Acquire))
    }

    /// Add `n` steps to the pool; `Err` when the pool is exhausted or
    /// a sibling worker already tripped.
    fn charge(&self, n: u64) -> Result<u64, Interrupt> {
        if let Some(i) = self.interrupted() {
            return Err(i);
        }
        let total = self.steps.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if let Some(max) = self.max_steps {
            if total > max {
                return Err(self.trip(Interrupt::Exhausted(ExhaustionReason::Steps)));
            }
        }
        Ok(total)
    }

    fn charge_memory(&self, n: u64) -> Result<(), Interrupt> {
        if let Some(i) = self.interrupted() {
            return Err(i);
        }
        let total = self.memory.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        self.peak_memory.fetch_max(total, Ordering::Relaxed);
        if let Some(max) = self.max_memory {
            if total > max {
                return Err(self.trip(Interrupt::Exhausted(ExhaustionReason::Memory)));
            }
        }
        Ok(())
    }

    fn release_memory(&self, n: u64) {
        // Saturating subtract via CAS loop would be overkill: releases
        // never exceed charges in well-behaved engines, and transient
        // under-run only loosens the (proxy) limit.
        self.memory.fetch_sub(n, Ordering::Relaxed);
    }

    /// Give back `n` steps to the pool — the supervisor's rollback of a
    /// panicked attempt's charges. Refunds never un-trip the ledger.
    fn refund(&self, n: u64) {
        self.steps.fetch_sub(n, Ordering::Relaxed);
    }
}

/// A [`Budget`] prepared for concurrent draining: hand each worker a
/// meter from [`worker_meter`](Self::worker_meter) and they will share
/// one pool of steps and memory units, one deadline (measured from
/// [`Budget::share`]), one cancel token, and one fault plan. The first
/// interrupt any worker hits is published through the ledger, so every
/// sibling stops at its next charge — cooperative cancellation across
/// threads with no extra plumbing at call sites.
#[derive(Debug, Clone)]
pub struct SharedBudget {
    ledger: Arc<SharedLedger>,
    deadline: Option<Instant>,
    started: Instant,
    cancel: Option<CancelToken>,
    fault: Option<FaultPlan>,
    injector: Option<Arc<FaultInjector>>,
    tracer: obs::Tracer,
}

impl SharedBudget {
    fn new(budget: &Budget) -> Self {
        let started = Instant::now();
        SharedBudget {
            ledger: Arc::new(SharedLedger {
                max_steps: budget.max_steps,
                steps: AtomicU64::new(0),
                max_memory: budget.max_memory,
                memory: AtomicU64::new(0),
                peak_memory: AtomicU64::new(0),
                tripped: AtomicU8::new(TRIP_NONE),
            }),
            deadline: budget.max_duration.map(|d| started + d),
            started,
            cancel: budget.cancel.clone(),
            fault: budget.fault.clone(),
            injector: budget.injector(),
            tracer: budget.tracer(),
        }
    }

    /// The tracer all worker meters of this envelope record to.
    pub fn tracer(&self) -> &obs::Tracer {
        &self.tracer
    }

    /// The fault schedule all worker meters of this envelope consult.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// A meter for one worker. Step and memory charges drain the
    /// shared pool; deadline and cancellation are checked against the
    /// shared clock and token at the usual check interval.
    pub fn worker_meter(&self) -> Meter {
        Meter {
            max_steps: None, // limits live in the ledger
            deadline: self.deadline,
            max_memory: None,
            cancel: self.cancel.clone(),
            fault: self.fault.clone(),
            injector: self.injector.clone(),
            fault_rng: self.fault.as_ref().map(|f| f.seed).unwrap_or(0),
            started: self.started,
            steps: 0,
            memory: 0,
            peak_memory: 0,
            next_check: 0,
            tripped: None,
            cache_hits: 0,
            cache_misses: 0,
            shared: Some(Arc::clone(&self.ledger)),
            tracer: self.tracer.clone(),
        }
    }

    /// The first interrupt any worker hit, if one did.
    pub fn interrupted(&self) -> Option<Interrupt> {
        self.ledger.interrupted()
    }

    /// Publish an interrupt to every worker (e.g. when the
    /// orchestrating thread decides to stop the fleet).
    pub fn trip(&self, i: Interrupt) {
        self.ledger.trip(i);
    }

    /// Snapshot the pooled spend across all workers. Per-worker cache
    /// counters are not pooled here — aggregate worker
    /// [`Meter::spend`]s for those.
    pub fn spend(&self) -> Spend {
        Spend {
            steps: self.ledger.steps.load(Ordering::Relaxed),
            elapsed: self.started.elapsed(),
            peak_memory: self.ledger.peak_memory.load(Ordering::Relaxed),
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------
// Interrupt & reasons
// ---------------------------------------------------------------------

/// Which envelope wall the computation hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionReason {
    /// The step limit was spent.
    Steps,
    /// The wall-clock deadline passed.
    Deadline,
    /// The memory-proxy limit was spent.
    Memory,
    /// A [`FaultPlan`] or [`FaultInjector`] forced exhaustion.
    FaultInjected,
    /// One or more cells failed permanently (panicked past their retry
    /// budget and were quarantined), so the result has holes even
    /// though no resource wall was hit.
    TaskFailure,
}

impl fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustionReason::Steps => write!(f, "step budget exhausted"),
            ExhaustionReason::Deadline => write!(f, "deadline exceeded"),
            ExhaustionReason::Memory => write!(f, "memory budget exhausted"),
            ExhaustionReason::FaultInjected => write!(f, "injected fault"),
            ExhaustionReason::TaskFailure => write!(f, "task(s) quarantined after repeated panics"),
        }
    }
}

/// Why a metered computation stopped early. Internal `*_metered`
/// functions return `Result<T, Interrupt>`; the public wrapper turns
/// this into a [`Governed<T>`] carrying whatever partial result the
/// engine could salvage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// A resource limit was hit.
    Exhausted(ExhaustionReason),
    /// The [`CancelToken`] fired.
    Cancelled,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Exhausted(r) => write!(f, "{r}"),
            Interrupt::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for Interrupt {}

// ---------------------------------------------------------------------
// Spend
// ---------------------------------------------------------------------

/// How much of the envelope a computation actually used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Spend {
    /// Abstract steps charged.
    pub steps: u64,
    /// Wall-clock time from meter creation to the last observation.
    pub elapsed: Duration,
    /// Peak memory-proxy units charged.
    pub peak_memory: u64,
    /// Shared-cache hits observed (e.g. the concurrent subsumption
    /// cache); 0 when the computation consulted no shared cache.
    pub cache_hits: u64,
    /// Shared-cache misses observed.
    pub cache_misses: u64,
    /// Supervised retries: panicking tasks that were re-executed. A
    /// retried attempt's charges are rolled back, so retries never
    /// inflate `steps`.
    pub retries: u64,
    /// Tasks quarantined after exhausting their retry budget — holes
    /// in the result that the caller must treat as undecided.
    pub quarantined: u64,
}

impl Spend {
    /// Fold another spend into this one (steps/cache counts add,
    /// elapsed adds, peak memory takes the max) — for aggregating
    /// per-worker spends into a service total.
    pub fn absorb(&mut self, other: &Spend) {
        self.steps = self.steps.saturating_add(other.steps);
        self.elapsed += other.elapsed;
        self.peak_memory = self.peak_memory.max(other.peak_memory);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.retries = self.retries.saturating_add(other.retries);
        self.quarantined = self.quarantined.saturating_add(other.quarantined);
    }
}

impl fmt::Display for Spend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps in {:.1}ms",
            self.steps,
            self.elapsed.as_secs_f64() * 1e3
        )?;
        if self.peak_memory > 0 {
            write!(f, ", {} mem units", self.peak_memory)?;
        }
        if self.cache_hits > 0 || self.cache_misses > 0 {
            write!(f, ", cache {}/{} hit", self.cache_hits, self.cache_hits + self.cache_misses)?;
        }
        if self.retries > 0 {
            write!(f, ", {} retried", self.retries)?;
        }
        if self.quarantined > 0 {
            write!(f, ", {} quarantined", self.quarantined)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Meter
// ---------------------------------------------------------------------

/// The mutable spend tracker an engine threads through its inner loop.
///
/// `charge(n)` is the one call sites make; it is O(1) and only touches
/// the clock / cancel flag every [`CHECK_INTERVAL`] steps. Once a
/// meter has interrupted it stays interrupted: subsequent charges
/// return the same [`Interrupt`], so engines can unwind lazily.
#[derive(Debug, Clone)]
pub struct Meter {
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    max_memory: Option<u64>,
    cancel: Option<CancelToken>,
    fault: Option<FaultPlan>,
    injector: Option<Arc<FaultInjector>>,
    fault_rng: u64,
    started: Instant,
    steps: u64,
    memory: u64,
    peak_memory: u64,
    next_check: u64,
    tripped: Option<Interrupt>,
    cache_hits: u64,
    cache_misses: u64,
    /// Present on worker meters from [`SharedBudget::worker_meter`]:
    /// step/memory charges drain the shared pool instead of the local
    /// limits, and interrupts propagate through it.
    shared: Option<Arc<SharedLedger>>,
    /// Where spans and metric updates from this meter land. Disabled
    /// tracers make every recording call a single atomic load.
    tracer: obs::Tracer,
}

impl Meter {
    fn new(budget: &Budget) -> Self {
        let started = Instant::now();
        Meter {
            max_steps: budget.max_steps,
            deadline: budget.max_duration.map(|d| started + d),
            max_memory: budget.max_memory,
            cancel: budget.cancel.clone(),
            fault: budget.fault.clone(),
            injector: budget.injector(),
            fault_rng: budget.fault.as_ref().map(|f| f.seed).unwrap_or(0),
            started,
            steps: 0,
            memory: 0,
            peak_memory: 0,
            next_check: 0,
            tripped: None,
            cache_hits: 0,
            cache_misses: 0,
            shared: None,
            tracer: budget.tracer(),
        }
    }

    /// A meter with no limits — for legacy call paths that predate
    /// governance.
    pub fn unlimited() -> Self {
        Meter::new(&Budget::unlimited())
    }

    /// Charge `n` abstract steps. Returns the interrupt once any
    /// envelope wall is hit; the same interrupt is returned for every
    /// later charge.
    #[inline]
    pub fn charge(&mut self, n: u64) -> Result<(), Interrupt> {
        if let Some(i) = self.tripped {
            return Err(i);
        }
        self.steps = self.steps.saturating_add(n);
        // `fault_step` is the coordinate deterministic fault plans fire
        // against: the worker-local step count for private meters, the
        // pooled total for shared ones.
        let mut fault_step = self.steps;
        if let Some(ledger) = &self.shared {
            match ledger.charge(n) {
                Ok(total) => fault_step = total,
                Err(i) => return self.trip(i),
            }
        } else if let Some(max) = self.max_steps {
            if self.steps > max {
                return self.trip(Interrupt::Exhausted(ExhaustionReason::Steps));
            }
        }
        if let Some(plan) = self.fault.clone() {
            if plan.should_fail(fault_step, &mut self.fault_rng) {
                return self.trip(Interrupt::Exhausted(ExhaustionReason::FaultInjected));
            }
        }
        if self.steps >= self.next_check {
            self.next_check = self.steps + CHECK_INTERVAL;
            if let Some(tok) = &self.cancel {
                if tok.is_cancelled() {
                    return self.trip(Interrupt::Cancelled);
                }
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    return self.trip(Interrupt::Exhausted(ExhaustionReason::Deadline));
                }
            }
        }
        Ok(())
    }

    /// Charge `n` memory-proxy units (engine-defined allocation unit).
    #[inline]
    pub fn charge_memory(&mut self, n: u64) -> Result<(), Interrupt> {
        if let Some(i) = self.tripped {
            return Err(i);
        }
        self.memory = self.memory.saturating_add(n);
        self.peak_memory = self.peak_memory.max(self.memory);
        if let Some(ledger) = &self.shared {
            if let Err(i) = ledger.charge_memory(n) {
                return self.trip(i);
            }
        } else if let Some(max) = self.max_memory {
            if self.memory > max {
                return self.trip(Interrupt::Exhausted(ExhaustionReason::Memory));
            }
        }
        Ok(())
    }

    /// Release `n` memory-proxy units (peak is retained in [`Spend`]).
    #[inline]
    pub fn release_memory(&mut self, n: u64) {
        self.memory = self.memory.saturating_sub(n);
        if let Some(ledger) = &self.shared {
            ledger.release_memory(n);
        }
    }

    /// Force an immediate deadline/cancellation check regardless of
    /// the check interval — for coarse loops that charge rarely.
    pub fn checkpoint(&mut self) -> Result<(), Interrupt> {
        self.next_check = 0;
        self.charge(0)
    }

    /// A named fault-injection site. No-op (a single `Option` check)
    /// unless a [`FaultInjector`] schedule is attached to the budget or
    /// the process. When this arrival is scheduled to fault:
    ///
    /// * [`FaultKind::Panic`] unwinds with the tagged injected-panic
    ///   message (the executor's supervisor catches and retries);
    /// * [`FaultKind::Cancel`] trips the meter as
    ///   [`Interrupt::Cancelled`];
    /// * [`FaultKind::Trip`] trips it as
    ///   [`ExhaustionReason::FaultInjected`];
    /// * [`FaultKind::Poison`] is reported back (`Ok(Some(Poison))`) —
    ///   poisoning is consumed by storage sites, which corrupt the
    ///   entry being written so integrity checks can catch it.
    #[inline]
    pub fn fault_point(
        &mut self,
        site: &'static str,
    ) -> Result<Option<FaultKind>, Interrupt> {
        let Some(injector) = &self.injector else {
            return Ok(None);
        };
        match injector.arrive(site) {
            None => Ok(None),
            Some(FaultKind::Poison) => Ok(Some(FaultKind::Poison)),
            Some(FaultKind::Panic) => fault::injected_panic(site),
            Some(FaultKind::Cancel) => self.trip(Interrupt::Cancelled).map(|_| None),
            Some(FaultKind::Trip) => self
                .trip(Interrupt::Exhausted(ExhaustionReason::FaultInjected))
                .map(|_| None),
        }
    }

    /// The fault schedule this meter consults, if any.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Snapshot the meter's charge counters at the start of a
    /// supervised attempt, so a panicking attempt can be rolled back
    /// with [`rollback_to`](Self::rollback_to) and the eventual
    /// successful attempt charges exactly once.
    pub fn mark(&self) -> AttemptMark {
        AttemptMark {
            steps: self.steps,
            memory: self.memory,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
        }
    }

    /// Roll the meter's charges back to `mark`, refunding the shared
    /// ledger for the steps and memory the failed attempt drained.
    /// Peak memory is a high-water mark and is deliberately retained;
    /// a trip that already happened is never undone (the envelope was
    /// genuinely exceeded, even if by wasted work).
    pub fn rollback_to(&mut self, mark: &AttemptMark) {
        let steps_delta = self.steps.saturating_sub(mark.steps);
        let memory_delta = self.memory.saturating_sub(mark.memory);
        self.steps = mark.steps;
        self.memory = mark.memory;
        self.cache_hits = mark.cache_hits;
        self.cache_misses = mark.cache_misses;
        // Re-arm the interval check so the next charge re-examines the
        // clock and cancel flag promptly after the disruption.
        self.next_check = 0;
        if let Some(ledger) = &self.shared {
            ledger.refund(steps_delta);
            ledger.release_memory(memory_delta);
        }
    }

    fn trip(&mut self, i: Interrupt) -> Result<(), Interrupt> {
        // Publish to siblings first; an earlier trip by another worker
        // wins, so every meter in the pool reports the same interrupt.
        let i = match &self.shared {
            Some(ledger) => ledger.trip(i),
            None => i,
        };
        self.tripped = Some(i);
        Err(i)
    }

    /// Record a subsumption-cache hit (surfaced in [`Spend`] and, when
    /// tracing, the `guard.cache.hit` counter).
    #[inline]
    pub fn note_cache_hit(&mut self) {
        self.cache_hits = self.cache_hits.saturating_add(1);
        self.tracer.add("guard.cache.hit", 1);
    }

    /// Record a subsumption-cache miss (surfaced in [`Spend`] and,
    /// when tracing, the `guard.cache.miss` counter).
    #[inline]
    pub fn note_cache_miss(&mut self) {
        self.cache_misses = self.cache_misses.saturating_add(1);
        self.tracer.add("guard.cache.miss", 1);
    }

    /// The tracer this meter records to.
    pub fn tracer(&self) -> &obs::Tracer {
        &self.tracer
    }

    /// Open an observability span (no-op unless tracing is enabled).
    /// The returned guard is independent of the meter's borrow, so
    /// engines can hold it across further `&mut meter` calls.
    #[inline]
    pub fn span(&self, name: &'static str) -> obs::Span {
        self.tracer.span(name)
    }

    /// Bump an observability counter (no-op unless tracing is
    /// enabled). Purely observational: never touches the ledger.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        self.tracer.add(name, n);
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Has this meter already interrupted?
    pub fn interrupted(&self) -> Option<Interrupt> {
        self.tripped
    }

    /// Snapshot the spend so far.
    pub fn spend(&self) -> Spend {
        Spend {
            steps: self.steps,
            elapsed: self.started.elapsed(),
            peak_memory: self.peak_memory,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            ..Default::default()
        }
    }
}

/// A snapshot of a [`Meter`]'s charge counters taken by
/// [`Meter::mark`] at the start of a supervised attempt; consumed by
/// [`Meter::rollback_to`] when the attempt panics, so retried work is
/// never double-charged.
#[derive(Debug, Clone, Copy)]
pub struct AttemptMark {
    steps: u64,
    memory: u64,
    cache_hits: u64,
    cache_misses: u64,
}

// ---------------------------------------------------------------------
// Governed
// ---------------------------------------------------------------------

/// The outcome of a budgeted computation.
///
/// `Exhausted` and `Cancelled` carry whatever partial result the
/// engine could truthfully report (e.g. the subsumptions proved so
/// far, the term as far as it was normalized); `None` means no
/// meaningful partial state existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Governed<T> {
    /// The computation ran to completion.
    Completed(T),
    /// A resource limit was hit; `partial` is a truthful prefix of
    /// the answer where the engine has one.
    Exhausted {
        /// Which wall was hit.
        reason: ExhaustionReason,
        /// Partial result, if the engine could salvage one.
        partial: Option<T>,
    },
    /// The [`CancelToken`] fired.
    Cancelled {
        /// Partial result, if the engine could salvage one.
        partial: Option<T>,
    },
}

impl<T> Governed<T> {
    /// Build the non-completed outcome matching `interrupt`.
    pub fn from_interrupt(interrupt: Interrupt, partial: Option<T>) -> Self {
        match interrupt {
            Interrupt::Exhausted(reason) => Governed::Exhausted { reason, partial },
            Interrupt::Cancelled => Governed::Cancelled { partial },
        }
    }

    /// Did the computation complete?
    pub fn is_completed(&self) -> bool {
        matches!(self, Governed::Completed(_))
    }

    /// The complete result, if there is one.
    pub fn completed(self) -> Option<T> {
        match self {
            Governed::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// The best available result: complete or partial.
    pub fn into_partial(self) -> Option<T> {
        match self {
            Governed::Completed(v) => Some(v),
            Governed::Exhausted { partial, .. } | Governed::Cancelled { partial } => partial,
        }
    }

    /// Borrow the best available result: complete or partial.
    pub fn as_partial(&self) -> Option<&T> {
        match self {
            Governed::Completed(v) => Some(v),
            Governed::Exhausted { partial, .. } | Governed::Cancelled { partial } => {
                partial.as_ref()
            }
        }
    }

    /// Map the carried value (complete and partial alike).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Governed<U> {
        match self {
            Governed::Completed(v) => Governed::Completed(f(v)),
            Governed::Exhausted { reason, partial } => Governed::Exhausted {
                reason,
                partial: partial.map(f),
            },
            Governed::Cancelled { partial } => Governed::Cancelled {
                partial: partial.map(f),
            },
        }
    }

    /// The complete result, panicking otherwise — for tests and for
    /// call sites that passed an unlimited budget.
    #[track_caller]
    pub fn expect_completed(self, msg: &str) -> T {
        match self {
            Governed::Completed(v) => v,
            Governed::Exhausted { reason, .. } => {
                panic!("{msg}: exhausted ({reason})")
            }
            Governed::Cancelled { .. } => panic!("{msg}: cancelled"),
        }
    }

    /// A one-word label for reports: `completed`, `exhausted`, or
    /// `cancelled`.
    pub fn status(&self) -> &'static str {
        match self {
            Governed::Completed(_) => "completed",
            Governed::Exhausted { .. } => "exhausted",
            Governed::Cancelled { .. } => "cancelled",
        }
    }
}

/// Convenience prelude: `use summa_guard::prelude::*;`.
pub mod prelude {
    pub use crate::obs::Tracer;
    pub use crate::{
        Budget, CancelToken, ExhaustionReason, FaultInjector, FaultKind, FaultPlan, Governed,
        Interrupt, Meter, SharedBudget, Spend,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_budget_pools_steps_across_meters() {
        let shared = Budget::new().with_steps(100).share();
        let mut a = shared.worker_meter();
        let mut b = shared.worker_meter();
        for _ in 0..50 {
            a.charge(1).expect("pool has room");
        }
        for _ in 0..50 {
            b.charge(1).expect("pool has room");
        }
        // The pool of 100 is drained even though each worker only
        // charged 50 locally.
        assert_eq!(
            b.charge(1),
            Err(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
        assert_eq!(
            shared.interrupted(),
            Some(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
        assert_eq!(shared.spend().steps, 101);
    }

    #[test]
    fn shared_trip_propagates_to_sibling_meters() {
        let shared = Budget::new().with_steps(10).share();
        let mut a = shared.worker_meter();
        let mut b = shared.worker_meter();
        b.charge(1).expect("fresh");
        assert!(a.charge(100).is_err());
        // Sibling b finds out at its next charge, even charge(0).
        assert_eq!(
            b.charge(0),
            Err(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
    }

    #[test]
    fn shared_budget_pools_memory() {
        let shared = Budget::new().with_memory(100).share();
        let mut a = shared.worker_meter();
        let mut b = shared.worker_meter();
        a.charge_memory(60).expect("fits");
        assert_eq!(
            b.charge_memory(60),
            Err(Interrupt::Exhausted(ExhaustionReason::Memory))
        );
        assert!(shared.spend().peak_memory >= 100);
    }

    #[test]
    fn one_shot_fault_fires_in_exactly_one_clone() {
        let plan = FaultPlan::fail_once_at_step(5);
        let shared = Budget::new().with_fault(plan.clone()).share();
        let mut a = shared.worker_meter();
        // Global steps pass 5: the shared fault fires once.
        let mut fired = 0;
        for _ in 0..10 {
            if a.charge(1).is_err() {
                fired += 1;
                break;
            }
        }
        assert_eq!(fired, 1);
        assert!(plan.fired());
        // A second meter cloned from the same plan never fires again.
        let budget = Budget::new().with_fault(plan.clone());
        let mut c = budget.meter();
        for _ in 0..100 {
            c.charge(1).expect("one-shot fault is spent");
        }
    }

    #[test]
    fn cache_counters_flow_into_spend() {
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        meter.note_cache_hit();
        meter.note_cache_hit();
        meter.note_cache_miss();
        let spend = meter.spend();
        assert_eq!(spend.cache_hits, 2);
        assert_eq!(spend.cache_misses, 1);
        let mut total = Spend::default();
        total.absorb(&spend);
        total.absorb(&spend);
        assert_eq!(total.cache_hits, 4);
        let shown = format!("{spend}");
        assert!(shown.contains("cache"), "display shows cache: {shown}");
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        for _ in 0..100_000 {
            meter.charge(1).expect("unlimited");
        }
        assert_eq!(meter.steps(), 100_000);
    }

    #[test]
    fn step_budget_trips_at_limit() {
        let budget = Budget::new().with_steps(10);
        let mut meter = budget.meter();
        for _ in 0..10 {
            meter.charge(1).expect("within budget");
        }
        assert_eq!(
            meter.charge(1),
            Err(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
        // Sticky: later charges keep failing the same way.
        assert_eq!(
            meter.charge(1),
            Err(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
    }

    #[test]
    fn deadline_trips() {
        let budget = Budget::new().with_deadline(Duration::from_millis(1));
        let mut meter = budget.meter();
        std::thread::sleep(Duration::from_millis(5));
        let mut outcome = Ok(());
        for _ in 0..(CHECK_INTERVAL + 1) {
            outcome = meter.charge(1);
            if outcome.is_err() {
                break;
            }
        }
        assert_eq!(
            outcome,
            Err(Interrupt::Exhausted(ExhaustionReason::Deadline))
        );
    }

    #[test]
    fn memory_budget_trips_and_peak_is_tracked() {
        let budget = Budget::new().with_memory(100);
        let mut meter = budget.meter();
        meter.charge_memory(80).expect("fits");
        meter.release_memory(50);
        meter.charge_memory(60).expect("fits after release");
        assert_eq!(
            meter.charge_memory(50),
            Err(Interrupt::Exhausted(ExhaustionReason::Memory))
        );
        assert!(meter.spend().peak_memory >= 90);
    }

    #[test]
    fn cancel_token_trips() {
        let token = CancelToken::new();
        let budget = Budget::new().with_cancel(token.clone());
        let mut meter = budget.meter();
        meter.charge(1).expect("not yet cancelled");
        token.cancel();
        let mut outcome = Ok(());
        for _ in 0..(CHECK_INTERVAL + 1) {
            outcome = meter.charge(1);
            if outcome.is_err() {
                break;
            }
        }
        assert_eq!(outcome, Err(Interrupt::Cancelled));
    }

    #[test]
    fn fault_at_step_is_exact() {
        let budget = Budget::new().with_fault(FaultPlan::fail_at_step(5));
        let mut meter = budget.meter();
        for _ in 0..4 {
            meter.charge(1).expect("before fault point");
        }
        assert_eq!(
            meter.charge(1),
            Err(Interrupt::Exhausted(ExhaustionReason::FaultInjected))
        );
    }

    #[test]
    fn probabilistic_fault_is_deterministic() {
        let run = |seed| {
            let budget = Budget::new().with_fault(FaultPlan::probabilistic(0.05, seed));
            let mut meter = budget.meter();
            let mut at = None;
            for i in 0..10_000u64 {
                if meter.charge(1).is_err() {
                    at = Some(i);
                    break;
                }
            }
            at
        };
        assert_eq!(run(7), run(7));
        assert!(run(7).is_some(), "p=0.05 over 10k steps fires w.h.p.");
    }

    #[test]
    fn governed_helpers() {
        let g: Governed<u32> = Governed::Completed(3);
        assert!(g.is_completed());
        assert_eq!(g.clone().completed(), Some(3));
        assert_eq!(g.map(|x| x + 1), Governed::Completed(4));

        let e = Governed::from_interrupt(
            Interrupt::Exhausted(ExhaustionReason::Steps),
            Some(vec![1, 2]),
        );
        assert_eq!(e.status(), "exhausted");
        assert_eq!(e.into_partial(), Some(vec![1, 2]));

        let c: Governed<u32> = Governed::from_interrupt(Interrupt::Cancelled, None);
        assert_eq!(c.status(), "cancelled");
        assert_eq!(c.as_partial(), None);
    }

    #[test]
    fn absorb_saturates_step_addition() {
        let mut total = Spend {
            steps: u64::MAX - 5,
            ..Default::default()
        };
        total.absorb(&Spend {
            steps: 100,
            ..Default::default()
        });
        assert_eq!(total.steps, u64::MAX, "near-overflow clamps, no wrap");
    }

    #[test]
    fn absorb_merges_peak_memory_by_max() {
        let mut total = Spend {
            peak_memory: 40,
            ..Default::default()
        };
        total.absorb(&Spend {
            peak_memory: 70,
            ..Default::default()
        });
        assert_eq!(total.peak_memory, 70, "higher peak wins");
        total.absorb(&Spend {
            peak_memory: 10,
            ..Default::default()
        });
        assert_eq!(total.peak_memory, 70, "lower peak does not regress");
    }

    #[test]
    fn absorb_accumulates_cache_and_elapsed() {
        let mut total = Spend::default();
        let worker = Spend {
            steps: 10,
            elapsed: Duration::from_millis(3),
            peak_memory: 5,
            cache_hits: 2,
            cache_misses: 7,
            ..Default::default()
        };
        total.absorb(&worker);
        total.absorb(&worker);
        assert_eq!(total.steps, 20);
        assert_eq!(total.elapsed, Duration::from_millis(6));
        assert_eq!(total.cache_hits, 4);
        assert_eq!(total.cache_misses, 14);
        // Saturation on the cache counters too.
        let mut near = Spend {
            cache_hits: u64::MAX,
            cache_misses: u64::MAX,
            ..Default::default()
        };
        near.absorb(&worker);
        assert_eq!(near.cache_hits, u64::MAX);
        assert_eq!(near.cache_misses, u64::MAX);
    }

    #[test]
    fn spend_display_round_trips_every_populated_field() {
        let spend = Spend {
            steps: 1234,
            elapsed: Duration::from_millis(42),
            peak_memory: 99,
            cache_hits: 3,
            cache_misses: 1,
            retries: 2,
            quarantined: 1,
        };
        let shown = format!("{spend}");
        assert!(shown.contains("1234 steps"), "steps in {shown:?}");
        assert!(shown.contains("42.0ms"), "elapsed in {shown:?}");
        assert!(shown.contains("99 mem units"), "memory in {shown:?}");
        assert!(shown.contains("cache 3/4 hit"), "cache ratio in {shown:?}");
        assert!(shown.contains("2 retried"), "retries in {shown:?}");
        assert!(shown.contains("1 quarantined"), "quarantine in {shown:?}");
        // Sparse spends omit the optional clauses entirely.
        let bare = format!(
            "{}",
            Spend {
                steps: 7,
                ..Default::default()
            }
        );
        assert!(!bare.contains("mem units"));
        assert!(!bare.contains("cache"));
        assert!(!bare.contains("retried"));
        assert!(!bare.contains("quarantined"));
    }

    #[test]
    fn fault_point_trips_and_cancels_on_schedule() {
        let injector = Arc::new(
            FaultInjector::new(0)
                .with_fault_at("test.trip", 2, FaultKind::Trip)
                .with_fault_at("test.cancel", 1, FaultKind::Cancel),
        );
        let budget = Budget::unlimited().with_injector(Arc::clone(&injector));
        let mut meter = budget.meter();
        assert_eq!(meter.fault_point("test.trip"), Ok(None));
        assert_eq!(
            meter.fault_point("test.trip"),
            Err(Interrupt::Exhausted(ExhaustionReason::FaultInjected))
        );
        // The trip is sticky, like any other interrupt.
        assert!(meter.charge(1).is_err());

        let mut fresh = budget.meter();
        assert_eq!(fresh.fault_point("test.cancel"), Err(Interrupt::Cancelled));
        assert_eq!(injector.n_fired(), 2);
    }

    #[test]
    fn fault_point_panics_are_tagged_and_catchable() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let injector =
            Arc::new(FaultInjector::new(0).with_fault_at("test.panic", 1, FaultKind::Panic));
        let budget = Budget::unlimited().with_injector(injector);
        let mut meter = budget.meter();
        let err = catch_unwind(AssertUnwindSafe(|| meter.fault_point("test.panic"))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with(fault::INJECTED_PANIC_PREFIX));
        // The meter itself is untripped: a panic is a task failure, not
        // an envelope wall, and the supervisor decides what follows.
        assert_eq!(meter.charge(1), Ok(()));
    }

    #[test]
    fn rollback_refunds_private_and_shared_charges() {
        // Private meter.
        let budget = Budget::new().with_steps(100);
        let mut meter = budget.meter();
        meter.charge(10).expect("within budget");
        let mark = meter.mark();
        meter.charge(30).expect("within budget");
        meter.charge_memory(5).expect("no limit");
        meter.note_cache_hit();
        meter.rollback_to(&mark);
        assert_eq!(meter.spend().steps, 10);
        assert_eq!(meter.spend().cache_hits, 0);
        // The refunded headroom is genuinely usable again.
        meter.charge(90).expect("rollback refunded the envelope");

        // Shared ledger: the refund reaches the pool.
        let shared = Budget::new().with_steps(100).share();
        let mut a = shared.worker_meter();
        let mut b = shared.worker_meter();
        a.charge(10).expect("fits");
        let mark = a.mark();
        a.charge(80).expect("fits");
        a.rollback_to(&mark);
        assert_eq!(shared.spend().steps, 10);
        b.charge(90).expect("pool was refunded");
    }

    #[test]
    fn meter_records_to_the_budget_tracer() {
        let tracer = obs::Tracer::enabled();
        let budget = Budget::unlimited().with_tracer(tracer.clone());
        let mut meter = budget.meter();
        {
            let _s = meter.span("test.work");
            meter.charge(3).expect("unlimited");
            meter.count("test.units", 3);
        }
        meter.note_cache_hit();
        meter.note_cache_miss();
        assert_eq!(tracer.counter_value("test.units"), 3);
        assert_eq!(tracer.counter_value("guard.cache.hit"), 1);
        assert_eq!(tracer.counter_value("guard.cache.miss"), 1);
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "test.work");
        // Tracing is observation-only: the spend is exactly what the
        // charges dictated.
        assert_eq!(meter.spend().steps, 3);
    }

    #[test]
    fn shared_budget_propagates_tracer_to_workers() {
        let tracer = obs::Tracer::enabled();
        let shared = Budget::unlimited().with_tracer(tracer.clone()).share();
        let meter = shared.worker_meter();
        meter.count("worker.ticks", 2);
        shared.tracer().add("worker.ticks", 1);
        assert_eq!(tracer.counter_value("worker.ticks"), 3);
    }

    #[test]
    fn default_budget_uses_global_tracer() {
        // Without SUMMA_TRACE the global tracer is disabled, and the
        // instrumentation surface must be inert.
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        {
            let _s = meter.span("inert");
        }
        meter.note_cache_hit();
        assert_eq!(
            budget.tracer().is_enabled(),
            obs::Tracer::global().is_enabled()
        );
    }
}
