//! # summa-exec — a governed, scoped, work-stealing executor
//!
//! The paper's critiques are carried by worst-case-exponential grids of
//! *independent* cells: classification matrices, admission matrices,
//! isomorphism candidate sets, collapse sweeps. This crate spends the
//! hardware on those grids while keeping PR 1's resource governance
//! intact: every worker charges one [`SharedBudget`] envelope, so step
//! pools, deadlines, memory proxies, cancellation, and injected faults
//! all propagate cooperatively across threads, and a
//! [`Governed`] partial is assembled from whichever cells completed.
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies.** std::thread scoped spawns only — the
//!    workspace builds offline.
//! 2. **No `unsafe`.** Work items are read through a shared slice;
//!    results travel back as `(index, value)` pairs through the scoped
//!    join, and the pool assembles them *by index*, so output is
//!    byte-identical regardless of thread count or steal order.
//! 3. **Cooperative interruption.** A worker whose meter trips stops
//!    draining the queue; the trip is published through the shared
//!    ledger so every sibling stops at its next charge. Cells that
//!    never ran are simply absent from the partial.
//!
//! Work distribution is round-robin pre-seeding into per-worker deques
//! with stealing from the busiest sibling when a worker runs dry —
//! enough to level the wildly skewed cell costs a tableau grid
//! produces, without a scheduler thread.

use std::collections::VecDeque;
use std::sync::Mutex;

use summa_guard::{Budget, Governed, Interrupt, Meter, Spend};

/// Number of worker threads to use by default: the `SUMMA_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (and 1 when even that is unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SUMMA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// What came back from a parallel map: per-item slots (in input
/// order, `None` for cells the envelope ran out before deciding), the
/// pooled spend, and the first interrupt any worker hit.
#[derive(Debug)]
pub struct ParOutcome<R> {
    /// `results[i]` corresponds to `items[i]`; `None` means the cell
    /// was not decided before the envelope tripped.
    pub results: Vec<Option<R>>,
    /// Pooled steps/elapsed/peak plus summed per-worker cache
    /// counters.
    pub spend: Spend,
    /// The first interrupt any worker hit, if one did.
    pub interrupted: Option<Interrupt>,
}

impl<R> ParOutcome<R> {
    /// Did every cell complete with no interrupt?
    pub fn is_complete(&self) -> bool {
        self.interrupted.is_none() && self.results.iter().all(|r| r.is_some())
    }

    /// Fold into the standard [`Governed`] shape: `assemble` receives
    /// the per-item slots and builds the caller's result type,
    /// returning `None` when nothing truthful can be salvaged.
    pub fn into_governed<T>(
        self,
        assemble: impl FnOnce(Vec<Option<R>>) -> Option<T>,
    ) -> Governed<T> {
        match self.interrupted {
            None => match assemble(self.results) {
                Some(t) => Governed::Completed(t),
                None => Governed::Cancelled { partial: None },
            },
            Some(Interrupt::Exhausted(reason)) => Governed::Exhausted {
                reason,
                partial: assemble(self.results),
            },
            Some(Interrupt::Cancelled) => Governed::Cancelled {
                partial: assemble(self.results),
            },
        }
    }
}

/// Per-worker work queues with stealing. Indices only — the items
/// themselves stay in the caller's slice.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Round-robin pre-seeding: item `i` starts on worker `i % w`.
    /// Interleaving (rather than chunking) spreads the expensive
    /// region of a grid across workers even before any stealing.
    fn seed(n_items: usize, workers: usize) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for i in 0..n_items {
            deques[i % workers].push_back(i);
        }
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next index for worker `w`: own deque first, then steal from the
    /// *back* of the fullest sibling (halving contention on the
    /// victim's hot front). The flag reports whether the index was
    /// stolen — observability only, never control flow.
    fn next(&self, w: usize) -> Option<(usize, bool)> {
        if let Some(i) = self.deques[w].lock().expect("queue poisoned").pop_front() {
            return Some((i, false));
        }
        // Pick the currently longest sibling queue as the victim.
        let mut victim: Option<(usize, usize)> = None;
        for (v, dq) in self.deques.iter().enumerate() {
            if v == w {
                continue;
            }
            let len = dq.lock().expect("queue poisoned").len();
            if len > 0 && victim.map(|(_, best)| len > best).unwrap_or(true) {
                victim = Some((v, len));
            }
        }
        let (v, _) = victim?;
        self.deques[v]
            .lock()
            .expect("queue poisoned")
            .pop_back()
            .map(|i| (i, true))
    }
}

/// Parallel map with worker-local state.
///
/// `init(worker_id)` builds each worker's private scratch (a tableau,
/// a definition set — anything `!Sync` or needing `&mut`); `f` is
/// called as `f(&mut state, &mut meter, index, &items[index])` and
/// returns `Err` exactly when the meter interrupts, at which point the
/// worker stops draining and the interrupt is already published to its
/// siblings through the shared ledger.
///
/// With `threads <= 1` (or one item) everything runs inline on the
/// caller's thread — same code path, no spawns.
pub fn par_map_with<T, R, S, I, F>(
    items: &[T],
    budget: &Budget,
    threads: usize,
    init: I,
    f: F,
) -> ParOutcome<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &mut Meter, usize, &T) -> Result<R, Interrupt> + Sync,
{
    par_map_with_drain(items, budget, threads, init, f, |_, _| {})
}

/// [`par_map_with`] plus a per-worker teardown hook: after a worker
/// finishes draining (or trips), `drain(worker_id, state)` receives its
/// final state — the place to harvest worker-local statistics (e.g. a
/// reasoner's interner hit counts) that would otherwise be dropped on
/// the scope join. The hook runs on the worker's own thread, inside its
/// `exec.worker` span, before the park counter ticks.
pub fn par_map_with_drain<T, R, S, I, F, D>(
    items: &[T],
    budget: &Budget,
    threads: usize,
    init: I,
    f: F,
    drain: D,
) -> ParOutcome<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &mut Meter, usize, &T) -> Result<R, Interrupt> + Sync,
    D: Fn(usize, S) + Sync,
{
    let shared = budget.share();
    let workers = threads.max(1).min(items.len().max(1));
    let queues = StealQueues::seed(items.len(), workers);

    let run_worker = |w: usize| -> (Vec<(usize, R)>, Spend) {
        let tracer = shared.tracer().clone();
        let _worker_span = tracer.span("exec.worker").with("worker", w);
        let mut state = init(w);
        let mut meter = shared.worker_meter();
        let mut done: Vec<(usize, R)> = Vec::new();
        while let Some((idx, stolen)) = queues.next(w) {
            tracer.add("exec.task", 1);
            if stolen {
                tracer.add("exec.steal", 1);
            }
            let mut task_span = tracer.span("exec.task").with("idx", idx);
            if stolen {
                task_span.record("stolen", true);
            }
            match f(&mut state, &mut meter, idx, &items[idx]) {
                Ok(r) => done.push((idx, r)),
                // The meter is sticky and the trip is already on the
                // ledger; stop draining.
                Err(_) => {
                    task_span.record("interrupted", true);
                    break;
                }
            }
        }
        // Worker ran out of local and stealable work (or tripped);
        // hand the final state to the caller's harvest hook.
        drain(w, state);
        tracer.add("exec.park", 1);
        (done, meter.spend())
    };

    let mut worker_outputs: Vec<(Vec<(usize, R)>, Spend)> = Vec::with_capacity(workers);
    if workers <= 1 {
        worker_outputs.push(run_worker(0));
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || run_worker(w)))
                .collect();
            for h in handles {
                match h.join() {
                    Ok(out) => worker_outputs.push(out),
                    // A panicking worker loses its cells; the grid
                    // degrades to a partial rather than poisoning the
                    // caller.
                    Err(_) => worker_outputs.push((Vec::new(), Spend::default())),
                }
            }
        });
    }

    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    // Pooled steps / wall-clock elapsed / peak come from the shared
    // envelope; per-worker cache counters are summed on top.
    let mut spend = shared.spend();
    for (cells, wspend) in worker_outputs {
        spend.cache_hits = spend.cache_hits.saturating_add(wspend.cache_hits);
        spend.cache_misses = spend.cache_misses.saturating_add(wspend.cache_misses);
        for (i, r) in cells {
            results[i] = Some(r);
        }
    }

    ParOutcome {
        results,
        spend,
        interrupted: shared.interrupted(),
    }
}

/// [`par_map_with`] without worker-local state.
pub fn par_map<T, R, F>(items: &[T], budget: &Budget, threads: usize, f: F) -> ParOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut Meter, usize, &T) -> Result<R, Interrupt> + Sync,
{
    par_map_with(items, budget, threads, |_| (), |_, m, i, t| f(m, i, t))
}

/// Map over an `rows × cols` grid in row-major order. `f` receives
/// `(state, meter, row, col)`; the outcome's `results` are row-major
/// (`results[r * cols + c]`).
pub fn par_cells<R, S, I, F>(
    rows: usize,
    cols: usize,
    budget: &Budget,
    threads: usize,
    init: I,
    f: F,
) -> ParOutcome<R>
where
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &mut Meter, usize, usize) -> Result<R, Interrupt> + Sync,
{
    let cells: Vec<(usize, usize)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .collect();
    par_map_with(&cells, budget, threads, init, |s, m, _, &(r, c)| {
        f(s, m, r, c)
    })
}

pub mod prelude {
    pub use crate::{
        default_threads, par_cells, par_map, par_map_with, par_map_with_drain, ParOutcome,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use summa_guard::{CancelToken, ExhaustionReason, FaultPlan};

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<Option<u64>> = items.iter().map(|x| Some(x * x)).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map(&items, &Budget::unlimited(), threads, |m, _, &x| {
                m.charge(1)?;
                Ok(x * x)
            });
            assert!(out.is_complete());
            assert_eq!(out.results, expected, "threads = {threads}");
            assert_eq!(out.spend.steps, 100);
        }
    }

    #[test]
    fn starved_pool_yields_partial_with_reason() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, &Budget::new().with_steps(50), 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert_eq!(
            out.interrupted,
            Some(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
        let decided = out.results.iter().flatten().count();
        assert!(decided <= 50, "at most one cell per pooled step");
        // Every decided cell is truthful.
        for (i, r) in out.results.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i as u64);
            }
        }
    }

    #[test]
    fn cancellation_stops_all_workers() {
        let token = CancelToken::new();
        let budget = Budget::new().with_cancel(token.clone());
        token.cancel();
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            // checkpoint() forces the token check regardless of the
            // check interval.
            m.checkpoint()?;
            Ok(x)
        });
        assert_eq!(out.interrupted, Some(Interrupt::Cancelled));
        assert!(!out.is_complete());
    }

    #[test]
    fn one_shot_fault_in_one_worker_degrades_cleanly() {
        let budget = Budget::new().with_fault(FaultPlan::fail_once_at_step(20));
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert_eq!(
            out.interrupted,
            Some(Interrupt::Exhausted(ExhaustionReason::FaultInjected))
        );
        let decided = out.results.iter().flatten().count();
        assert!(decided < 64, "the fault cost at least one cell");
        assert!(decided >= 1, "siblings decided cells before the fault");
    }

    #[test]
    fn worker_local_state_is_per_worker() {
        let items: Vec<u64> = (0..200).collect();
        let out = par_map_with(
            &items,
            &Budget::unlimited(),
            4,
            |w| (w, 0u64),
            |(_, count), m, _, &x| {
                m.charge(1)?;
                *count += 1;
                Ok(x + 1)
            },
        );
        assert!(out.is_complete());
        assert_eq!(
            out.results.iter().flatten().sum::<u64>(),
            (1..=200).sum::<u64>()
        );
    }

    #[test]
    fn drain_hook_sees_every_workers_final_state() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let items: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        let drained = AtomicU64::new(0);
        let out = par_map_with_drain(
            &items,
            &Budget::unlimited(),
            4,
            |_| 0u64,
            |count, m, _, &x| {
                m.charge(1)?;
                *count += x;
                Ok(x)
            },
            |_, count| {
                total.fetch_add(count, Ordering::Relaxed);
                drained.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(out.is_complete());
        // The per-worker partial sums reassemble the whole workload:
        // no worker's final state was dropped on the join.
        assert_eq!(total.load(Ordering::Relaxed), (0..100).sum::<u64>());
        assert_eq!(drained.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn par_cells_is_row_major() {
        let out = par_cells(3, 4, &Budget::unlimited(), 2, |_| (), |_, m, r, c| {
            m.charge(1)?;
            Ok(r * 10 + c)
        });
        assert!(out.is_complete());
        assert_eq!(out.results[4 + 2], Some(12));
        assert_eq!(out.results.len(), 12);
    }

    #[test]
    fn into_governed_maps_interrupts() {
        let items: Vec<u64> = (0..10).collect();
        let out = par_map(&items, &Budget::new().with_steps(3), 2, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        let governed = out.into_governed(|slots| {
            let decided: Vec<u64> = slots.into_iter().flatten().collect();
            if decided.is_empty() {
                None
            } else {
                Some(decided)
            }
        });
        match governed {
            Governed::Exhausted {
                reason: ExhaustionReason::Steps,
                partial: Some(p),
            } => assert!(!p.is_empty()),
            other => panic!("expected exhausted partial, got {other:?}"),
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_emits_spans_and_counters_when_traced() {
        use summa_guard::obs::Tracer;
        let tracer = Tracer::enabled();
        let budget = Budget::unlimited().with_tracer(tracer.clone());
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert!(out.is_complete());
        assert_eq!(tracer.counter_value("exec.task"), 64);
        assert_eq!(tracer.counter_value("exec.park"), 4);
        let snap = tracer.snapshot();
        let tasks: Vec<_> = snap.spans.iter().filter(|s| s.name == "exec.task").collect();
        assert_eq!(tasks.len(), 64);
        assert!(tasks.iter().all(|s| s.depth >= 1), "tasks nest in workers");
        let workers = snap.spans.iter().filter(|s| s.name == "exec.worker").count();
        assert_eq!(workers, 4);
    }

    #[test]
    fn tracing_does_not_change_results_or_spend() {
        let items: Vec<u64> = (0..128).collect();
        let run = |budget: &Budget| {
            par_map(items.as_slice(), budget, 4, |m, _, &x| {
                m.charge(1)?;
                Ok(x.wrapping_mul(x))
            })
        };
        let plain = run(&Budget::unlimited());
        let traced = run(&Budget::unlimited().with_tracer(summa_guard::obs::Tracer::enabled()));
        assert_eq!(plain.results, traced.results);
        assert_eq!(plain.spend.steps, traced.spend.steps);
        assert_eq!(plain.spend.cache_hits, traced.spend.cache_hits);
    }
}
