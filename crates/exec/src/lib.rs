//! # summa-exec — a governed, supervised, work-stealing executor
//!
//! The paper's critiques are carried by worst-case-exponential grids of
//! *independent* cells: classification matrices, admission matrices,
//! isomorphism candidate sets, collapse sweeps. This crate spends the
//! hardware on those grids while keeping PR 1's resource governance
//! intact: every worker charges one [`SharedBudget`] envelope, so step
//! pools, deadlines, memory proxies, cancellation, and injected faults
//! all propagate cooperatively across threads, and a
//! [`Governed`] partial is assembled from whichever cells completed.
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies.** std::thread scoped spawns only — the
//!    workspace builds offline.
//! 2. **No `unsafe`.** Work items are read through a shared slice;
//!    results are published *as they complete* into per-index slots,
//!    so output is byte-identical regardless of thread count or steal
//!    order — and a worker that dies after deciding a cell has already
//!    banked it.
//! 3. **Cooperative interruption.** A worker whose meter trips stops
//!    draining the queue; the trip is published through the shared
//!    ledger so every sibling stops at its next charge. Cells that
//!    never ran are simply absent from the partial.
//! 4. **Supervised failure.** Every cell runs under `catch_unwind`:
//!    a panicking task is retried up to [`MAX_ATTEMPTS`] times with its
//!    meter charges rolled back (no double-billing), then quarantined
//!    and reported in the partial. A panicking *worker* forfeits only
//!    its thread: siblings steal its queue, and a post-join recovery
//!    sweep re-runs whatever was in flight, so no cell is ever
//!    silently dropped. Queue mutexes recover from poisoning instead
//!    of cascading the panic across the pool.
//!
//! Work distribution is round-robin pre-seeding into per-worker deques
//! with stealing from the busiest sibling when a worker runs dry —
//! enough to level the wildly skewed cell costs a tableau grid
//! produces, without a scheduler thread.
//!
//! [`SharedBudget`]: summa_guard::SharedBudget

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use summa_guard::{Budget, ExhaustionReason, Governed, Interrupt, Meter, Spend};

/// Number of worker threads to use by default: the `SUMMA_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (and 1 when even that is unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SUMMA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Total attempts a cell gets before quarantine: one initial run plus
/// two supervised retries. Retried attempts have their meter charges
/// rolled back, so a cell that eventually succeeds costs exactly what
/// it would have cost in a panic-free run.
pub const MAX_ATTEMPTS: u32 = 3;

/// Lock a mutex, recovering the data if a previous holder panicked.
/// Queue and slot contents are plain indices/values that are valid at
/// every point a panic can occur (no mid-update invariants), so the
/// poison flag carries no information here.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a caught panic payload for quarantine reports.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic backoff between retry attempts: a small, seeded
/// number of `yield_now` calls derived from (seed, index, attempt), so
/// chaos runs replay identically under a fixed `SUMMA_FAULT_SEED`.
fn backoff(seed: u64, idx: u64, attempt: u64) {
    let mut z = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (attempt << 48);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    for _ in 0..((z ^ (z >> 31)) % 4) {
        std::thread::yield_now();
    }
}

/// A cell that panicked on every one of its [`MAX_ATTEMPTS`] attempts
/// and was given up on. Its result slot stays `None`; the record keeps
/// the failure auditable instead of silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Index into the input slice.
    pub index: usize,
    /// How many attempts were made before giving up.
    pub attempts: u32,
    /// The captured panic message of the final attempt.
    pub panic: String,
}

/// What came back from a parallel map: per-item slots (in input
/// order, `None` for cells the envelope ran out before deciding), the
/// pooled spend, the first interrupt any worker hit, and any cells
/// quarantined after repeated panics.
#[derive(Debug)]
pub struct ParOutcome<R> {
    /// `results[i]` corresponds to `items[i]`; `None` means the cell
    /// was not decided before the envelope tripped (or was
    /// quarantined).
    pub results: Vec<Option<R>>,
    /// Pooled steps/elapsed/peak plus summed per-worker cache
    /// counters, retry and quarantine totals.
    pub spend: Spend,
    /// The first interrupt any worker hit, if one did.
    pub interrupted: Option<Interrupt>,
    /// Cells that kept panicking and were given up on; always
    /// reported, never silently dropped.
    pub quarantined: Vec<Quarantined>,
}

impl<R> ParOutcome<R> {
    /// Did every cell complete with no interrupt and no quarantine?
    pub fn is_complete(&self) -> bool {
        self.interrupted.is_none()
            && self.quarantined.is_empty()
            && self.results.iter().all(|r| r.is_some())
    }

    /// Fold into the standard [`Governed`] shape: `assemble` receives
    /// the per-item slots and builds the caller's result type,
    /// returning `None` when nothing truthful can be salvaged.
    ///
    /// A run with quarantined cells but no resource interrupt is an
    /// `Exhausted { reason: TaskFailure }` partial: the envelope had
    /// room, but some cells could not be computed.
    pub fn into_governed<T>(
        self,
        assemble: impl FnOnce(Vec<Option<R>>) -> Option<T>,
    ) -> Governed<T> {
        match self.interrupted {
            None if self.quarantined.is_empty() => match assemble(self.results) {
                Some(t) => Governed::Completed(t),
                None => Governed::Cancelled { partial: None },
            },
            None => Governed::Exhausted {
                reason: ExhaustionReason::TaskFailure,
                partial: assemble(self.results),
            },
            Some(Interrupt::Exhausted(reason)) => Governed::Exhausted {
                reason,
                partial: assemble(self.results),
            },
            Some(Interrupt::Cancelled) => Governed::Cancelled {
                partial: assemble(self.results),
            },
        }
    }
}

/// Per-worker work queues with stealing. Indices only — the items
/// themselves stay in the caller's slice.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Round-robin pre-seeding: item `i` starts on worker `i % w`.
    /// Interleaving (rather than chunking) spreads the expensive
    /// region of a grid across workers even before any stealing.
    fn seed(n_items: usize, workers: usize) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for i in 0..n_items {
            deques[i % workers].push_back(i);
        }
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next index for worker `w`: own deque first, then steal from the
    /// *back* of the fullest sibling (halving contention on the
    /// victim's hot front). The flag reports whether the index was
    /// stolen — observability only, never control flow.
    fn next(&self, w: usize) -> Option<(usize, bool)> {
        if let Some(i) = lock_recover(&self.deques[w]).pop_front() {
            return Some((i, false));
        }
        // Pick the currently longest sibling queue as the victim.
        let mut victim: Option<(usize, usize)> = None;
        for (v, dq) in self.deques.iter().enumerate() {
            if v == w {
                continue;
            }
            let len = lock_recover(dq).len();
            if len > 0 && victim.map(|(_, best)| len > best).unwrap_or(true) {
                victim = Some((v, len));
            }
        }
        let (v, _) = victim?;
        lock_recover(&self.deques[v]).pop_back().map(|i| (i, true))
    }

    /// Empty every deque and return the leftover indices — used by the
    /// post-join recovery sweep after a worker died.
    fn drain_all(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for dq in &self.deques {
            out.extend(lock_recover(dq).drain(..));
        }
        out
    }
}

/// Parallel map with worker-local state.
///
/// `init(worker_id)` builds each worker's private scratch (a tableau,
/// a definition set — anything `!Sync` or needing `&mut`); `f` is
/// called as `f(&mut state, &mut meter, index, &items[index])` and
/// returns `Err` exactly when the meter interrupts, at which point the
/// worker stops draining and the interrupt is already published to its
/// siblings through the shared ledger.
///
/// With `threads <= 1` (or one item) everything runs inline on the
/// caller's thread — same code path, no spawns.
pub fn par_map_with<T, R, S, I, F>(
    items: &[T],
    budget: &Budget,
    threads: usize,
    init: I,
    f: F,
) -> ParOutcome<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &mut Meter, usize, &T) -> Result<R, Interrupt> + Sync,
{
    par_map_with_drain(items, budget, threads, init, f, |_, _| {})
}

/// [`par_map_with`] plus a per-worker teardown hook: after a worker
/// finishes draining (or trips), `drain(worker_id, state)` receives its
/// final state — the place to harvest worker-local statistics (e.g. a
/// reasoner's interner hit counts) that would otherwise be dropped on
/// the scope join. The hook runs on the worker's own thread, inside its
/// `exec.worker` span, before the park counter ticks. A worker that
/// dies by panic forfeits its hook (its scratch may be corrupt); the
/// recovery sweep that re-runs its cells gets a hook call of its own,
/// under worker id 0.
pub fn par_map_with_drain<T, R, S, I, F, D>(
    items: &[T],
    budget: &Budget,
    threads: usize,
    init: I,
    f: F,
    drain: D,
) -> ParOutcome<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &mut Meter, usize, &T) -> Result<R, Interrupt> + Sync,
    D: Fn(usize, S) + Sync,
{
    let shared = budget.share();
    let workers = threads.max(1).min(items.len().max(1));
    let queues = StealQueues::seed(items.len(), workers);

    // Results are published into per-index slots the moment a cell
    // completes, not carried home through the scope join — a worker
    // that dies later has already banked everything it decided.
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    // Per-cell attempt counts survive worker death and hand-offs
    // (sibling steal, recovery sweep), so the quarantine limit is
    // per cell, not per worker.
    let attempts: Vec<AtomicU32> = (0..items.len()).map(|_| AtomicU32::new(0)).collect();
    // Which index each worker is currently running; `usize::MAX` when
    // parked between cells. Read after the join to recover the cell a
    // dead worker had in flight.
    let inflight: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let quarantine: Mutex<Vec<Quarantined>> = Mutex::new(Vec::new());
    let retries = AtomicU64::new(0);
    let backoff_seed = shared
        .injector()
        .map(|inj| inj.seed())
        .unwrap_or(0x005E_ED0F_5A17);

    // Run one cell under supervision: catch panics, roll the meter
    // back to the attempt mark (so retries never double-charge),
    // rebuild the worker scratch (it may be mid-update), retry with
    // deterministic backoff, and quarantine after MAX_ATTEMPTS.
    // Returns `Err` only for meter interrupts — a quarantined cell is
    // `Ok` so the worker keeps draining.
    let supervise = |w: usize, state: &mut S, meter: &mut Meter, idx: usize| -> Result<(), Interrupt> {
        let tracer = meter.tracer().clone();
        loop {
            let attempt = attempts[idx].fetch_add(1, Ordering::Relaxed) + 1;
            let mark = meter.mark();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                meter.fault_point("exec.task")?;
                f(state, meter, idx, &items[idx])
            }));
            match outcome {
                Ok(Ok(r)) => {
                    *lock_recover(&slots[idx]) = Some(r);
                    return Ok(());
                }
                Ok(Err(interrupt)) => return Err(interrupt),
                Err(payload) => {
                    let msg = panic_message(payload);
                    meter.rollback_to(&mark);
                    // The scratch may have been abandoned mid-update;
                    // rebuild it before touching another cell.
                    *state = init(w);
                    if attempt >= MAX_ATTEMPTS {
                        tracer.add("exec.quarantine", 1);
                        lock_recover(&quarantine).push(Quarantined {
                            index: idx,
                            attempts: attempt,
                            panic: msg,
                        });
                        return Ok(());
                    }
                    retries.fetch_add(1, Ordering::Relaxed);
                    tracer.add("exec.retry", 1);
                    backoff(backoff_seed, idx as u64, attempt as u64);
                }
            }
        }
    };

    let run_worker = |w: usize| -> Spend {
        let tracer = shared.tracer().clone();
        let _worker_span = tracer.span("exec.worker").with("worker", w);
        let mut meter = shared.worker_meter();
        // Worker-level fault point: an injected panic here unwinds the
        // whole thread (caught at the join), modelling worker death;
        // cancel/trip publish to the ledger as usual.
        if meter.fault_point("exec.worker").is_err() {
            tracer.add("exec.park", 1);
            return meter.spend();
        }
        let mut state = init(w);
        while let Some((idx, stolen)) = queues.next(w) {
            inflight[w].store(idx, Ordering::Relaxed);
            tracer.add("exec.task", 1);
            if stolen {
                tracer.add("exec.steal", 1);
            }
            let mut task_span = tracer.span("exec.task").with("idx", idx);
            if stolen {
                task_span.record("stolen", true);
            }
            let res = supervise(w, &mut state, &mut meter, idx);
            inflight[w].store(usize::MAX, Ordering::Relaxed);
            // The meter is sticky and the trip is already on the
            // ledger; stop draining.
            if res.is_err() {
                task_span.record("interrupted", true);
                break;
            }
        }
        // Worker ran out of local and stealable work (or tripped);
        // hand the final state to the caller's harvest hook.
        drain(w, state);
        tracer.add("exec.park", 1);
        meter.spend()
    };

    let mut worker_spends: Vec<Spend> = Vec::with_capacity(workers);
    let mut any_worker_died = false;
    if workers <= 1 {
        // Inline path: same supervision, no spawn — a worker panic is
        // caught here instead of at a join.
        match catch_unwind(AssertUnwindSafe(|| run_worker(0))) {
            Ok(sp) => worker_spends.push(sp),
            Err(_) => any_worker_died = true,
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || run_worker(w)))
                .collect();
            for h in handles {
                match h.join() {
                    Ok(sp) => worker_spends.push(sp),
                    // The worker thread itself panicked (injected
                    // worker death, or a scratch rebuild that threw).
                    // Its decided cells are already in the slots; its
                    // queue and in-flight cell are recovered below.
                    Err(_) => any_worker_died = true,
                }
            }
        });
    }

    // Recovery sweep: when a worker died, anything it had in flight
    // plus whatever is left in the deques is re-run inline, under the
    // same supervision. A panicking worker degrades throughput, never
    // completeness. Skipped when an interrupt is pending — undecided
    // cells are then honestly reported as `None` in the partial.
    if any_worker_died && shared.interrupted().is_none() {
        let mut leftovers: Vec<usize> = inflight
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .filter(|&i| i != usize::MAX)
            .collect();
        leftovers.extend(queues.drain_all());
        leftovers.sort_unstable();
        leftovers.dedup();
        leftovers.retain(|&i| lock_recover(&slots[i]).is_none());
        leftovers.retain(|&i| !lock_recover(&quarantine).iter().any(|q| q.index == i));
        if !leftovers.is_empty() {
            let tracer = shared.tracer().clone();
            let mut meter = shared.worker_meter();
            match catch_unwind(AssertUnwindSafe(|| init(0))) {
                Ok(mut state) => {
                    for idx in leftovers {
                        tracer.add("exec.task", 1);
                        let mut task_span = tracer.span("exec.task").with("idx", idx);
                        task_span.record("swept", true);
                        if supervise(0, &mut state, &mut meter, idx).is_err() {
                            task_span.record("interrupted", true);
                            break;
                        }
                    }
                    drain(0, state);
                }
                // Even the scratch rebuild panics: report every
                // leftover cell instead of dropping it.
                Err(payload) => {
                    let msg = panic_message(payload);
                    let mut q = lock_recover(&quarantine);
                    for idx in leftovers {
                        q.push(Quarantined {
                            index: idx,
                            attempts: attempts[idx].load(Ordering::Relaxed),
                            panic: msg.clone(),
                        });
                    }
                }
            }
            worker_spends.push(meter.spend());
        }
    }

    let quarantined = quarantine.into_inner().unwrap_or_else(PoisonError::into_inner);
    // Pooled steps / wall-clock elapsed / peak come from the shared
    // envelope; per-worker cache counters are summed on top. A dead
    // worker's private cache counters are lost with its meter — the
    // pooled ledger (steps, memory) is unaffected.
    let mut spend = shared.spend();
    for ws in worker_spends {
        spend.cache_hits = spend.cache_hits.saturating_add(ws.cache_hits);
        spend.cache_misses = spend.cache_misses.saturating_add(ws.cache_misses);
    }
    spend.retries = retries.load(Ordering::Relaxed);
    spend.quarantined = quarantined.len() as u64;

    let results: Vec<Option<R>> = slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();

    ParOutcome {
        results,
        spend,
        interrupted: shared.interrupted(),
        quarantined,
    }
}

/// [`par_map_with`] without worker-local state.
pub fn par_map<T, R, F>(items: &[T], budget: &Budget, threads: usize, f: F) -> ParOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut Meter, usize, &T) -> Result<R, Interrupt> + Sync,
{
    par_map_with(items, budget, threads, |_| (), |_, m, i, t| f(m, i, t))
}

/// Map over an `rows × cols` grid in row-major order. `f` receives
/// `(state, meter, row, col)`; the outcome's `results` are row-major
/// (`results[r * cols + c]`).
pub fn par_cells<R, S, I, F>(
    rows: usize,
    cols: usize,
    budget: &Budget,
    threads: usize,
    init: I,
    f: F,
) -> ParOutcome<R>
where
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, &mut Meter, usize, usize) -> Result<R, Interrupt> + Sync,
{
    let cells: Vec<(usize, usize)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .collect();
    par_map_with(&cells, budget, threads, init, |s, m, _, &(r, c)| {
        f(s, m, r, c)
    })
}

pub mod prelude {
    pub use crate::{
        default_threads, par_cells, par_map, par_map_with, par_map_with_drain, ParOutcome,
        Quarantined, MAX_ATTEMPTS,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use summa_guard::{CancelToken, ExhaustionReason, FaultInjector, FaultKind, FaultPlan};

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<Option<u64>> = items.iter().map(|x| Some(x * x)).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map(&items, &Budget::unlimited(), threads, |m, _, &x| {
                m.charge(1)?;
                Ok(x * x)
            });
            assert!(out.is_complete());
            assert_eq!(out.results, expected, "threads = {threads}");
            assert_eq!(out.spend.steps, 100);
        }
    }

    #[test]
    fn starved_pool_yields_partial_with_reason() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, &Budget::new().with_steps(50), 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert_eq!(
            out.interrupted,
            Some(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
        let decided = out.results.iter().flatten().count();
        assert!(decided <= 50, "at most one cell per pooled step");
        // Every decided cell is truthful.
        for (i, r) in out.results.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i as u64);
            }
        }
    }

    #[test]
    fn cancellation_stops_all_workers() {
        let token = CancelToken::new();
        let budget = Budget::new().with_cancel(token.clone());
        token.cancel();
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            // checkpoint() forces the token check regardless of the
            // check interval.
            m.checkpoint()?;
            Ok(x)
        });
        assert_eq!(out.interrupted, Some(Interrupt::Cancelled));
        assert!(!out.is_complete());
    }

    #[test]
    fn one_shot_fault_in_one_worker_degrades_cleanly() {
        let budget = Budget::new().with_fault(FaultPlan::fail_once_at_step(20));
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert_eq!(
            out.interrupted,
            Some(Interrupt::Exhausted(ExhaustionReason::FaultInjected))
        );
        let decided = out.results.iter().flatten().count();
        assert!(decided < 64, "the fault cost at least one cell");
        assert!(decided >= 1, "siblings decided cells before the fault");
    }

    #[test]
    fn worker_local_state_is_per_worker() {
        let items: Vec<u64> = (0..200).collect();
        let out = par_map_with(
            &items,
            &Budget::unlimited(),
            4,
            |w| (w, 0u64),
            |(_, count), m, _, &x| {
                m.charge(1)?;
                *count += 1;
                Ok(x + 1)
            },
        );
        assert!(out.is_complete());
        assert_eq!(
            out.results.iter().flatten().sum::<u64>(),
            (1..=200).sum::<u64>()
        );
    }

    #[test]
    fn drain_hook_sees_every_workers_final_state() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let items: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        let drained = AtomicU64::new(0);
        let out = par_map_with_drain(
            &items,
            &Budget::unlimited(),
            4,
            |_| 0u64,
            |count, m, _, &x| {
                m.charge(1)?;
                *count += x;
                Ok(x)
            },
            |_, count| {
                total.fetch_add(count, Ordering::Relaxed);
                drained.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(out.is_complete());
        // The per-worker partial sums reassemble the whole workload:
        // no worker's final state was dropped on the join.
        assert_eq!(total.load(Ordering::Relaxed), (0..100).sum::<u64>());
        assert_eq!(drained.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn par_cells_is_row_major() {
        let out = par_cells(3, 4, &Budget::unlimited(), 2, |_| (), |_, m, r, c| {
            m.charge(1)?;
            Ok(r * 10 + c)
        });
        assert!(out.is_complete());
        assert_eq!(out.results[4 + 2], Some(12));
        assert_eq!(out.results.len(), 12);
    }

    #[test]
    fn into_governed_maps_interrupts() {
        let items: Vec<u64> = (0..10).collect();
        let out = par_map(&items, &Budget::new().with_steps(3), 2, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        let governed = out.into_governed(|slots| {
            let decided: Vec<u64> = slots.into_iter().flatten().collect();
            if decided.is_empty() {
                None
            } else {
                Some(decided)
            }
        });
        match governed {
            Governed::Exhausted {
                reason: ExhaustionReason::Steps,
                partial: Some(p),
            } => assert!(!p.is_empty()),
            other => panic!("expected exhausted partial, got {other:?}"),
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_emits_spans_and_counters_when_traced() {
        use summa_guard::obs::Tracer;
        let tracer = Tracer::enabled();
        let budget = Budget::unlimited().with_tracer(tracer.clone());
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert!(out.is_complete());
        assert_eq!(tracer.counter_value("exec.task"), 64);
        assert_eq!(tracer.counter_value("exec.park"), 4);
        let snap = tracer.snapshot();
        let tasks: Vec<_> = snap.spans.iter().filter(|s| s.name == "exec.task").collect();
        assert_eq!(tasks.len(), 64);
        assert!(tasks.iter().all(|s| s.depth >= 1), "tasks nest in workers");
        let workers = snap.spans.iter().filter(|s| s.name == "exec.worker").count();
        assert_eq!(workers, 4);
    }

    #[test]
    fn tracing_does_not_change_results_or_spend() {
        let items: Vec<u64> = (0..128).collect();
        let run = |budget: &Budget| {
            par_map(items.as_slice(), budget, 4, |m, _, &x| {
                m.charge(1)?;
                Ok(x.wrapping_mul(x))
            })
        };
        let plain = run(&Budget::unlimited());
        let traced = run(&Budget::unlimited().with_tracer(summa_guard::obs::Tracer::enabled()));
        assert_eq!(plain.results, traced.results);
        assert_eq!(plain.spend.steps, traced.spend.steps);
        assert_eq!(plain.spend.cache_hits, traced.spend.cache_hits);
    }

    // ---- supervision -------------------------------------------------

    #[test]
    fn injected_worker_panic_loses_no_cells() {
        // The first worker to start dies before charging a step;
        // siblings steal its queue and the sweep mops up anything in
        // flight. The outcome is byte-identical to a fault-free run.
        for threads in [1, 4] {
            let inj = std::sync::Arc::new(
                FaultInjector::new(7).with_fault_at("exec.worker", 1, FaultKind::Panic),
            );
            let budget = Budget::unlimited().with_injector(inj);
            let items: Vec<u64> = (0..100).collect();
            let out = par_map(&items, &budget, threads, |m, _, &x| {
                m.charge(1)?;
                Ok(x * 3)
            });
            assert!(out.is_complete(), "threads = {threads}");
            let expected: Vec<Option<u64>> = items.iter().map(|x| Some(x * 3)).collect();
            assert_eq!(out.results, expected, "threads = {threads}");
            assert_eq!(out.spend.steps, 100, "dead worker charged nothing");
            assert_eq!(out.spend.retries, 0);
        }
    }

    #[test]
    fn injected_task_panic_is_retried_without_double_charge() {
        for threads in [1, 4] {
            let inj = std::sync::Arc::new(
                FaultInjector::new(7).with_fault_at("exec.task", 5, FaultKind::Panic),
            );
            let budget = Budget::unlimited().with_injector(inj);
            let items: Vec<u64> = (0..64).collect();
            let out = par_map(&items, &budget, threads, |m, _, &x| {
                m.charge(1)?;
                Ok(x + 1)
            });
            assert!(out.is_complete(), "threads = {threads}");
            assert_eq!(out.spend.retries, 1, "threads = {threads}");
            assert_eq!(
                out.spend.steps, 64,
                "retried attempt rolled back, no double charge"
            );
            let expected: Vec<Option<u64>> = items.iter().map(|x| Some(x + 1)).collect();
            assert_eq!(out.results, expected);
        }
    }

    #[test]
    fn repeatedly_panicking_cell_is_quarantined_and_reported() {
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(&items, &Budget::unlimited(), 1, |m, i, &x| {
            if i == 7 {
                panic!("cell 7 is cursed");
            }
            m.charge(1)?;
            Ok(x)
        });
        assert!(!out.is_complete());
        assert!(out.interrupted.is_none(), "no resource trip");
        assert_eq!(out.quarantined.len(), 1);
        let q = &out.quarantined[0];
        assert_eq!(q.index, 7);
        assert_eq!(q.attempts, MAX_ATTEMPTS);
        assert!(q.panic.contains("cursed"), "panic captured: {}", q.panic);
        assert_eq!(out.results[7], None);
        assert_eq!(out.results.iter().flatten().count(), 15);
        assert_eq!(out.spend.retries, u64::from(MAX_ATTEMPTS) - 1);
        assert_eq!(out.spend.quarantined, 1);
        assert_eq!(out.spend.steps, 15, "the cursed cell charged nothing");
        match out.into_governed(|slots| Some(slots.into_iter().flatten().count())) {
            Governed::Exhausted {
                reason: ExhaustionReason::TaskFailure,
                partial: Some(15),
            } => {}
            other => panic!("expected TaskFailure partial, got {other:?}"),
        }
    }

    #[test]
    fn retry_and_quarantine_counters_are_traced() {
        use summa_guard::obs::Tracer;
        let tracer = Tracer::enabled();
        let budget = Budget::unlimited().with_tracer(tracer.clone());
        let items: Vec<u64> = (0..8).collect();
        let out = par_map(&items, &budget, 1, |m, i, &x| {
            if i == 3 {
                panic!("boom");
            }
            m.charge(1)?;
            Ok(x)
        });
        assert_eq!(out.spend.quarantined, 1);
        assert_eq!(
            tracer.counter_value("exec.retry"),
            u64::from(MAX_ATTEMPTS) - 1
        );
        assert_eq!(tracer.counter_value("exec.quarantine"), 1);
    }

    #[test]
    fn panicking_worker_still_reports_interrupt_partials_honestly() {
        // Worker death combined with a step trip: the sweep is skipped
        // (the envelope is spent), undecided cells stay None, and the
        // interrupt is reported.
        let inj = std::sync::Arc::new(
            FaultInjector::new(7).with_fault_at("exec.worker", 1, FaultKind::Panic),
        );
        let budget = Budget::new().with_steps(10).with_injector(inj);
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert_eq!(
            out.interrupted,
            Some(Interrupt::Exhausted(ExhaustionReason::Steps))
        );
        for (i, r) in out.results.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i as u64, "decided cells stay truthful");
            }
        }
    }

    #[test]
    fn injected_cancellation_at_task_site_cancels_pool() {
        let inj = std::sync::Arc::new(
            FaultInjector::new(7).with_fault_at("exec.task", 10, FaultKind::Cancel),
        );
        let budget = Budget::unlimited().with_injector(inj);
        let items: Vec<u64> = (0..256).collect();
        let out = par_map(&items, &budget, 4, |m, _, &x| {
            m.charge(1)?;
            Ok(x)
        });
        assert_eq!(out.interrupted, Some(Interrupt::Cancelled));
        assert!(!out.is_complete());
    }
}
