//! Synthetic TBox families for benchmarks and property tests.
//!
//! Deterministic generation (a SplitMix64 PRNG seeded explicitly) so
//! benchmark workloads are reproducible run to run.

use crate::concept::{Concept, ConceptId, Vocabulary};
use crate::tbox::TBox;

/// A small deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// A linear chain `C0 ⊑ C1 ⊑ … ⊑ Cn−1`.
pub fn chain(n: usize) -> (Vocabulary, TBox, Vec<ConceptId>) {
    let mut voc = Vocabulary::new();
    let ids: Vec<ConceptId> = (0..n).map(|i| voc.concept(&format!("C{i}"))).collect();
    let mut t = TBox::new();
    for w in ids.windows(2) {
        t.subsume(Concept::atom(w[0]), Concept::atom(w[1]));
    }
    (voc, t, ids)
}

/// A balanced binary "diamond lattice" of depth `d`: layer k holds
/// 2^k concepts, each subsumed by two parents in the layer above —
/// dense transitive closure, good for classification benchmarks.
pub fn diamond(depth: usize) -> (Vocabulary, TBox, Vec<ConceptId>) {
    let mut voc = Vocabulary::new();
    let mut t = TBox::new();
    let mut layers: Vec<Vec<ConceptId>> = vec![];
    for k in 0..=depth {
        let layer: Vec<ConceptId> = (0..(1usize << k))
            .map(|i| voc.concept(&format!("D{k}_{i}")))
            .collect();
        if let Some(prev) = layers.last() {
            for (i, &c) in layer.iter().enumerate() {
                let p1 = prev[i / 2];
                let p2 = prev[(i / 2 + 1) % prev.len()];
                t.subsume(Concept::atom(c), Concept::atom(p1));
                if p2 != p1 {
                    t.subsume(Concept::atom(c), Concept::atom(p2));
                }
            }
        }
        layers.push(layer);
    }
    let all = layers.into_iter().flatten().collect();
    (voc, t, all)
}

/// A random EL TBox: `n` named concepts, `n_roles` roles, `m` axioms,
/// each of the form `A ⊑ B`, `A ⊑ B ⊓ C`, or `A ⊑ ∃r.B` with equal
/// probability. Always EL, usually coherent.
pub fn random_el(n: usize, n_roles: usize, m: usize, seed: u64) -> (Vocabulary, TBox, Vec<ConceptId>) {
    let mut rng = SplitMix64::new(seed);
    let mut voc = Vocabulary::new();
    let ids: Vec<ConceptId> = (0..n).map(|i| voc.concept(&format!("A{i}"))).collect();
    let roles: Vec<_> = (0..n_roles.max(1))
        .map(|i| voc.role(&format!("r{i}")))
        .collect();
    let mut t = TBox::new();
    for _ in 0..m {
        let a = ids[rng.below(n)];
        match rng.below(3) {
            0 => {
                let b = ids[rng.below(n)];
                if a != b {
                    t.subsume(Concept::atom(a), Concept::atom(b));
                }
            }
            1 => {
                let b = ids[rng.below(n)];
                let c = ids[rng.below(n)];
                t.subsume(
                    Concept::atom(a),
                    Concept::and(vec![Concept::atom(b), Concept::atom(c)]),
                );
            }
            _ => {
                let b = ids[rng.below(n)];
                let r = roles[rng.below(roles.len())];
                t.subsume(Concept::atom(a), Concept::exists(r, Concept::atom(b)));
            }
        }
    }
    (voc, t, ids)
}

/// A hard ALC satisfiability instance: a chain of `n` disjunction
/// layers forcing exponential branching in a naive tableau —
/// essentially a pigeonhole-flavoured formula
/// `⊓ᵢ (Aᵢ ⊔ Bᵢ)` with constraints making all but one assignment
/// clash late.
pub fn hard_alc(n: usize) -> (Vocabulary, Concept) {
    let mut voc = Vocabulary::new();
    let mut conj = vec![];
    let goal = voc.concept("GOAL");
    for i in 0..n {
        let a = voc.concept(&format!("A{i}"));
        let b = voc.concept(&format!("B{i}"));
        // (Aᵢ ⊔ Bᵢ)
        conj.push(Concept::or(vec![Concept::atom(a), Concept::atom(b)]));
        // ¬Aᵢ ⊔ ¬Bᵢ — can't have both.
        conj.push(Concept::or(vec![
            Concept::not(Concept::atom(a)),
            Concept::not(Concept::atom(b)),
        ]));
    }
    // Force the last branch to matter: GOAL must hold, and GOAL is
    // incompatible with every Aᵢ — so only the all-B assignment works.
    conj.push(Concept::atom(goal));
    for i in 0..n {
        let a = voc.find_concept(&format!("A{i}")).expect("interned above");
        conj.push(Concept::or(vec![
            Concept::not(Concept::atom(goal)),
            Concept::not(Concept::atom(a)),
        ]));
    }
    (voc, Concept::and(conj))
}

/// The pigeonhole TBox: `holes + 1` pigeons, `holes` holes, every
/// pigeon in some hole (`⊤ ⊑ ⊔ⱼ Pᵢⱼ`) and no two pigeons sharing one
/// (`⊤ ⊑ ¬Pᵢⱼ ⊔ ¬Pₖⱼ`). Incoherent, and refuting it forces the
/// tableau through an exponential branch space — the adversarial
/// classification workload of the governance and parallelism suites.
/// Returns the vocabulary, the TBox, and the `n_probes` probe atoms
/// whose classification rows carry the hard queries.
pub fn pigeonhole_tbox(
    holes: usize,
    n_probes: usize,
) -> (Vocabulary, TBox, Vec<ConceptId>) {
    let pigeons = holes + 1;
    let mut voc = Vocabulary::new();
    let mut t = TBox::new();
    let p: Vec<Vec<ConceptId>> = (0..pigeons)
        .map(|i| {
            (0..holes)
                .map(|j| voc.concept(&format!("P{i}_{j}")))
                .collect()
        })
        .collect();
    for row in &p {
        t.subsume(
            Concept::Top,
            Concept::or(row.iter().map(|&c| Concept::atom(c)).collect()),
        );
    }
    for i in 0..pigeons {
        for k in (i + 1)..pigeons {
            for (&a, &b) in p[i].iter().zip(&p[k]) {
                t.subsume(
                    Concept::Top,
                    Concept::or(vec![
                        Concept::not(Concept::atom(a)),
                        Concept::not(Concept::atom(b)),
                    ]),
                );
            }
        }
    }
    let probes: Vec<ConceptId> = (0..n_probes)
        .map(|i| {
            let probe = voc.concept(&format!("Probe{i}"));
            t.subsume(Concept::atom(probe), Concept::atom(p[0][0]));
            probe
        })
        .collect();
    (voc, t, probes)
}

/// An unsatisfiable variant of [`hard_alc`] (adds `A₀ ⊓ GOAL`
/// requirements that conflict): exercises full branch exploration.
pub fn hard_alc_unsat(n: usize) -> (Vocabulary, Concept) {
    let (mut voc, c) = hard_alc(n);
    let a0 = voc.concept("A0");
    (voc, Concept::and(vec![c, Concept::atom(a0)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::el::ElClassifier;
    use crate::tableau::Tableau;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn chain_has_linear_hierarchy() {
        let (voc, t, ids) = chain(6);
        let h = ElClassifier::new(&t, &voc)
            .unwrap()
            .classify(&t, &voc)
            .unwrap();
        assert!(h.subsumes(ids[5], ids[0]));
        assert_eq!(h.n_pairs(), 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn diamond_layers_subsume_root() {
        let (voc, t, ids) = diamond(3);
        let h = ElClassifier::new(&t, &voc)
            .unwrap()
            .classify(&t, &voc)
            .unwrap();
        let root = ids[0];
        for &c in &ids {
            assert!(h.subsumes(root, c), "root must subsume every node");
        }
    }

    #[test]
    fn random_el_is_el_and_reasoners_agree() {
        let (voc, t, _) = random_el(12, 3, 24, 7);
        assert!(t.is_el());
        let h_el = ElClassifier::new(&t, &voc)
            .unwrap()
            .classify(&t, &voc)
            .unwrap();
        let h_tab = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        assert_eq!(h_el, h_tab);
    }

    #[test]
    fn hard_alc_satisfiable_and_unsat_variants() {
        let (voc, c) = hard_alc(4);
        let mut r = Tableau::new(&TBox::new(), &voc);
        assert!(r.is_satisfiable(&c));
        let (voc2, c2) = hard_alc_unsat(4);
        let mut r2 = Tableau::new(&TBox::new(), &voc2);
        assert!(!r2.is_satisfiable(&c2));
    }
}
