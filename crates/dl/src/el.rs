//! A polynomial completion-rule classifier for the EL fragment
//! (with ⊥ for disjointness) — the baseline reasoner.
//!
//! The input TBox must be within EL: concepts built from ⊤, atoms, ⊓
//! and ∃r.C only (⊥ is permitted on right-hand sides). The classifier
//! normalizes the TBox into the four EL normal forms and saturates the
//! standard completion rules (CR1–CR5 of the CEL calculus), yielding
//! all atom–atom subsumptions in polynomial time.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointState};
use crate::concept::{Concept, ConceptId, RoleId, Vocabulary};
use crate::error::{DlError, Result};
use crate::tbox::TBox;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use summa_guard::{Interrupt, Meter};

/// Internal atom index: user atoms first, then fresh definitional
/// atoms, then the distinguished ⊤ and ⊥.
type Atom = u32;

/// Normal-form axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NfAxiom {
    /// A ⊑ B
    Sub(Atom, Atom),
    /// A₁ ⊓ A₂ ⊑ B
    Conj(Atom, Atom, Atom),
    /// A ⊑ ∃r.B
    ExistsRhs(Atom, RoleId, Atom),
    /// ∃r.A ⊑ B
    ExistsLhs(RoleId, Atom, Atom),
}

/// The EL completion-rule classifier.
#[derive(Debug, Clone)]
pub struct ElClassifier {
    /// Atom count including fresh, ⊤ (`top`) and ⊥ (`bottom`).
    n_atoms: u32,
    top: Atom,
    bottom: Atom,
    axioms: Vec<NfAxiom>,
    /// Map from user concept ids to internal atoms.
    user: BTreeMap<ConceptId, Atom>,
    /// Saturated subsumer sets `S(X)`, filled by [`ElClassifier::saturate`].
    subsumers: Vec<BTreeSet<Atom>>,
    /// Derived role edges `R(r)` as adjacency: `(x, r)` → set of `y`.
    /// Persisted alongside `subsumers` so an interrupted saturation can
    /// checkpoint and resume without losing CR3's work.
    edges: BTreeMap<(Atom, RoleId), BTreeSet<Atom>>,
    saturated: bool,
}

impl ElClassifier {
    /// Build the classifier from an EL TBox.
    ///
    /// Returns [`DlError::OutsideFragment`] when any axiom falls
    /// outside EL (⊥ is tolerated anywhere; it simply makes the side
    /// unsatisfiable).
    pub fn new(tbox: &TBox, voc: &Vocabulary) -> Result<Self> {
        for (l, r) in tbox.gcis() {
            if !el_ok(&l) || !el_ok(&r) {
                return Err(DlError::OutsideFragment {
                    reasoner: "EL",
                    detail: format!(
                        "axiom {} ⊑ {} is outside EL",
                        l.display(voc),
                        r.display(voc)
                    ),
                });
            }
        }
        let mut this = ElClassifier {
            n_atoms: 0,
            top: 0,
            bottom: 0,
            axioms: vec![],
            user: BTreeMap::new(),
            subsumers: vec![],
            edges: BTreeMap::new(),
            saturated: false,
        };
        // Reserve user atoms.
        for c in tbox.atoms() {
            let a = this.n_atoms;
            this.user.insert(c, a);
            this.n_atoms += 1;
        }
        this.top = this.n_atoms;
        this.bottom = this.n_atoms + 1;
        this.n_atoms += 2;
        // Normalize.
        for (l, r) in tbox.gcis() {
            let la = this.atomize(&l);
            let ra = this.atomize_rhs(&r);
            this.axioms.push(NfAxiom::Sub(la, ra));
        }
        Ok(this)
    }

    /// Reduce an arbitrary EL concept to a single atom, introducing
    /// fresh definitional atoms as needed (lhs-oriented: the atom is
    /// *equivalent* to the concept because we add both directions of
    /// the definitional axioms where required).
    fn atomize(&mut self, c: &Concept) -> Atom {
        match c {
            Concept::Top => self.top,
            Concept::Bottom => self.bottom,
            Concept::Atom(id) => self.user_atom(*id),
            Concept::And(parts) => {
                let atoms: Vec<Atom> = parts.iter().map(|p| self.atomize(p)).collect();
                // Fold pairwise: fresh ⊑-equivalent conjunction atoms.
                let mut acc = atoms[0];
                for &a in &atoms[1..] {
                    let fresh = self.fresh();
                    // acc ⊓ a ⊑ fresh and fresh ⊑ acc, fresh ⊑ a
                    self.axioms.push(NfAxiom::Conj(acc, a, fresh));
                    self.axioms.push(NfAxiom::Sub(fresh, acc));
                    self.axioms.push(NfAxiom::Sub(fresh, a));
                    acc = fresh;
                }
                acc
            }
            Concept::Exists(r, inner) => {
                let ia = self.atomize(inner);
                let fresh = self.fresh();
                // ∃r.ia ⊑ fresh and fresh ⊑ ∃r.ia
                self.axioms.push(NfAxiom::ExistsLhs(*r, ia, fresh));
                self.axioms.push(NfAxiom::ExistsRhs(fresh, *r, ia));
                fresh
            }
            // Checked by the constructor.
            other => unreachable!("non-EL concept {other:?} after fragment check"),
        }
    }

    fn atomize_rhs(&mut self, c: &Concept) -> Atom {
        self.atomize(c)
    }

    fn user_atom(&mut self, id: ConceptId) -> Atom {
        if let Some(&a) = self.user.get(&id) {
            return a;
        }
        let a = self.fresh();
        self.user.insert(id, a);
        a
    }

    fn fresh(&mut self) -> Atom {
        let a = self.n_atoms;
        self.n_atoms += 1;
        a
    }

    /// Run the completion rules to fixpoint.
    pub fn saturate(&mut self) {
        let mut meter = Meter::unlimited();
        self.saturate_metered(&mut meter)
            .expect("unlimited meter interrupted");
    }

    /// Run the completion rules to fixpoint under a [`Meter`],
    /// charging one step per processed queue entry.
    ///
    /// On interrupt the partially saturated subsumer sets are kept:
    /// completion rules only ever add *entailed* subsumptions, so the
    /// partial state is a sound under-approximation of the full
    /// classification (queryable via
    /// [`ElClassifier::current_named_subsumers`]).
    pub fn saturate_metered(&mut self, meter: &mut Meter) -> std::result::Result<(), Interrupt> {
        if self.saturated {
            return Ok(());
        }
        let _span = meter
            .span("dl.el.saturate")
            .with("atoms", self.n_atoms as u64);
        let n = self.n_atoms as usize;
        // Start from the persisted partial state when one exists (an
        // earlier interrupted run, or a restored checkpoint); seed
        // fresh otherwise. The completion rules are monotone, so
        // re-deriving from any sound under-approximation reaches the
        // same fixpoint an uninterrupted run does.
        if self.subsumers.len() != n {
            self.subsumers = (0..n)
                .map(|i| {
                    let mut set = BTreeSet::new();
                    set.insert(i as Atom);
                    set.insert(self.top);
                    set
                })
                .collect();
            self.edges = BTreeMap::new();
        }
        let mut s: Vec<BTreeSet<Atom>> = std::mem::take(&mut self.subsumers);
        // Role edges R(r) as adjacency: (x, r) → set of y.
        let mut edges: BTreeMap<(Atom, RoleId), BTreeSet<Atom>> = std::mem::take(&mut self.edges);

        // Index axioms for rule application.
        let mut by_lhs: BTreeMap<Atom, Vec<Atom>> = BTreeMap::new();
        let mut conj: Vec<(Atom, Atom, Atom)> = vec![];
        let mut ex_rhs: BTreeMap<Atom, Vec<(RoleId, Atom)>> = BTreeMap::new();
        let mut ex_lhs: BTreeMap<(RoleId, Atom), Vec<Atom>> = BTreeMap::new();
        for ax in &self.axioms {
            match *ax {
                NfAxiom::Sub(a, b) => by_lhs.entry(a).or_default().push(b),
                NfAxiom::Conj(a1, a2, b) => conj.push((a1, a2, b)),
                NfAxiom::ExistsRhs(a, r, b) => ex_rhs.entry(a).or_default().push((r, b)),
                NfAxiom::ExistsLhs(r, a, b) => ex_lhs.entry((r, a)).or_default().push(b),
            }
        }

        // Work queue of (x, added atom) plus edge queue, seeded from
        // every currently known fact: on a fresh start this is exactly
        // the classic (x, x)/(x, ⊤) seeding; on resume it replays the
        // checkpointed facts through the rules, which only ever adds
        // entailed consequences.
        let mut queue: VecDeque<(Atom, Atom)> = s
            .iter()
            .enumerate()
            .flat_map(|(x, set)| set.iter().map(move |&a| (x as Atom, a)))
            .collect();
        let mut edge_queue: VecDeque<(Atom, RoleId, Atom)> = edges
            .iter()
            .flat_map(|(&(x, r), ys)| ys.iter().map(move |&y| (x, r, y)))
            .collect();

        let add = |s: &mut Vec<BTreeSet<Atom>>,
                       queue: &mut VecDeque<(Atom, Atom)>,
                       x: Atom,
                       a: Atom| {
            if s[x as usize].insert(a) {
                queue.push_back((x, a));
            }
        };

        let outcome = loop {
            if let Err(i) = meter.charge(1) {
                break Err(i);
            }
            if let Some((x, a)) = queue.pop_front() {
                // CR1: a ⊑ b
                if let Some(bs) = by_lhs.get(&a) {
                    for &b in bs.clone().iter() {
                        add(&mut s, &mut queue, x, b);
                    }
                }
                // CR2: a ⊓ a2 ⊑ b with a2 already in S(x)
                for &(a1, a2, b) in &conj {
                    if (a1 == a && s[x as usize].contains(&a2))
                        || (a2 == a && s[x as usize].contains(&a1))
                    {
                        add(&mut s, &mut queue, x, b);
                    }
                }
                // CR3: a ⊑ ∃r.b
                if let Some(rbs) = ex_rhs.get(&a) {
                    for &(r, b) in rbs.clone().iter() {
                        let set = edges.entry((x, r)).or_default();
                        if set.insert(b) {
                            edge_queue.push_back((x, r, b));
                        }
                    }
                }
                // CR4 (as target): some edge (w, r, x') with x' = x? —
                // handled in the edge pass below via re-scan; here handle
                // the case where a new subsumer of x triggers ∃r.a ⊑ b
                // for predecessors of x.
                for ((w, r), ys) in edges.iter() {
                    if ys.contains(&x) {
                        if let Some(bs) = ex_lhs.get(&(*r, a)) {
                            for &b in bs.clone().iter() {
                                add(&mut s, &mut queue, *w, b);
                            }
                        }
                        // CR5: ⊥ propagates backwards.
                        if a == self.bottom {
                            add(&mut s, &mut queue, *w, self.bottom);
                        }
                    }
                }
                continue;
            }
            if let Some((x, r, y)) = edge_queue.pop_front() {
                // CR4: new edge (x, r, y): for every a ∈ S(y) with
                // ∃r.a ⊑ b, add b to S(x).
                let sy: Vec<Atom> = s[y as usize].iter().copied().collect();
                for a in sy {
                    if let Some(bs) = ex_lhs.get(&(r, a)) {
                        for &b in bs.clone().iter() {
                            add(&mut s, &mut queue, x, b);
                        }
                    }
                    if a == self.bottom {
                        add(&mut s, &mut queue, x, self.bottom);
                    }
                }
                continue;
            }
            break Ok(());
        };
        // Keep whatever was proved — complete on Ok, a sound partial
        // under-approximation on interrupt. Edges persist alongside so
        // a later resume (or checkpoint) loses none of CR3's work.
        self.subsumers = s;
        self.edges = edges;
        self.saturated = outcome.is_ok();
        outcome
    }

    /// Snapshot the current (possibly partial) saturation state as a
    /// [`Checkpoint`] bound to `fingerprint` (the
    /// [`tbox_fingerprint`](crate::cache::tbox_fingerprint) of the
    /// TBox this classifier was built from). Atom numbering is
    /// deterministic for a given TBox, so a fresh classifier over the
    /// same TBox can [`resume_from`](Self::resume_from) it.
    pub fn checkpoint(&self, fingerprint: u64) -> Checkpoint {
        Checkpoint {
            fingerprint,
            state: CheckpointState::ElSaturation {
                subsumers: self.subsumers.clone(),
                edges: self
                    .edges
                    .iter()
                    .map(|(&(x, r), ys)| ((x, r.0), ys.clone()))
                    .collect(),
            },
        }
    }

    /// Restore a partial saturation from checkpoint bytes. Rejects
    /// corrupt images, wrong fingerprints, and state whose shape does
    /// not match this classifier's atom space; on success the next
    /// [`saturate_metered`](Self::saturate_metered) continues from the
    /// restored facts instead of starting over. Returns the number of
    /// subsumption facts restored.
    pub fn resume_from(
        &mut self,
        bytes: &[u8],
        fingerprint: u64,
    ) -> std::result::Result<usize, CheckpointError> {
        let ckp = Checkpoint::from_bytes_for(bytes, fingerprint)?;
        let CheckpointState::ElSaturation { subsumers, edges } = ckp.state else {
            return Err(CheckpointError::Malformed("not an EL checkpoint"));
        };
        if subsumers.len() != self.n_atoms as usize {
            return Err(CheckpointError::Malformed(
                "checkpoint atom count does not match this TBox",
            ));
        }
        let in_range = |a: &Atom| *a < self.n_atoms;
        if !subsumers.iter().all(|set| set.iter().all(in_range))
            || !edges
                .iter()
                .all(|(&(x, _), ys)| in_range(&x) && ys.iter().all(in_range))
        {
            return Err(CheckpointError::Malformed(
                "checkpoint mentions atoms outside this TBox",
            ));
        }
        let restored = subsumers.iter().map(BTreeSet::len).sum();
        self.subsumers = subsumers;
        self.edges = edges
            .into_iter()
            .map(|((x, r), ys)| ((x, RoleId(r)), ys))
            .collect();
        self.saturated = false;
        Ok(restored)
    }

    /// Named-concept subsumer sets read off the *current* saturation
    /// state: complete after [`ElClassifier::saturate`], a sound
    /// under-approximation after an interrupted
    /// [`ElClassifier::saturate_metered`]. Reflexive pairs are always
    /// present.
    pub fn current_named_subsumers(
        &self,
        atoms: &[ConceptId],
    ) -> BTreeMap<ConceptId, BTreeSet<ConceptId>> {
        let mut out = BTreeMap::new();
        for &sub in atoms {
            let mut set = BTreeSet::new();
            set.insert(sub);
            if let Some(&sa) = self.user.get(&sub) {
                if let Some(sset) = self.subsumers.get(sa as usize) {
                    let unsat = sset.contains(&self.bottom);
                    for &sup in atoms {
                        if let Some(&ba) = self.user.get(&sup) {
                            if unsat || sset.contains(&ba) {
                                set.insert(sup);
                            }
                        }
                    }
                }
            }
            out.insert(sub, set);
        }
        out
    }

    /// Does `sup` subsume `sub` (both named concepts) under the TBox?
    pub fn subsumes(&mut self, sup: ConceptId, sub: ConceptId) -> bool {
        self.saturate();
        let (sa, ba) = match (self.user.get(&sub), self.user.get(&sup)) {
            (Some(&s), Some(&b)) => (s, b),
            _ => return false,
        };
        let set = &self.subsumers[sa as usize];
        set.contains(&ba) || set.contains(&self.bottom)
    }

    /// Is a named concept unsatisfiable (subsumed by ⊥)?
    pub fn is_unsatisfiable(&mut self, c: ConceptId) -> bool {
        self.saturate();
        match self.user.get(&c) {
            Some(&a) => self.subsumers[a as usize].contains(&self.bottom),
            None => false,
        }
    }

    /// All named subsumers of a named concept.
    pub fn subsumers_of(&mut self, c: ConceptId) -> Vec<ConceptId> {
        self.saturate();
        let a = match self.user.get(&c) {
            Some(&a) => a,
            None => return vec![],
        };
        // Borrow the saturated set in place — `subsumers` and `user`
        // are distinct fields, so no clone is needed to walk both.
        let set = &self.subsumers[a as usize];
        self.user
            .iter()
            .filter(|(_, &atom)| set.contains(&atom))
            .map(|(&id, _)| id)
            .collect()
    }
}

/// EL admissibility including ⊥ (which plain `Concept::is_el` excludes).
fn el_ok(c: &Concept) -> bool {
    match c {
        Concept::Top | Concept::Bottom | Concept::Atom(_) => true,
        Concept::And(cs) => cs.iter().all(el_ok),
        Concept::Exists(_, inner) => el_ok(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain_subsumption() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let c = voc.concept("C");
        let mut t = TBox::new();
        t.subsume(Concept::atom(a), Concept::atom(b));
        t.subsume(Concept::atom(b), Concept::atom(c));
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        assert!(el.subsumes(b, a));
        assert!(el.subsumes(c, a)); // transitive
        assert!(el.subsumes(c, b));
        assert!(!el.subsumes(a, c));
        assert!(el.subsumes(a, a)); // reflexive
    }

    #[test]
    fn conjunction_on_lhs() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let c = voc.concept("C");
        let d = voc.concept("D");
        let mut t = TBox::new();
        // D ⊑ A ⊓ B ; A ⊓ B ⊑ C  ⟹  D ⊑ C
        t.subsume(
            Concept::atom(d),
            Concept::and(vec![Concept::atom(a), Concept::atom(b)]),
        );
        t.subsume(
            Concept::and(vec![Concept::atom(a), Concept::atom(b)]),
            Concept::atom(c),
        );
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        assert!(el.subsumes(a, d));
        assert!(el.subsumes(b, d));
        assert!(el.subsumes(c, d));
        assert!(!el.subsumes(c, a));
    }

    #[test]
    fn existential_propagation() {
        let mut voc = Vocabulary::new();
        let person = voc.concept("Person");
        let parent = voc.concept("Parent");
        let has_child = voc.role("hasChild");
        let mut t = TBox::new();
        // Person ⊓ ∃hasChild.Person ⊑ Parent — via normal forms.
        t.subsume(
            Concept::and(vec![
                Concept::atom(person),
                Concept::exists(has_child, Concept::atom(person)),
            ]),
            Concept::atom(parent),
        );
        // ProudDad ⊑ Person ⊓ ∃hasChild.Person
        let dad = voc.concept("ProudDad");
        t.subsume(
            Concept::atom(dad),
            Concept::and(vec![
                Concept::atom(person),
                Concept::exists(has_child, Concept::atom(person)),
            ]),
        );
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        assert!(el.subsumes(parent, dad));
        assert!(!el.subsumes(parent, person));
    }

    #[test]
    fn exists_chain_rolls_up() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let c = voc.concept("C");
        let r = voc.role("r");
        let mut t = TBox::new();
        // A ⊑ ∃r.B ; ∃r.B ⊑ C ⟹ A ⊑ C
        t.subsume(Concept::atom(a), Concept::exists(r, Concept::atom(b)));
        t.subsume(Concept::exists(r, Concept::atom(b)), Concept::atom(c));
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        assert!(el.subsumes(c, a));
    }

    #[test]
    fn bottom_propagates_through_exists() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let r = voc.role("r");
        let mut t = TBox::new();
        // B ⊑ ⊥ ; A ⊑ ∃r.B ⟹ A unsatisfiable.
        t.subsume(Concept::atom(b), Concept::Bottom);
        t.subsume(Concept::atom(a), Concept::exists(r, Concept::atom(b)));
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        assert!(el.is_unsatisfiable(b));
        assert!(el.is_unsatisfiable(a));
        // And an unsatisfiable concept is subsumed by everything.
        assert!(el.subsumes(b, a));
    }

    #[test]
    fn disjointness_via_bottom() {
        let mut voc = Vocabulary::new();
        let cat = voc.concept("Cat");
        let dog = voc.concept("Dog");
        let both = voc.concept("CatDog");
        let mut t = TBox::new();
        t.subsume(
            Concept::and(vec![Concept::atom(cat), Concept::atom(dog)]),
            Concept::Bottom,
        );
        t.subsume(
            Concept::atom(both),
            Concept::and(vec![Concept::atom(cat), Concept::atom(dog)]),
        );
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        assert!(el.is_unsatisfiable(both));
        assert!(!el.is_unsatisfiable(cat));
    }

    #[test]
    fn rejects_non_el_tbox() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let mut t = TBox::new();
        t.subsume(Concept::atom(a), Concept::not(Concept::atom(a)));
        assert!(matches!(
            ElClassifier::new(&t, &voc),
            Err(DlError::OutsideFragment { .. })
        ));
    }

    #[test]
    fn subsumers_of_lists_all() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let c = voc.concept("C");
        let mut t = TBox::new();
        t.subsume(Concept::atom(a), Concept::atom(b));
        t.subsume(Concept::atom(b), Concept::atom(c));
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        let subs = el.subsumers_of(a);
        assert!(subs.contains(&a) && subs.contains(&b) && subs.contains(&c));
        assert_eq!(el.subsumers_of(c), vec![c]);
    }

    #[test]
    fn equivalence_axioms_work() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let r = voc.role("r");
        let mut t = TBox::new();
        t.equiv(
            Concept::atom(a),
            Concept::exists(r, Concept::atom(b)),
        );
        let c = voc.concept("C");
        t.subsume(Concept::atom(c), Concept::exists(r, Concept::atom(b)));
        let mut el = ElClassifier::new(&t, &voc).unwrap();
        // C ⊑ ∃r.B ≡ A ⟹ C ⊑ A
        assert!(el.subsumes(a, c));
        assert!(!el.subsumes(c, a));
    }
}
