//! ABox realization: the most specific named concepts of each
//! individual.
//!
//! Realization is the standard DL service that classification enables:
//! for every individual `a` of an ABox, compute the set of named
//! concepts `C` with `KB ⊨ C(a)`, and among them the most specific
//! ones. It is what an information system would actually run on top of
//! an ontonomy — and therefore where the paper's semantic worries
//! become operational: the system's "understanding" of `a` is exactly
//! this set of names, nothing more.

use crate::abox::{ABox, Individual};
use crate::checkpoint::{kb_fingerprint, Checkpoint, CheckpointError, CheckpointState, ResumeOutcome};
use crate::concept::{Concept, ConceptId, Vocabulary};
use crate::error::Result;
use crate::tableau::Tableau;
use crate::tbox::TBox;
use std::collections::{BTreeMap, BTreeSet};
use summa_guard::{Budget, Governed, Interrupt, Meter};

/// The realization of an ABox: per individual, all entailed named
/// concepts (the *types*) and the most specific ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Realization {
    types: BTreeMap<Individual, BTreeSet<ConceptId>>,
    most_specific: BTreeMap<Individual, BTreeSet<ConceptId>>,
}

impl Realization {
    /// All entailed named concepts of an individual, as an owned set.
    /// Prefer [`Realization::types_ref`] when a borrow will do — this
    /// clones the whole `BTreeSet` per call.
    pub fn types_of(&self, a: Individual) -> BTreeSet<ConceptId> {
        self.types.get(&a).cloned().unwrap_or_default()
    }

    /// Borrowing accessor for an individual's entailed types: `None`
    /// when the individual was not realized (undecided under an
    /// interrupted budget, or simply unknown).
    pub fn types_ref(&self, a: Individual) -> Option<&BTreeSet<ConceptId>> {
        self.types.get(&a)
    }

    /// The most specific entailed named concepts of an individual, as
    /// an owned set. Prefer [`Realization::most_specific_ref`] when a
    /// borrow will do.
    pub fn most_specific_of(&self, a: Individual) -> BTreeSet<ConceptId> {
        self.most_specific.get(&a).cloned().unwrap_or_default()
    }

    /// Borrowing accessor for an individual's most specific types.
    pub fn most_specific_ref(&self, a: Individual) -> Option<&BTreeSet<ConceptId>> {
        self.most_specific.get(&a)
    }

    /// Is `KB ⊨ C(a)` for the named concept `C`? Clone-free membership
    /// test.
    pub fn is_type(&self, a: Individual, c: ConceptId) -> bool {
        self.types_ref(a).is_some_and(|s| s.contains(&c))
    }

    /// Render per-individual listings.
    pub fn render(&self, abox: &ABox, voc: &Vocabulary) -> String {
        let mut out = String::new();
        for (&a, types) in &self.most_specific {
            let names: Vec<&str> = types.iter().map(|&c| voc.concept_name(c)).collect();
            out.push_str(&format!(
                "{}: {}\n",
                abox.individual_name(a),
                names.join(", ")
            ));
        }
        out
    }
}

/// Realize an ABox against a TBox with the tableau reasoner.
pub fn realize(tbox: &TBox, abox: &ABox, voc: &Vocabulary) -> Result<Realization> {
    let mut reasoner = Tableau::new(tbox, voc);
    // Candidate types: every named concept of the vocabulary (the
    // TBox's atoms are a subset; ABox-only names count too).
    let atoms: Vec<ConceptId> = voc.concepts().collect();
    let mut types: BTreeMap<Individual, BTreeSet<ConceptId>> = BTreeMap::new();
    for ind in abox.individuals() {
        let mut set = BTreeSet::new();
        for &c in &atoms {
            // KB ⊨ C(a) iff KB ∪ {¬C(a)} inconsistent — via the
            // scratch-assertion instance check, not an ABox clone per
            // (individual, atom) pair.
            if reasoner.try_is_instance(abox, ind, &Concept::atom(c))? {
                set.insert(c);
            }
        }
        types.insert(ind, set);
    }
    // Most specific: drop any type that strictly subsumes another held
    // type.
    let mut most_specific = BTreeMap::new();
    for (&ind, set) in &types {
        let mut specific = BTreeSet::new();
        for &c in set {
            let dominated = set.iter().any(|&d| {
                d != c
                    && reasoner.subsumes(&Concept::atom(c), &Concept::atom(d))
                    && !reasoner.subsumes(&Concept::atom(d), &Concept::atom(c))
            });
            if !dominated {
                specific.insert(c);
            }
        }
        most_specific.insert(ind, specific);
    }
    Ok(Realization {
        types,
        most_specific,
    })
}

/// Budget-governed realization: one envelope bounds every entailment
/// check in the run. On exhaustion or cancellation the partial
/// [`Realization`] covers the individuals fully realized before the
/// interrupt — untouched individuals are simply absent (empty type
/// sets), never misreported.
pub fn realize_governed(
    tbox: &TBox,
    abox: &ABox,
    voc: &Vocabulary,
    budget: &Budget,
) -> Governed<Realization> {
    realize_checkpointed(tbox, abox, voc, budget, None).governed
}

/// The outcome of a resumable realization run: the governed
/// [`Realization`], a [`Checkpoint`] when interrupted with progress
/// worth keeping, and how the run started.
#[derive(Debug)]
pub struct RealizeRun {
    pub governed: Governed<Realization>,
    /// Emitted on exhaustion/cancellation when at least one individual
    /// is fully realized; `None` on completion.
    pub checkpoint: Option<Checkpoint>,
    pub resume: ResumeOutcome,
}

/// [`realize_governed`] with checkpoint/resume. The checkpoint is
/// bound to the *joint* (TBox, ABox) fingerprint — realization depends
/// on both boxes, so a checkpoint taken against either a different
/// TBox or a different ABox is rejected and the run restarts cleanly.
///
/// Resume soundness mirrors classification: checkpoints hold fully
/// realized individuals only, each realized independently, so resumed
/// ∪ fresh rows equal an uninterrupted run byte-for-byte.
pub fn realize_checkpointed(
    tbox: &TBox,
    abox: &ABox,
    voc: &Vocabulary,
    budget: &Budget,
    resume: Option<&[u8]>,
) -> RealizeRun {
    let fingerprint = kb_fingerprint(tbox, abox);
    let (mut types, mut most_specific, resume_outcome) = match resume {
        None => (BTreeMap::new(), BTreeMap::new(), ResumeOutcome::Fresh),
        Some(bytes) => match restore_realization(bytes, fingerprint, abox) {
            Ok((t, m)) => {
                let restored = t.len();
                (t, m, ResumeOutcome::Resumed { restored })
            }
            Err(why) => (
                BTreeMap::new(),
                BTreeMap::new(),
                ResumeOutcome::Restarted { why },
            ),
        },
    };
    let mut reasoner = Tableau::new(tbox, voc);
    let mut meter = budget.meter();
    let mut span = meter
        .span("dl.realize")
        .with("individuals", abox.individuals().count());
    if let ResumeOutcome::Resumed { restored } = &resume_outcome {
        span.record("resumed_individuals", *restored as u64);
        meter.count("dl.realize.resumed_individuals", *restored as u64);
    }
    match realize_metered(
        tbox,
        abox,
        voc,
        &mut reasoner,
        &mut meter,
        &mut types,
        &mut most_specific,
    ) {
        Ok(()) => RealizeRun {
            governed: Governed::Completed(Realization {
                types,
                most_specific,
            }),
            checkpoint: None,
            resume: resume_outcome,
        },
        Err(i) => {
            span.record("interrupted", true);
            let checkpoint = (!types.is_empty()).then(|| Checkpoint {
                fingerprint,
                state: CheckpointState::Realization {
                    types: types.clone(),
                    most_specific: most_specific.clone(),
                },
            });
            RealizeRun {
                governed: Governed::from_interrupt(
                    i,
                    Some(Realization {
                        types,
                        most_specific,
                    }),
                ),
                checkpoint,
                resume: resume_outcome,
            }
        }
    }
}

/// Resume realization from checkpoint bytes (see
/// [`realize_checkpointed`]).
pub fn realize_resume_from(
    tbox: &TBox,
    abox: &ABox,
    voc: &Vocabulary,
    budget: &Budget,
    bytes: &[u8],
) -> RealizeRun {
    realize_checkpointed(tbox, abox, voc, budget, Some(bytes))
}

/// Validate realization checkpoint bytes: decode, checksum,
/// fingerprint, and require every mentioned individual to exist in the
/// ABox being resumed.
#[allow(clippy::type_complexity)]
fn restore_realization(
    bytes: &[u8],
    fingerprint: u64,
    abox: &ABox,
) -> std::result::Result<
    (
        BTreeMap<Individual, BTreeSet<ConceptId>>,
        BTreeMap<Individual, BTreeSet<ConceptId>>,
    ),
    CheckpointError,
> {
    let ckp = Checkpoint::from_bytes_for(bytes, fingerprint)?;
    let CheckpointState::Realization {
        types,
        most_specific,
    } = ckp.state
    else {
        return Err(CheckpointError::Malformed("not a realization checkpoint"));
    };
    let known: BTreeSet<Individual> = abox.individuals().collect();
    if !types.keys().all(|i| known.contains(i)) {
        return Err(CheckpointError::Malformed(
            "checkpoint mentions individuals outside the ABox",
        ));
    }
    Ok((types, most_specific))
}

/// Parallel, budget-governed realization: individuals are distributed
/// across `threads` workers, each holding a private [`Tableau`] wired
/// to one shared [`SatCache`](crate::cache::SatCache), under a single
/// shared envelope. Each worker realizes *whole* individuals, so the
/// partial on exhaustion only ever contains fully decided rows — the
/// sequential [`realize_governed`] contract — and the completed result
/// is identical to the sequential one.
pub fn realize_parallel_governed(
    tbox: &TBox,
    abox: &ABox,
    voc: &Vocabulary,
    budget: &Budget,
    threads: usize,
) -> Governed<Realization> {
    use std::sync::Arc;
    let cache = Arc::new(crate::cache::SatCache::new());
    realize_parallel_governed_with(tbox, abox, voc, budget, threads, cache).0
}

/// [`realize_parallel_governed`] against a caller-supplied shared
/// [`SatCache`](crate::cache::SatCache), also returning the run's
/// pooled [`Spend`]. Mirrors
/// [`classify_parallel_governed_with`](crate::classify::classify_parallel_governed_with):
/// workers tear down through a drain hook that harvests interner hits
/// accrued after their last completed sat call — previously this path
/// used the drain-less `par_map_with` and silently dropped them on the
/// scope join, so a short-lived pool (one served request) under-counted
/// `dl.intern.hits`.
pub fn realize_parallel_governed_with(
    tbox: &TBox,
    abox: &ABox,
    voc: &Vocabulary,
    budget: &Budget,
    threads: usize,
    cache: std::sync::Arc<crate::cache::SatCache>,
) -> (Governed<Realization>, summa_guard::Spend) {
    realize_parallel_governed_indexed(tbox, abox, voc, budget, threads, cache, None)
}

/// [`realize_parallel_governed_with`] with an optional precomputed
/// [`HierarchyIndex`]: the most-specific filtering's atom-vs-atom
/// subsumption pairs are answered from the index (one step charged per
/// index-answered pair, zero tableau calls) when both atoms are
/// indexed, and proved otherwise. Because an index answer *is* the
/// prover's answer for indexed pairs, the returned realization is
/// identical with or without the index — only the spend differs.
#[allow(clippy::too_many_arguments)]
pub fn realize_parallel_governed_indexed(
    tbox: &TBox,
    abox: &ABox,
    voc: &Vocabulary,
    budget: &Budget,
    threads: usize,
    cache: std::sync::Arc<crate::cache::SatCache>,
    index: Option<&crate::index::HierarchyIndex>,
) -> (Governed<Realization>, summa_guard::Spend) {
    use std::sync::Arc;

    let individuals: Vec<Individual> = abox.individuals().collect();
    let atoms: Vec<ConceptId> = voc.concepts().collect();
    let atoms_ref = &atoms;
    let _span = budget
        .tracer()
        .span("dl.realize.parallel")
        .with("individuals", individuals.len())
        .with("threads", threads);
    let tracer = budget.tracer().clone();
    let outcome = summa_exec::par_map_with_drain(
        &individuals,
        budget,
        threads,
        |_| Tableau::new(tbox, voc).with_shared_cache(Arc::clone(&cache)),
        |reasoner, meter, _, &ind| {
            meter.fault_point("dl.realize.individual")?;
            let mut set = BTreeSet::new();
            for &c in atoms_ref {
                if reasoner.instance_metered(abox, ind, &Concept::atom(c), meter)? {
                    set.insert(c);
                }
            }
            let specific = most_specific_of_set(reasoner, meter, &set, index)?;
            Ok((set, specific))
        },
        |_, mut reasoner: Tableau| {
            let d = reasoner.drain_intern_hits();
            if d > 0 {
                tracer.add("dl.intern.hits", d);
            }
        },
    );
    let spend = outcome.spend;
    let governed = outcome.into_governed(|slots| {
        let mut types = BTreeMap::new();
        let mut most_specific = BTreeMap::new();
        for (ind, slot) in individuals.iter().zip(slots) {
            if let Some((set, specific)) = slot {
                types.insert(*ind, set);
                most_specific.insert(*ind, specific);
            }
        }
        Some(Realization {
            types,
            most_specific,
        })
    });
    (governed, spend)
}

/// Filter an individual's entailed types down to the most specific
/// ones (drop any type that strictly subsumes another held type).
/// When an index is supplied and covers both atoms of a pair, the two
/// subsumption directions come from it in O(1) (one step charged, a
/// `dl.index.hit` count); otherwise two tableau sat calls decide them.
fn most_specific_of_set(
    reasoner: &mut Tableau,
    meter: &mut Meter,
    set: &BTreeSet<ConceptId>,
    index: Option<&crate::index::HierarchyIndex>,
) -> std::result::Result<BTreeSet<ConceptId>, Interrupt> {
    let mut specific = BTreeSet::new();
    for &c in set {
        let mut dominated = false;
        for &d in set {
            if d == c {
                continue;
            }
            let indexed = index.and_then(|idx| {
                Some((idx.subsumes(c, d)?, idx.subsumes(d, c)?))
            });
            let (c_subsumes_d, d_subsumes_c) = match indexed {
                Some(pair) => {
                    meter.charge(1)?;
                    meter.count("dl.index.hit", 1);
                    pair
                }
                None => {
                    let cd = !reasoner.sat_metered(
                        &Concept::and(vec![Concept::atom(d), Concept::not(Concept::atom(c))]),
                        meter,
                    )?;
                    let dc = !reasoner.sat_metered(
                        &Concept::and(vec![Concept::atom(c), Concept::not(Concept::atom(d))]),
                        meter,
                    )?;
                    (cd, dc)
                }
            };
            if c_subsumes_d && !d_subsumes_c {
                dominated = true;
                break;
            }
        }
        if !dominated {
            specific.insert(c);
        }
    }
    Ok(specific)
}

/// The metered realization loop: fills `types` and `most_specific`
/// one *complete* individual at a time so an interrupt leaves only
/// fully decided rows behind.
fn realize_metered(
    _tbox: &TBox,
    abox: &ABox,
    voc: &Vocabulary,
    reasoner: &mut Tableau,
    meter: &mut Meter,
    types: &mut BTreeMap<Individual, BTreeSet<ConceptId>>,
    most_specific: &mut BTreeMap<Individual, BTreeSet<ConceptId>>,
) -> std::result::Result<(), Interrupt> {
    let atoms: Vec<ConceptId> = voc.concepts().collect();
    for ind in abox.individuals() {
        // Individuals already present were restored from a checkpoint
        // (their rows are exact) — skip, charging nothing.
        if types.contains_key(&ind) {
            continue;
        }
        // Chaos-injection site, mirroring `dl.classify.row`.
        meter.fault_point("dl.realize.individual")?;
        let mut set = BTreeSet::new();
        for &c in &atoms {
            if reasoner.instance_metered(abox, ind, &Concept::atom(c), meter)? {
                set.insert(c);
            }
        }
        // Most specific among the entailed types, decided before the
        // row is published so partial results never hold an
        // unfiltered set.
        let specific = most_specific_of_set(reasoner, meter, &set, None)?;
        types.insert(ind, set);
        most_specific.insert(ind, specific);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{vehicles_tbox, PaperVocab};

    #[test]
    fn beetle_realizes_as_a_car() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let mut abox = ABox::new();
        let beetle = abox.individual("beetle");
        abox.assert_concept(beetle, Concept::atom(p.car));
        let r = realize(&t, &abox, &p.voc).expect("realizes");
        // Entailed types: car, motorvehicle, roadvehicle.
        assert!(r.is_type(beetle, p.car));
        assert!(r.is_type(beetle, p.motorvehicle));
        assert!(r.is_type(beetle, p.roadvehicle));
        assert!(!r.is_type(beetle, p.pickup));
        // Most specific: just car.
        assert_eq!(
            r.most_specific_of(beetle),
            [p.car].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn role_assertions_contribute_types() {
        let p = PaperVocab::new();
        let mut t = vehicles_tbox(&p);
        // Anything that uses gasoline is a motorvehicle (a definition
        // the base TBox lacks — add the converse for this test).
        t.subsume(
            Concept::exists(p.uses, Concept::atom(p.gasoline)),
            Concept::atom(p.motorvehicle),
        );
        let mut abox = ABox::new();
        let mystery = abox.individual("mystery");
        let fuel = abox.individual("fuel");
        abox.assert_concept(fuel, Concept::atom(p.gasoline));
        abox.assert_role(mystery, p.uses, fuel);
        let r = realize(&t, &abox, &p.voc).expect("realizes");
        assert!(r.is_type(mystery, p.motorvehicle));
        assert!(!r.is_type(mystery, p.car));
    }

    #[test]
    fn unasserted_individuals_have_no_named_types() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let mut abox = ABox::new();
        let thing = abox.individual("thing");
        // Must be mentioned somehow; an empty assertion set means no
        // entailed named concepts.
        abox.assert_concept(thing, Concept::Top);
        let r = realize(&t, &abox, &p.voc).expect("realizes");
        assert!(r.types_of(thing).is_empty());
        assert!(r.most_specific_of(thing).is_empty());
    }

    #[test]
    fn render_lists_most_specific_names() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let mut abox = ABox::new();
        let beetle = abox.individual("beetle");
        abox.assert_concept(beetle, Concept::atom(p.car));
        let r = realize(&t, &abox, &p.voc).expect("realizes");
        let s = r.render(&abox, &p.voc);
        assert!(s.contains("beetle: car"));
    }
}
