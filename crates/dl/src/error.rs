//! Error types for the description-logic substrate.

use std::fmt;

/// Errors raised while building or reasoning over DL knowledge bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlError {
    /// A concept or role name was used without being interned.
    UnknownName(String),
    /// Concept syntax error (parser). `offset` is the byte offset
    /// into `input` where the problem was detected (`input.len()` for
    /// unexpected end of input).
    Parse {
        input: String,
        detail: String,
        offset: usize,
    },
    /// The TBox is outside the fragment a reasoner supports.
    OutsideFragment { reasoner: &'static str, detail: String },
    /// The tableau expansion exceeded its node budget.
    NodeBudgetExceeded { budget: usize },
}

impl fmt::Display for DlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlError::UnknownName(n) => write!(f, "unknown name '{n}'"),
            DlError::Parse {
                input,
                detail,
                offset,
            } => {
                write!(f, "cannot parse '{input}' at byte {offset}: {detail}")
            }
            DlError::OutsideFragment { reasoner, detail } => {
                write!(f, "input outside the {reasoner} fragment: {detail}")
            }
            DlError::NodeBudgetExceeded { budget } => {
                write!(f, "tableau exceeded {budget} nodes")
            }
        }
    }
}

impl std::error::Error for DlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DlError>;
