//! Versioned, checksummed snapshots of partial reasoning state.
//!
//! A long-running classification, realization, or EL saturation that
//! exhausts its [`Budget`](summa_guard::Budget) already returns a
//! *sound partial* — but until now that partial died with the process.
//! A [`Checkpoint`] makes it durable: the completed rows (or saturated
//! sets) are serialized with a magic tag, a format version, the
//! fingerprint of the knowledge base they were computed against, and a
//! trailing [`fx_hash`] checksum over the whole image.
//!
//! The decoder trusts nothing: short buffers, foreign magic, future
//! versions, flipped bits, truncated payloads, and checkpoints taken
//! against a *different* TBox/ABox are all rejected with a typed
//! [`CheckpointError`] — and every resume entry point degrades to a
//! clean restart on rejection rather than resuming from corrupt state.
//! That is what keeps the chaos differential suite honest: a resumed
//! run is byte-identical to an uninterrupted one, or it never resumes.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  "SUMMACKP"
//! version  u32      currently 1
//! kind     u8       1 classification · 2 realization · 3 EL saturation
//! fingerprint u64   tbox (classification/EL) or tbox⊕abox (realization)
//! payload  …        kind-specific, length-prefixed collections
//! checksum u64      fx_hash of every preceding byte
//! ```

use crate::abox::{ABox, Individual};
use crate::concept::ConceptId;
use crate::fxhash::fx_hash;
use crate::tbox::TBox;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Leading magic bytes of every checkpoint image.
pub const MAGIC: [u8; 8] = *b"SUMMACKP";

/// Current format version.
pub const VERSION: u32 = 1;

const KIND_CLASSIFICATION: u8 = 1;
const KIND_REALIZATION: u8 = 2;
const KIND_EL_SATURATION: u8 = 3;

/// Why a checkpoint image was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Shorter than the fixed header + checksum.
    TooShort,
    /// The magic bytes are not `SUMMACKP`.
    BadMagic,
    /// A version this build does not know how to read.
    UnsupportedVersion(u32),
    /// The trailing fx_hash does not match the image — bit rot,
    /// truncation, or tampering.
    ChecksumMismatch,
    /// Structurally invalid payload (truncated collection, trailing
    /// garbage, unknown kind, ids outside the knowledge base, …).
    Malformed(&'static str),
    /// A well-formed checkpoint of a *different* knowledge base.
    WrongFingerprint { expected: u64, found: u64 },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::TooShort => write!(f, "checkpoint too short"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::WrongFingerprint { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match knowledge base {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// How a resumable entry point actually started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeOutcome {
    /// No checkpoint was offered.
    Fresh,
    /// The checkpoint validated; `restored` rows/facts were seeded.
    Resumed { restored: usize },
    /// The checkpoint was rejected and the run restarted cleanly.
    Restarted { why: CheckpointError },
}

/// The kind-specific payload of a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointState {
    /// Fully decided classification rows: named concept → exact
    /// subsumer set.
    Classification(BTreeMap<ConceptId, BTreeSet<ConceptId>>),
    /// Fully realized individuals: entailed types and the
    /// most-specific subset, both per individual.
    Realization {
        types: BTreeMap<Individual, BTreeSet<ConceptId>>,
        most_specific: BTreeMap<Individual, BTreeSet<ConceptId>>,
    },
    /// Partially saturated EL state: per-atom subsumer sets `S(x)`
    /// plus the role edges `R(r)` the completion rules have derived.
    /// Internal atom numbering — only meaningful to an
    /// [`ElClassifier`](crate::el::ElClassifier) built from the same
    /// TBox.
    ElSaturation {
        subsumers: Vec<BTreeSet<u32>>,
        edges: BTreeMap<(u32, u32), BTreeSet<u32>>,
    },
}

/// A durable snapshot of partial reasoning state, bound to the
/// knowledge base it was computed against by `fingerprint`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// [`tbox_fingerprint`](crate::cache::tbox_fingerprint) for
    /// classification and EL saturation; [`kb_fingerprint`] for
    /// realization.
    pub fingerprint: u64,
    pub state: CheckpointState,
}

impl Checkpoint {
    /// Human-readable kind tag (used in traces and error messages).
    pub fn kind_name(&self) -> &'static str {
        match self.state {
            CheckpointState::Classification(_) => "classification",
            CheckpointState::Realization { .. } => "realization",
            CheckpointState::ElSaturation { .. } => "el-saturation",
        }
    }

    /// How many completed rows / facts the checkpoint carries.
    pub fn restorable(&self) -> usize {
        match &self.state {
            CheckpointState::Classification(rows) => rows.len(),
            CheckpointState::Realization { types, .. } => types.len(),
            CheckpointState::ElSaturation { subsumers, .. } => {
                subsumers.iter().map(BTreeSet::len).sum()
            }
        }
    }

    /// Serialize to the versioned, checksummed wire image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, VERSION);
        match &self.state {
            CheckpointState::Classification(rows) => {
                buf.push(KIND_CLASSIFICATION);
                put_u64(&mut buf, self.fingerprint);
                put_u32(&mut buf, rows.len() as u32);
                for (c, set) in rows {
                    put_u32(&mut buf, c.0);
                    put_id_set(&mut buf, set);
                }
            }
            CheckpointState::Realization {
                types,
                most_specific,
            } => {
                buf.push(KIND_REALIZATION);
                put_u64(&mut buf, self.fingerprint);
                put_u32(&mut buf, types.len() as u32);
                for (ind, set) in types {
                    put_u32(&mut buf, ind.0);
                    put_id_set(&mut buf, set);
                    // A realized individual always has both sets.
                    static EMPTY: BTreeSet<ConceptId> = BTreeSet::new();
                    put_id_set(&mut buf, most_specific.get(ind).unwrap_or(&EMPTY));
                }
            }
            CheckpointState::ElSaturation { subsumers, edges } => {
                buf.push(KIND_EL_SATURATION);
                put_u64(&mut buf, self.fingerprint);
                put_u32(&mut buf, subsumers.len() as u32);
                for set in subsumers {
                    put_u32(&mut buf, set.len() as u32);
                    for &a in set {
                        put_u32(&mut buf, a);
                    }
                }
                put_u32(&mut buf, edges.len() as u32);
                for (&(x, r), ys) in edges {
                    put_u32(&mut buf, x);
                    put_u32(&mut buf, r);
                    put_u32(&mut buf, ys.len() as u32);
                    for &y in ys {
                        put_u32(&mut buf, y);
                    }
                }
            }
        }
        let checksum = fx_hash(&buf[..]);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Decode and verify a wire image. Rejects anything that is not a
    /// bit-exact, well-formed checkpoint — the caller is expected to
    /// degrade to a clean restart on `Err`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        // magic + version + kind + fingerprint + checksum
        if bytes.len() < 8 + 4 + 1 + 8 + 8 {
            return Err(CheckpointError::TooShort);
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fx_hash(body) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut r = Reader {
            bytes: body,
            pos: 8,
        };
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let kind = r.u8()?;
        let fingerprint = r.u64()?;
        let state = match kind {
            KIND_CLASSIFICATION => {
                let n = r.u32()? as usize;
                let mut rows = BTreeMap::new();
                for _ in 0..n {
                    let c = ConceptId(r.u32()?);
                    rows.insert(c, r.id_set()?);
                }
                CheckpointState::Classification(rows)
            }
            KIND_REALIZATION => {
                let n = r.u32()? as usize;
                let mut types = BTreeMap::new();
                let mut most_specific = BTreeMap::new();
                for _ in 0..n {
                    let ind = Individual(r.u32()?);
                    types.insert(ind, r.id_set()?);
                    most_specific.insert(ind, r.id_set()?);
                }
                CheckpointState::Realization {
                    types,
                    most_specific,
                }
            }
            KIND_EL_SATURATION => {
                let n = r.u32()? as usize;
                let mut subsumers = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let k = r.u32()? as usize;
                    let mut set = BTreeSet::new();
                    for _ in 0..k {
                        set.insert(r.u32()?);
                    }
                    subsumers.push(set);
                }
                let ne = r.u32()? as usize;
                let mut edges = BTreeMap::new();
                for _ in 0..ne {
                    let x = r.u32()?;
                    let role = r.u32()?;
                    let k = r.u32()? as usize;
                    let mut ys = BTreeSet::new();
                    for _ in 0..k {
                        ys.insert(r.u32()?);
                    }
                    edges.insert((x, role), ys);
                }
                CheckpointState::ElSaturation { subsumers, edges }
            }
            _ => return Err(CheckpointError::Malformed("unknown checkpoint kind")),
        };
        if r.pos != body.len() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        Ok(Checkpoint { fingerprint, state })
    }

    /// Decode, then additionally require the fingerprint to match the
    /// knowledge base the caller is about to resume against.
    pub fn from_bytes_for(
        bytes: &[u8],
        expected_fingerprint: u64,
    ) -> Result<Checkpoint, CheckpointError> {
        let ckp = Checkpoint::from_bytes(bytes)?;
        if ckp.fingerprint != expected_fingerprint {
            return Err(CheckpointError::WrongFingerprint {
                expected: expected_fingerprint,
                found: ckp.fingerprint,
            });
        }
        Ok(ckp)
    }
}

/// Hash an ABox into the checkpoint fingerprint space, order-
/// independently over its assertions (mirroring
/// [`tbox_fingerprint`](crate::cache::tbox_fingerprint)).
pub fn abox_fingerprint(abox: &ABox) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut acc: u64 = 0x4142_6f78_4649_5021; // arbitrary nonzero seed
    for (a, c) in abox.concept_assertions() {
        let mut h = DefaultHasher::new();
        a.hash(&mut h);
        c.nnf().hash(&mut h);
        acc = acc.wrapping_add(h.finish());
    }
    for (a, r, b) in abox.role_assertions() {
        let mut h = DefaultHasher::new();
        (a, r, b).hash(&mut h);
        acc = acc.wrapping_add(h.finish());
    }
    acc
}

/// Joint fingerprint of a (TBox, ABox) knowledge base — what
/// realization checkpoints are bound to.
pub fn kb_fingerprint(tbox: &TBox, abox: &ABox) -> u64 {
    fx_hash(&(crate::cache::tbox_fingerprint(tbox), abox_fingerprint(abox)))
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_id_set(buf: &mut Vec<u8>, set: &BTreeSet<ConceptId>) {
    put_u32(buf, set.len() as u32);
    for id in set {
        put_u32(buf, id.0);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(CheckpointError::Malformed("truncated payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(CheckpointError::Malformed("truncated payload"))?;
        self.pos = end;
        Ok(u32::from_le_bytes(slice.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(CheckpointError::Malformed("truncated payload"))?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().unwrap()))
    }

    fn id_set(&mut self) -> Result<BTreeSet<ConceptId>, CheckpointError> {
        let n = self.u32()? as usize;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(ConceptId(self.u32()?));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut rows = BTreeMap::new();
        rows.insert(
            ConceptId(0),
            [ConceptId(0), ConceptId(1)].into_iter().collect(),
        );
        rows.insert(ConceptId(1), [ConceptId(1)].into_iter().collect());
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            state: CheckpointState::Classification(rows),
        }
    }

    #[test]
    fn round_trips_every_kind() {
        let class = sample();
        assert_eq!(Checkpoint::from_bytes(&class.to_bytes()), Ok(class));

        let real = Checkpoint {
            fingerprint: 7,
            state: CheckpointState::Realization {
                types: [(Individual(0), [ConceptId(2)].into_iter().collect())]
                    .into_iter()
                    .collect(),
                most_specific: [(Individual(0), [ConceptId(2)].into_iter().collect())]
                    .into_iter()
                    .collect(),
            },
        };
        assert_eq!(Checkpoint::from_bytes(&real.to_bytes()), Ok(real));

        let el = Checkpoint {
            fingerprint: 9,
            state: CheckpointState::ElSaturation {
                subsumers: vec![[0, 2].into_iter().collect(), [1].into_iter().collect()],
                edges: [((0, 0), [1].into_iter().collect())].into_iter().collect(),
            },
        };
        assert_eq!(Checkpoint::from_bytes(&el.to_bytes()), Ok(el));
    }

    #[test]
    fn rejects_corruption_and_foreign_bytes() {
        let bytes = sample().to_bytes();

        assert_eq!(
            Checkpoint::from_bytes(&bytes[..10]),
            Err(CheckpointError::TooShort)
        );

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(&wrong_magic),
            Err(CheckpointError::BadMagic)
        );

        // Any flipped payload bit fails the checksum.
        for i in [9, 13, 21, bytes.len() - 9] {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert_eq!(
                Checkpoint::from_bytes(&flipped),
                Err(CheckpointError::ChecksumMismatch),
                "flipping byte {i} must be detected"
            );
        }

        // A flipped checksum byte likewise.
        let mut bad_sum = bytes.clone();
        let last = bad_sum.len() - 1;
        bad_sum[last] ^= 0x01;
        assert_eq!(
            Checkpoint::from_bytes(&bad_sum),
            Err(CheckpointError::ChecksumMismatch)
        );

        // Truncation (with the checksum recomputed to isolate the
        // structural check) is caught by the payload parser.
        let mut truncated = bytes[..bytes.len() - 12].to_vec();
        let sum = fx_hash(&truncated[..]);
        truncated.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&truncated),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_future_versions_and_wrong_fingerprints() {
        let bytes = sample().to_bytes();
        let mut future = bytes.clone();
        future[8] = 0xFE; // version low byte
        let body_len = future.len() - 8;
        let sum = fx_hash(&future[..body_len]);
        future[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&future),
            Err(CheckpointError::UnsupportedVersion(_))
        ));

        assert_eq!(
            Checkpoint::from_bytes_for(&bytes, 42),
            Err(CheckpointError::WrongFingerprint {
                expected: 42,
                found: 0xDEAD_BEEF_CAFE_F00D,
            })
        );
        assert!(Checkpoint::from_bytes_for(&bytes, 0xDEAD_BEEF_CAFE_F00D).is_ok());
    }

    #[test]
    fn abox_fingerprint_is_order_independent_and_content_sensitive() {
        use crate::concept::{Concept, Vocabulary};
        let mut voc = Vocabulary::new();
        let c = voc.concept("C");
        let d = voc.concept("D");
        let r = voc.role("r");

        let build = |flip: bool| {
            let mut abox = ABox::new();
            let a = abox.individual("a");
            let b = abox.individual("b");
            if flip {
                abox.assert_role(a, r, b);
                abox.assert_concept(b, Concept::atom(d));
                abox.assert_concept(a, Concept::atom(c));
            } else {
                abox.assert_concept(a, Concept::atom(c));
                abox.assert_concept(b, Concept::atom(d));
                abox.assert_role(a, r, b);
            }
            abox
        };
        assert_eq!(abox_fingerprint(&build(false)), abox_fingerprint(&build(true)));

        let mut other = build(false);
        let a = other.individual("a");
        other.assert_concept(a, Concept::atom(d));
        assert_ne!(abox_fingerprint(&build(false)), abox_fingerprint(&other));
    }
}
