//! The paper's example ontonomies as ready-made TBoxes.
//!
//! Structure (4) — vehicles:
//!
//! ```text
//! car           ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.small
//! pickup        ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.big
//! motorvehicle  ⊑ ∃uses.gasoline
//! roadvehicle   ⊑ ∃₄has.wheel
//! ```
//!
//! Structure (8) — animals (isomorphic to (4); the CAR = DOG argument):
//!
//! ```text
//! dog        ⊑ animal ⊓ quadruped ⊓ ∃size.small
//! horse      ⊑ animal ⊓ quadruped ⊓ ∃size.big
//! animal     ⊑ ∃ingests.food
//! quadruped  ⊑ ∃₄has.leg
//! ```
//!
//! Structures (9)–(11) — the paper's repair, which breaks the
//! isomorphism by asserting `quadruped ⊑ animal` and simplifying the
//! dog/horse definitions:
//!
//! ```text
//! quadruped ⊑ animal
//! dog       ⊑ quadruped ⊓ ∃size.small
//! horse     ⊑ quadruped ⊓ ∃size.big
//! ```

use crate::concept::{Concept, ConceptId, RoleId, Vocabulary};
use crate::tbox::TBox;

/// The shared vocabulary of the paper's §3 examples, with every name
/// pre-interned.
#[derive(Debug, Clone)]
pub struct PaperVocab {
    /// The vocabulary holding all names below.
    pub voc: Vocabulary,
    // vehicles
    pub car: ConceptId,
    pub pickup: ConceptId,
    pub motorvehicle: ConceptId,
    pub roadvehicle: ConceptId,
    pub gasoline: ConceptId,
    pub wheel: ConceptId,
    // animals
    pub dog: ConceptId,
    pub horse: ConceptId,
    pub animal: ConceptId,
    pub quadruped: ConceptId,
    pub food: ConceptId,
    pub leg: ConceptId,
    // shared fillers
    pub small: ConceptId,
    pub big: ConceptId,
    // roles
    pub size: RoleId,
    pub uses: RoleId,
    pub has: RoleId,
    pub ingests: RoleId,
}

impl PaperVocab {
    /// Intern all names of structures (4)–(11).
    pub fn new() -> Self {
        let mut voc = Vocabulary::new();
        PaperVocab {
            car: voc.concept("car"),
            pickup: voc.concept("pickup"),
            motorvehicle: voc.concept("motorvehicle"),
            roadvehicle: voc.concept("roadvehicle"),
            gasoline: voc.concept("gasoline"),
            wheel: voc.concept("wheel"),
            dog: voc.concept("dog"),
            horse: voc.concept("horse"),
            animal: voc.concept("animal"),
            quadruped: voc.concept("quadruped"),
            food: voc.concept("food"),
            leg: voc.concept("leg"),
            small: voc.concept("small"),
            big: voc.concept("big"),
            size: voc.role("size"),
            uses: voc.role("uses"),
            has: voc.role("has"),
            ingests: voc.role("ingests"),
            voc,
        }
    }
}

impl Default for PaperVocab {
    fn default() -> Self {
        Self::new()
    }
}

/// Structure (4): the vehicle ontonomy.
pub fn vehicles_tbox(p: &PaperVocab) -> TBox {
    let mut t = TBox::new();
    t.subsume(
        Concept::atom(p.car),
        Concept::and(vec![
            Concept::atom(p.motorvehicle),
            Concept::atom(p.roadvehicle),
            Concept::exists(p.size, Concept::atom(p.small)),
        ]),
    );
    t.subsume(
        Concept::atom(p.pickup),
        Concept::and(vec![
            Concept::atom(p.motorvehicle),
            Concept::atom(p.roadvehicle),
            Concept::exists(p.size, Concept::atom(p.big)),
        ]),
    );
    t.subsume(
        Concept::atom(p.motorvehicle),
        Concept::exists(p.uses, Concept::atom(p.gasoline)),
    );
    t.subsume(
        Concept::atom(p.roadvehicle),
        Concept::exactly(4, p.has, Concept::atom(p.wheel)),
    );
    t
}

/// Structure (8): the animal ontonomy, isomorphic to (4).
pub fn animals_tbox(p: &PaperVocab) -> TBox {
    let mut t = TBox::new();
    t.subsume(
        Concept::atom(p.dog),
        Concept::and(vec![
            Concept::atom(p.animal),
            Concept::atom(p.quadruped),
            Concept::exists(p.size, Concept::atom(p.small)),
        ]),
    );
    t.subsume(
        Concept::atom(p.horse),
        Concept::and(vec![
            Concept::atom(p.animal),
            Concept::atom(p.quadruped),
            Concept::exists(p.size, Concept::atom(p.big)),
        ]),
    );
    t.subsume(
        Concept::atom(p.animal),
        Concept::exists(p.ingests, Concept::atom(p.food)),
    );
    t.subsume(
        Concept::atom(p.quadruped),
        Concept::exactly(4, p.has, Concept::atom(p.leg)),
    );
    t
}

/// Structures (9)–(11): the repaired animal ontonomy, in which
/// `quadruped ⊑ animal` is asserted (true of animals, false of the
/// vehicle analogue: road vehicles need not be motor vehicles) and the
/// dog/horse definitions are simplified accordingly.
pub fn animals_tbox_repaired(p: &PaperVocab) -> TBox {
    let mut t = TBox::new();
    // (9)
    t.subsume(Concept::atom(p.quadruped), Concept::atom(p.animal));
    // (10)
    t.subsume(
        Concept::atom(p.dog),
        Concept::and(vec![
            Concept::atom(p.quadruped),
            Concept::exists(p.size, Concept::atom(p.small)),
        ]),
    );
    // (11)
    t.subsume(
        Concept::atom(p.horse),
        Concept::and(vec![
            Concept::atom(p.quadruped),
            Concept::exists(p.size, Concept::atom(p.big)),
        ]),
    );
    t.subsume(
        Concept::atom(p.animal),
        Concept::exists(p.ingests, Concept::atom(p.food)),
    );
    t.subsume(
        Concept::atom(p.quadruped),
        Concept::exactly(4, p.has, Concept::atom(p.leg)),
    );
    t
}

/// An EL-safe variant of structure (4) (the `∃₄` qualified number
/// restriction weakened to a plain existential) for use with the EL
/// baseline classifier.
pub fn vehicles_tbox_el(p: &PaperVocab) -> TBox {
    let mut t = TBox::new();
    t.subsume(
        Concept::atom(p.car),
        Concept::and(vec![
            Concept::atom(p.motorvehicle),
            Concept::atom(p.roadvehicle),
            Concept::exists(p.size, Concept::atom(p.small)),
        ]),
    );
    t.subsume(
        Concept::atom(p.pickup),
        Concept::and(vec![
            Concept::atom(p.motorvehicle),
            Concept::atom(p.roadvehicle),
            Concept::exists(p.size, Concept::atom(p.big)),
        ]),
    );
    t.subsume(
        Concept::atom(p.motorvehicle),
        Concept::exists(p.uses, Concept::atom(p.gasoline)),
    );
    t.subsume(
        Concept::atom(p.roadvehicle),
        Concept::exists(p.has, Concept::atom(p.wheel)),
    );
    t
}

/// An EL-safe variant of structure (8).
pub fn animals_tbox_el(p: &PaperVocab) -> TBox {
    let mut t = TBox::new();
    t.subsume(
        Concept::atom(p.dog),
        Concept::and(vec![
            Concept::atom(p.animal),
            Concept::atom(p.quadruped),
            Concept::exists(p.size, Concept::atom(p.small)),
        ]),
    );
    t.subsume(
        Concept::atom(p.horse),
        Concept::and(vec![
            Concept::atom(p.animal),
            Concept::atom(p.quadruped),
            Concept::exists(p.size, Concept::atom(p.big)),
        ]),
    );
    t.subsume(
        Concept::atom(p.animal),
        Concept::exists(p.ingests, Concept::atom(p.food)),
    );
    t.subsume(
        Concept::atom(p.quadruped),
        Concept::exists(p.has, Concept::atom(p.leg)),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tableau::Tableau;

    #[test]
    fn vehicles_tbox_is_coherent() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let mut r = Tableau::new(&t, &p.voc);
        assert!(r.is_coherent());
        assert!(r.is_satisfiable(&Concept::atom(p.car)));
        assert!(r.is_satisfiable(&Concept::atom(p.pickup)));
    }

    #[test]
    fn car_is_a_motorvehicle_and_roadvehicle() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let mut r = Tableau::new(&t, &p.voc);
        assert!(r.subsumes(&Concept::atom(p.motorvehicle), &Concept::atom(p.car)));
        assert!(r.subsumes(&Concept::atom(p.roadvehicle), &Concept::atom(p.car)));
        // And through the chain, a car uses gasoline.
        assert!(r.subsumes(
            &Concept::exists(p.uses, Concept::atom(p.gasoline)),
            &Concept::atom(p.car)
        ));
    }

    #[test]
    fn animals_mirror_vehicles() {
        let p = PaperVocab::new();
        let t = animals_tbox(&p);
        let mut r = Tableau::new(&t, &p.voc);
        assert!(r.subsumes(&Concept::atom(p.animal), &Concept::atom(p.dog)));
        assert!(r.subsumes(&Concept::atom(p.quadruped), &Concept::atom(p.horse)));
        assert!(r.subsumes(
            &Concept::exists(p.ingests, Concept::atom(p.food)),
            &Concept::atom(p.dog)
        ));
    }

    #[test]
    fn repair_adds_quadruped_subsumption() {
        let p = PaperVocab::new();
        // Before the repair, quadruped ⋢ animal.
        let before = animals_tbox(&p);
        let mut r0 = Tableau::new(&before, &p.voc);
        assert!(!r0.subsumes(&Concept::atom(p.animal), &Concept::atom(p.quadruped)));
        // After, it holds, and dogs remain animals through it.
        let after = animals_tbox_repaired(&p);
        let mut r1 = Tableau::new(&after, &p.voc);
        assert!(r1.subsumes(&Concept::atom(p.animal), &Concept::atom(p.quadruped)));
        assert!(r1.subsumes(&Concept::atom(p.animal), &Concept::atom(p.dog)));
    }

    #[test]
    fn el_variants_are_el() {
        let p = PaperVocab::new();
        assert!(vehicles_tbox_el(&p).is_el());
        assert!(animals_tbox_el(&p).is_el());
        assert!(!vehicles_tbox(&p).is_el()); // ∃₄ is not EL
    }
}
