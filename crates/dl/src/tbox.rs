//! Terminological boxes (TBoxes): general concept inclusion axioms.

use crate::concept::{Concept, ConceptId, RoleId, Vocabulary};
use std::collections::BTreeSet;

/// A terminological axiom.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axiom {
    /// General concept inclusion `lhs ⊑ rhs`.
    Subsume { lhs: Concept, rhs: Concept },
    /// Concept equivalence `lhs ≡ rhs` (kept as one axiom so the
    /// definition graph of `summa-structure` can distinguish definitions
    /// from primitive inclusions).
    Equiv { lhs: Concept, rhs: Concept },
    /// Disjointness `a ⊓ b ⊑ ⊥`.
    Disjoint { a: Concept, b: Concept },
}

impl Axiom {
    /// Decompose into plain GCIs `(lhs, rhs)` meaning `lhs ⊑ rhs`.
    pub fn to_gcis(&self) -> Vec<(Concept, Concept)> {
        match self {
            Axiom::Subsume { lhs, rhs } => vec![(lhs.clone(), rhs.clone())],
            Axiom::Equiv { lhs, rhs } => vec![
                (lhs.clone(), rhs.clone()),
                (rhs.clone(), lhs.clone()),
            ],
            Axiom::Disjoint { a, b } => vec![(
                Concept::and(vec![a.clone(), b.clone()]),
                Concept::Bottom,
            )],
        }
    }
}

/// A TBox: an ordered collection of axioms over a shared vocabulary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TBox {
    axioms: Vec<Axiom>,
}

impl TBox {
    /// An empty TBox.
    pub fn new() -> Self {
        Self::default()
    }

    /// The axioms in insertion order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// Add an arbitrary axiom.
    pub fn add(&mut self, ax: Axiom) {
        self.axioms.push(ax);
    }

    /// Add `lhs ⊑ rhs`.
    pub fn subsume(&mut self, lhs: Concept, rhs: Concept) {
        self.axioms.push(Axiom::Subsume { lhs, rhs });
    }

    /// Add `lhs ≡ rhs`.
    pub fn equiv(&mut self, lhs: Concept, rhs: Concept) {
        self.axioms.push(Axiom::Equiv { lhs, rhs });
    }

    /// Add `a ⊓ b ⊑ ⊥`.
    pub fn disjoint(&mut self, a: Concept, b: Concept) {
        self.axioms.push(Axiom::Disjoint { a, b });
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// True when the TBox has no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// All GCIs `(lhs, rhs)` of the TBox.
    pub fn gcis(&self) -> Vec<(Concept, Concept)> {
        self.axioms.iter().flat_map(Axiom::to_gcis).collect()
    }

    /// The *internalization* of each GCI as a universal constraint in
    /// NNF: `¬lhs ⊔ rhs`, to be asserted at every tableau node.
    pub fn universal_constraints(&self) -> Vec<Concept> {
        self.gcis()
            .into_iter()
            .map(|(l, r)| Concept::or(vec![Concept::not(l), r]).nnf())
            .collect()
    }

    /// All atomic concepts mentioned.
    pub fn atoms(&self) -> BTreeSet<ConceptId> {
        let mut out = BTreeSet::new();
        for (l, r) in self.gcis() {
            out.extend(l.atoms());
            out.extend(r.atoms());
        }
        out
    }

    /// All roles mentioned.
    pub fn roles(&self) -> BTreeSet<RoleId> {
        let mut out = BTreeSet::new();
        for (l, r) in self.gcis() {
            out.extend(l.roles());
            out.extend(r.roles());
        }
        out
    }

    /// True when every axiom is in the EL fragment (no ≡ with non-EL
    /// sides, no negation/disjunction/∀/number restrictions).
    pub fn is_el(&self) -> bool {
        self.gcis().iter().all(|(l, r)| l.is_el() && r.is_el())
    }

    /// Total size (constructors) of all axioms.
    pub fn size(&self) -> usize {
        self.gcis().iter().map(|(l, r)| l.size() + r.size()).sum()
    }

    /// Render the whole TBox against a vocabulary, one axiom per line.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        for ax in &self.axioms {
            match ax {
                Axiom::Subsume { lhs, rhs } => {
                    out.push_str(&format!("{} ⊑ {}\n", lhs.display(voc), rhs.display(voc)));
                }
                Axiom::Equiv { lhs, rhs } => {
                    out.push_str(&format!("{} ≡ {}\n", lhs.display(voc), rhs.display(voc)));
                }
                Axiom::Disjoint { a, b } => {
                    out.push_str(&format!(
                        "disjoint({}, {})\n",
                        a.display(voc),
                        b.display(voc)
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcis_expand_equivalence_both_ways() {
        let mut v = Vocabulary::new();
        let a = Concept::atom(v.concept("A"));
        let b = Concept::atom(v.concept("B"));
        let mut t = TBox::new();
        t.equiv(a.clone(), b.clone());
        let g = t.gcis();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&(a.clone(), b.clone())));
        assert!(g.contains(&(b, a)));
    }

    #[test]
    fn disjointness_becomes_bottom_gci() {
        let mut v = Vocabulary::new();
        let a = Concept::atom(v.concept("A"));
        let b = Concept::atom(v.concept("B"));
        let mut t = TBox::new();
        t.disjoint(a.clone(), b.clone());
        let g = t.gcis();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].1, Concept::Bottom);
    }

    #[test]
    fn universal_constraints_are_nnf() {
        let mut v = Vocabulary::new();
        let a = Concept::atom(v.concept("A"));
        let r = v.role("r");
        let mut t = TBox::new();
        t.subsume(Concept::exists(r, a.clone()), a.clone());
        let ucs = t.universal_constraints();
        assert_eq!(ucs.len(), 1);
        // ¬∃r.A ⊔ A = ∀r.¬A ⊔ A
        match &ucs[0] {
            Concept::Or(parts) => {
                assert!(parts.iter().any(|p| matches!(p, Concept::Forall(_, _))));
            }
            other => panic!("expected disjunction, got {other:?}"),
        }
    }

    #[test]
    fn atoms_and_roles_collected() {
        let mut v = Vocabulary::new();
        let a = Concept::atom(v.concept("A"));
        let b = Concept::atom(v.concept("B"));
        let r = v.role("r");
        let mut t = TBox::new();
        t.subsume(a.clone(), Concept::exists(r, b.clone()));
        assert_eq!(t.atoms().len(), 2);
        assert_eq!(t.roles().len(), 1);
        assert!(t.is_el());
        assert!(t.size() > 0);
    }

    #[test]
    fn non_el_detected() {
        let mut v = Vocabulary::new();
        let a = Concept::atom(v.concept("A"));
        let mut t = TBox::new();
        t.subsume(a.clone(), Concept::not(a.clone()));
        assert!(!t.is_el());
    }

    #[test]
    fn render_lists_axioms() {
        let mut v = Vocabulary::new();
        let a = Concept::atom(v.concept("A"));
        let b = Concept::atom(v.concept("B"));
        let mut t = TBox::new();
        t.subsume(a.clone(), b.clone());
        t.equiv(a, b);
        let s = t.render(&v);
        assert!(s.contains("A ⊑ B"));
        assert!(s.contains("A ≡ B"));
    }
}
