//! The ALCQ concept language.
//!
//! Concepts are built from interned atomic concept names and role
//! names with the constructors ⊤, ⊥, ¬, ⊓, ⊔, ∃r.C, ∀r.C and the
//! qualified number restrictions ≥n r.C / ≤n r.C (the paper's
//! `∃₄has.wheels` is `≥4 has.wheel ⊓ ≤4 has.wheel`).

use std::collections::BTreeSet;
use std::fmt;

/// Interned atomic concept name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub u32);

/// Interned role name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoleId(pub u32);

/// Interner for concept and role names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    concepts: Vec<String>,
    roles: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a concept name (idempotent).
    pub fn concept(&mut self, name: &str) -> ConceptId {
        if let Some(i) = self.concepts.iter().position(|n| n == name) {
            return ConceptId(i as u32);
        }
        self.concepts.push(name.to_string());
        ConceptId((self.concepts.len() - 1) as u32)
    }

    /// Intern a role name (idempotent).
    pub fn role(&mut self, name: &str) -> RoleId {
        if let Some(i) = self.roles.iter().position(|n| n == name) {
            return RoleId(i as u32);
        }
        self.roles.push(name.to_string());
        RoleId((self.roles.len() - 1) as u32)
    }

    /// Look up a concept id by name without interning.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        self.concepts
            .iter()
            .position(|n| n == name)
            .map(|i| ConceptId(i as u32))
    }

    /// Look up a role id by name without interning.
    pub fn find_role(&self, name: &str) -> Option<RoleId> {
        self.roles
            .iter()
            .position(|n| n == name)
            .map(|i| RoleId(i as u32))
    }

    /// Name of a concept id.
    pub fn concept_name(&self, c: ConceptId) -> &str {
        &self.concepts[c.0 as usize]
    }

    /// Name of a role id.
    pub fn role_name(&self, r: RoleId) -> &str {
        &self.roles[r.0 as usize]
    }

    /// Number of interned concept names.
    pub fn n_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Number of interned role names.
    pub fn n_roles(&self) -> usize {
        self.roles.len()
    }

    /// All concept ids.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    /// All role ids.
    pub fn roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        (0..self.roles.len() as u32).map(RoleId)
    }
}

/// An ALCQ concept expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Concept {
    /// ⊤ — everything.
    Top,
    /// ⊥ — nothing.
    Bottom,
    /// An atomic concept name.
    Atom(ConceptId),
    /// ¬C.
    Not(Box<Concept>),
    /// C₁ ⊓ … ⊓ Cₙ (n ≥ 2 after normalization).
    And(Vec<Concept>),
    /// C₁ ⊔ … ⊔ Cₙ.
    Or(Vec<Concept>),
    /// ∃r.C.
    Exists(RoleId, Box<Concept>),
    /// ∀r.C.
    Forall(RoleId, Box<Concept>),
    /// ≥n r.C.
    AtLeast(u32, RoleId, Box<Concept>),
    /// ≤n r.C.
    AtMost(u32, RoleId, Box<Concept>),
}

impl Concept {
    /// Atomic concept.
    pub fn atom(c: ConceptId) -> Concept {
        Concept::Atom(c)
    }

    /// Negation (with double-negation elimination).
    #[allow(clippy::should_implement_trait)] // `Concept::not` mirrors DL syntax ¬C
    pub fn not(c: Concept) -> Concept {
        match c {
            Concept::Not(inner) => *inner,
            Concept::Top => Concept::Bottom,
            Concept::Bottom => Concept::Top,
            other => Concept::Not(Box::new(other)),
        }
    }

    /// n-ary conjunction, flattening nested conjunctions and dropping ⊤.
    pub fn and(cs: Vec<Concept>) -> Concept {
        let mut flat = vec![];
        for c in cs {
            match c {
                Concept::And(inner) => flat.extend(inner),
                Concept::Top => {}
                Concept::Bottom => return Concept::Bottom,
                other => flat.push(other),
            }
        }
        flat.sort();
        flat.dedup();
        match flat.len() {
            0 => Concept::Top,
            1 => flat.pop().expect("len checked"),
            _ => Concept::And(flat),
        }
    }

    /// n-ary disjunction, flattening and dropping ⊥.
    pub fn or(cs: Vec<Concept>) -> Concept {
        let mut flat = vec![];
        for c in cs {
            match c {
                Concept::Or(inner) => flat.extend(inner),
                Concept::Bottom => {}
                Concept::Top => return Concept::Top,
                other => flat.push(other),
            }
        }
        flat.sort();
        flat.dedup();
        match flat.len() {
            0 => Concept::Bottom,
            1 => flat.pop().expect("len checked"),
            _ => Concept::Or(flat),
        }
    }

    /// ∃r.C.
    pub fn exists(r: RoleId, c: Concept) -> Concept {
        Concept::Exists(r, Box::new(c))
    }

    /// ∀r.C.
    pub fn forall(r: RoleId, c: Concept) -> Concept {
        Concept::Forall(r, Box::new(c))
    }

    /// ≥n r.C.
    pub fn at_least(n: u32, r: RoleId, c: Concept) -> Concept {
        Concept::AtLeast(n, r, Box::new(c))
    }

    /// ≤n r.C.
    pub fn at_most(n: u32, r: RoleId, c: Concept) -> Concept {
        Concept::AtMost(n, r, Box::new(c))
    }

    /// "Exactly n r.C" — the paper's `∃ₙr.C` reading: ≥n ⊓ ≤n.
    pub fn exactly(n: u32, r: RoleId, c: Concept) -> Concept {
        Concept::and(vec![
            Concept::at_least(n, r, c.clone()),
            Concept::at_most(n, r, c),
        ])
    }

    /// Negation normal form: negation only on atoms.
    pub fn nnf(&self) -> Concept {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => self.clone(),
            Concept::And(cs) => Concept::and(cs.iter().map(Concept::nnf).collect()),
            Concept::Or(cs) => Concept::or(cs.iter().map(Concept::nnf).collect()),
            Concept::Exists(r, c) => Concept::exists(*r, c.nnf()),
            Concept::Forall(r, c) => Concept::forall(*r, c.nnf()),
            Concept::AtLeast(n, r, c) => Concept::at_least(*n, *r, c.nnf()),
            Concept::AtMost(n, r, c) => Concept::at_most(*n, *r, c.nnf()),
            Concept::Not(inner) => match inner.as_ref() {
                Concept::Top => Concept::Bottom,
                Concept::Bottom => Concept::Top,
                Concept::Atom(_) => self.clone(),
                Concept::Not(c) => c.nnf(),
                Concept::And(cs) => {
                    Concept::or(cs.iter().map(|c| Concept::not(c.clone()).nnf()).collect())
                }
                Concept::Or(cs) => {
                    Concept::and(cs.iter().map(|c| Concept::not(c.clone()).nnf()).collect())
                }
                Concept::Exists(r, c) => Concept::forall(*r, Concept::not(*c.clone()).nnf()),
                Concept::Forall(r, c) => Concept::exists(*r, Concept::not(*c.clone()).nnf()),
                // ¬(≥n r.C) = ≤(n−1) r.C ; ¬(≥0 r.C) = ⊥
                Concept::AtLeast(n, r, c) => {
                    if *n == 0 {
                        Concept::Bottom
                    } else {
                        Concept::at_most(n - 1, *r, c.nnf())
                    }
                }
                // ¬(≤n r.C) = ≥(n+1) r.C
                Concept::AtMost(n, r, c) => Concept::at_least(n + 1, *r, c.nnf()),
            },
        }
    }

    /// Number of constructors in the expression.
    pub fn size(&self) -> usize {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => 1,
            Concept::Not(c) => 1 + c.size(),
            Concept::And(cs) | Concept::Or(cs) => 1 + cs.iter().map(Concept::size).sum::<usize>(),
            Concept::Exists(_, c)
            | Concept::Forall(_, c)
            | Concept::AtLeast(_, _, c)
            | Concept::AtMost(_, _, c) => 1 + c.size(),
        }
    }

    /// Maximal nesting depth of role restrictions.
    pub fn role_depth(&self) -> usize {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => 0,
            Concept::Not(c) => c.role_depth(),
            Concept::And(cs) | Concept::Or(cs) => {
                cs.iter().map(Concept::role_depth).max().unwrap_or(0)
            }
            Concept::Exists(_, c)
            | Concept::Forall(_, c)
            | Concept::AtLeast(_, _, c)
            | Concept::AtMost(_, _, c) => 1 + c.role_depth(),
        }
    }

    /// All atomic concept ids occurring in the expression.
    pub fn atoms(&self) -> BTreeSet<ConceptId> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<ConceptId>) {
        match self {
            Concept::Top | Concept::Bottom => {}
            Concept::Atom(c) => {
                out.insert(*c);
            }
            Concept::Not(c) => c.collect_atoms(out),
            Concept::And(cs) | Concept::Or(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
            Concept::Exists(_, c)
            | Concept::Forall(_, c)
            | Concept::AtLeast(_, _, c)
            | Concept::AtMost(_, _, c) => c.collect_atoms(out),
        }
    }

    /// All role ids occurring in the expression.
    pub fn roles(&self) -> BTreeSet<RoleId> {
        let mut out = BTreeSet::new();
        self.collect_roles(&mut out);
        out
    }

    fn collect_roles(&self, out: &mut BTreeSet<RoleId>) {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => {}
            Concept::Not(c) => c.collect_roles(out),
            Concept::And(cs) | Concept::Or(cs) => {
                for c in cs {
                    c.collect_roles(out);
                }
            }
            Concept::Exists(r, c)
            | Concept::Forall(r, c)
            | Concept::AtLeast(_, r, c)
            | Concept::AtMost(_, r, c) => {
                out.insert(*r);
                c.collect_roles(out);
            }
        }
    }

    /// True when the expression lies in the EL fragment (⊤, atoms, ⊓,
    /// ∃r.C only).
    pub fn is_el(&self) -> bool {
        match self {
            Concept::Top | Concept::Atom(_) => true,
            Concept::And(cs) => cs.iter().all(Concept::is_el),
            Concept::Exists(_, c) => c.is_el(),
            _ => false,
        }
    }

    /// Pretty-print against a vocabulary.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> ConceptDisplay<'a> {
        ConceptDisplay { c: self, voc }
    }
}

/// Handle to a hash-consed concept in an [`Interner`].
///
/// Two handles from the *same* interner are equal iff the concepts
/// they denote are structurally equal, so equality and hashing are
/// O(1) — the point of interning. The derived `Ord` is by allocation
/// id (an arbitrary but stable total order, used for set storage
/// inside the tableau); for the *structural* order matching
/// [`Concept`]'s derived `Ord`, use [`Interner::cmp_structural`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptRef(u32);

impl ConceptRef {
    /// The raw arena index (exposed for diagnostics only).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// One hash-consed node: a [`Concept`] constructor whose children are
/// handles instead of boxed subtrees. Variant order mirrors `Concept`
/// exactly — [`Interner::cmp_structural`] depends on it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CNode {
    /// ⊤.
    Top,
    /// ⊥.
    Bottom,
    /// An atomic concept name.
    Atom(ConceptId),
    /// ¬C.
    Not(ConceptRef),
    /// C₁ ⊓ … ⊓ Cₙ.
    And(Box<[ConceptRef]>),
    /// C₁ ⊔ … ⊔ Cₙ.
    Or(Box<[ConceptRef]>),
    /// ∃r.C.
    Exists(RoleId, ConceptRef),
    /// ∀r.C.
    Forall(RoleId, ConceptRef),
    /// ≥n r.C.
    AtLeast(u32, RoleId, ConceptRef),
    /// ≤n r.C.
    AtMost(u32, RoleId, ConceptRef),
}

impl CNode {
    /// Variant rank matching `Concept`'s derived discriminant order.
    fn rank(&self) -> u8 {
        match self {
            CNode::Top => 0,
            CNode::Bottom => 1,
            CNode::Atom(_) => 2,
            CNode::Not(_) => 3,
            CNode::And(_) => 4,
            CNode::Or(_) => 5,
            CNode::Exists(_, _) => 6,
            CNode::Forall(_, _) => 7,
            CNode::AtLeast(_, _, _) => 8,
            CNode::AtMost(_, _, _) => 9,
        }
    }
}

/// A hash-consing arena for concepts.
///
/// Every structurally-distinct concept maps to one small
/// [`ConceptRef`] handle, assigned at construction. The tableau's
/// entire expansion loop then runs on `u32` handles: label sets are
/// sets of words, equality blocking compares word sets, and the
/// per-reasoner satisfiability memo keys on a single handle — no
/// deep-tree hashing or `Box`/`Vec` cloning anywhere on the hot path.
///
/// NNF is computed **once per handle** and memoized (`nnf`), as is the
/// NNF of a handle's negation (`neg_nnf`, what the choose-rule needs),
/// so repeated queries against the same TBox never re-normalize.
///
/// Handles are interner-local: two interners assign ids in their own
/// arrival order. Anything that crosses reasoners (the shared
/// [`SatCache`](crate::cache::SatCache)) therefore keys on the
/// externalized structural form, which [`Interner::externalize`]
/// reproduces canonically — the handle-level smart constructors sort
/// with [`Interner::cmp_structural`], which matches `Concept`'s
/// derived `Ord` exactly, so `externalize(nnf(intern(c))) == c.nnf()`
/// (a property the unit tests pin).
#[derive(Debug, Clone, Default)]
pub struct Interner {
    nodes: Vec<CNode>,
    index: crate::fxhash::FxHashMap<CNode, u32>,
    nnf_memo: crate::fxhash::FxHashMap<ConceptRef, ConceptRef>,
    neg_nnf_memo: crate::fxhash::FxHashMap<ConceptRef, ConceptRef>,
    hits: u64,
    misses: u64,
}

impl Interner {
    /// A fresh arena with ⊤ and ⊥ pre-interned.
    pub fn new() -> Self {
        let mut i = Interner::default();
        let top = i.mk(CNode::Top);
        let bottom = i.mk(CNode::Bottom);
        debug_assert_eq!(top, ConceptRef(0));
        debug_assert_eq!(bottom, ConceptRef(1));
        // The constructor probes are bookkeeping, not reuse.
        i.hits = 0;
        i.misses = 0;
        i
    }

    /// Handle for ⊤.
    pub fn top(&self) -> ConceptRef {
        ConceptRef(0)
    }

    /// Handle for ⊥.
    pub fn bottom(&self) -> ConceptRef {
        ConceptRef(1)
    }

    /// The node a handle denotes.
    #[inline]
    pub fn node(&self, c: ConceptRef) -> &CNode {
        &self.nodes[c.0 as usize]
    }

    /// Number of distinct concepts interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only ⊤/⊥ are present.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Hash-cons lookups that found an existing node.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hash-cons lookups that allocated a new node.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Handle of `¬c` if that exact node is already interned; `None`
    /// otherwise. A pure probe: nothing is allocated and the hit/miss
    /// bookkeeping is untouched, so the incremental clash check can
    /// ask "could any label contain the complement of `c`?" in O(1) —
    /// a negation that was never interned cannot appear in any label.
    pub fn probe_not(&self, c: ConceptRef) -> Option<ConceptRef> {
        self.index.get(&CNode::Not(c)).map(|&id| ConceptRef(id))
    }

    /// Hash-cons one node: reuse the existing handle when the exact
    /// node was seen before, allocate otherwise.
    fn mk(&mut self, node: CNode) -> ConceptRef {
        if let Some(&id) = self.index.get(&node) {
            self.hits += 1;
            return ConceptRef(id);
        }
        self.misses += 1;
        let id = u32::try_from(self.nodes.len()).expect("interner overflow");
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        ConceptRef(id)
    }

    /// Intern an atomic concept.
    pub fn atom(&mut self, a: ConceptId) -> ConceptRef {
        self.mk(CNode::Atom(a))
    }

    /// ¬C with double-negation elimination (mirrors [`Concept::not`]).
    pub fn not(&mut self, c: ConceptRef) -> ConceptRef {
        match *self.node(c) {
            CNode::Not(inner) => inner,
            CNode::Top => self.bottom(),
            CNode::Bottom => self.top(),
            _ => self.mk(CNode::Not(c)),
        }
    }

    /// n-ary conjunction (mirrors [`Concept::and`]: flatten one level,
    /// drop ⊤, collapse on ⊥, sort structurally, dedup).
    pub fn and(&mut self, cs: Vec<ConceptRef>) -> ConceptRef {
        let mut flat: Vec<ConceptRef> = Vec::with_capacity(cs.len());
        for c in cs {
            match self.node(c) {
                CNode::And(inner) => flat.extend(inner.iter().copied()),
                CNode::Top => {}
                CNode::Bottom => return self.bottom(),
                _ => flat.push(c),
            }
        }
        flat.sort_by(|&a, &b| self.cmp_structural(a, b));
        flat.dedup();
        match flat.len() {
            0 => self.top(),
            1 => flat[0],
            _ => self.mk(CNode::And(flat.into_boxed_slice())),
        }
    }

    /// n-ary disjunction (mirrors [`Concept::or`]).
    pub fn or(&mut self, cs: Vec<ConceptRef>) -> ConceptRef {
        let mut flat: Vec<ConceptRef> = Vec::with_capacity(cs.len());
        for c in cs {
            match self.node(c) {
                CNode::Or(inner) => flat.extend(inner.iter().copied()),
                CNode::Bottom => {}
                CNode::Top => return self.top(),
                _ => flat.push(c),
            }
        }
        flat.sort_by(|&a, &b| self.cmp_structural(a, b));
        flat.dedup();
        match flat.len() {
            0 => self.bottom(),
            1 => flat[0],
            _ => self.mk(CNode::Or(flat.into_boxed_slice())),
        }
    }

    /// ∃r.C.
    pub fn exists(&mut self, r: RoleId, c: ConceptRef) -> ConceptRef {
        self.mk(CNode::Exists(r, c))
    }

    /// ∀r.C.
    pub fn forall(&mut self, r: RoleId, c: ConceptRef) -> ConceptRef {
        self.mk(CNode::Forall(r, c))
    }

    /// ≥n r.C.
    pub fn at_least(&mut self, n: u32, r: RoleId, c: ConceptRef) -> ConceptRef {
        self.mk(CNode::AtLeast(n, r, c))
    }

    /// ≤n r.C.
    pub fn at_most(&mut self, n: u32, r: RoleId, c: ConceptRef) -> ConceptRef {
        self.mk(CNode::AtMost(n, r, c))
    }

    /// Intern a concept tree as-is (structure-preserving: no
    /// normalization beyond what the tree already carries, so
    /// `externalize(intern(c)) == c`).
    pub fn intern(&mut self, c: &Concept) -> ConceptRef {
        match c {
            Concept::Top => self.top(),
            Concept::Bottom => self.bottom(),
            Concept::Atom(a) => self.mk(CNode::Atom(*a)),
            Concept::Not(x) => {
                let h = self.intern(x);
                self.mk(CNode::Not(h))
            }
            Concept::And(xs) => {
                let hs: Vec<ConceptRef> = xs.iter().map(|x| self.intern(x)).collect();
                self.mk(CNode::And(hs.into_boxed_slice()))
            }
            Concept::Or(xs) => {
                let hs: Vec<ConceptRef> = xs.iter().map(|x| self.intern(x)).collect();
                self.mk(CNode::Or(hs.into_boxed_slice()))
            }
            Concept::Exists(r, x) => {
                let h = self.intern(x);
                self.mk(CNode::Exists(*r, h))
            }
            Concept::Forall(r, x) => {
                let h = self.intern(x);
                self.mk(CNode::Forall(*r, h))
            }
            Concept::AtLeast(n, r, x) => {
                let h = self.intern(x);
                self.mk(CNode::AtLeast(*n, *r, h))
            }
            Concept::AtMost(n, r, x) => {
                let h = self.intern(x);
                self.mk(CNode::AtMost(*n, *r, h))
            }
        }
    }

    /// Rebuild the concept tree a handle denotes.
    pub fn externalize(&self, c: ConceptRef) -> Concept {
        match self.node(c) {
            CNode::Top => Concept::Top,
            CNode::Bottom => Concept::Bottom,
            CNode::Atom(a) => Concept::Atom(*a),
            CNode::Not(x) => Concept::Not(Box::new(self.externalize(*x))),
            CNode::And(xs) => {
                Concept::And(xs.iter().map(|&x| self.externalize(x)).collect())
            }
            CNode::Or(xs) => {
                Concept::Or(xs.iter().map(|&x| self.externalize(x)).collect())
            }
            CNode::Exists(r, x) => Concept::Exists(*r, Box::new(self.externalize(*x))),
            CNode::Forall(r, x) => Concept::Forall(*r, Box::new(self.externalize(*x))),
            CNode::AtLeast(n, r, x) => {
                Concept::AtLeast(*n, *r, Box::new(self.externalize(*x)))
            }
            CNode::AtMost(n, r, x) => {
                Concept::AtMost(*n, *r, Box::new(self.externalize(*x)))
            }
        }
    }

    /// Structural comparison of two handles, identical to the derived
    /// `Ord` on the externalized [`Concept`] trees. Equal handles
    /// short-circuit (hash-consing makes structural equality a word
    /// compare), so the recursion only descends where trees differ.
    pub fn cmp_structural(&self, a: ConceptRef, b: ConceptRef) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        let (na, nb) = (self.node(a), self.node(b));
        let by_rank = na.rank().cmp(&nb.rank());
        if by_rank != Ordering::Equal {
            return by_rank;
        }
        match (na, nb) {
            (CNode::Atom(x), CNode::Atom(y)) => x.cmp(y),
            (CNode::Not(x), CNode::Not(y)) => self.cmp_structural(*x, *y),
            (CNode::And(xs), CNode::And(ys)) | (CNode::Or(xs), CNode::Or(ys)) => {
                for (x, y) in xs.iter().zip(ys.iter()) {
                    let o = self.cmp_structural(*x, *y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                xs.len().cmp(&ys.len())
            }
            (CNode::Exists(r1, x), CNode::Exists(r2, y))
            | (CNode::Forall(r1, x), CNode::Forall(r2, y)) => {
                r1.cmp(r2).then_with(|| self.cmp_structural(*x, *y))
            }
            (CNode::AtLeast(n1, r1, x), CNode::AtLeast(n2, r2, y))
            | (CNode::AtMost(n1, r1, x), CNode::AtMost(n2, r2, y)) => n1
                .cmp(n2)
                .then_with(|| r1.cmp(r2))
                .then_with(|| self.cmp_structural(*x, *y)),
            // Ranks matched above, so the variants match.
            _ => unreachable!("rank-equal nodes must share a variant"),
        }
    }

    /// Negation normal form of a handle, memoized per handle.
    pub fn nnf(&mut self, c: ConceptRef) -> ConceptRef {
        if let Some(&m) = self.nnf_memo.get(&c) {
            return m;
        }
        let node = self.node(c).clone();
        let out = match node {
            CNode::Top | CNode::Bottom | CNode::Atom(_) => c,
            CNode::Not(x) => self.neg_nnf(x),
            CNode::And(xs) => {
                let ys: Vec<ConceptRef> = xs.iter().map(|&x| self.nnf(x)).collect();
                self.and(ys)
            }
            CNode::Or(xs) => {
                let ys: Vec<ConceptRef> = xs.iter().map(|&x| self.nnf(x)).collect();
                self.or(ys)
            }
            CNode::Exists(r, x) => {
                let y = self.nnf(x);
                self.exists(r, y)
            }
            CNode::Forall(r, x) => {
                let y = self.nnf(x);
                self.forall(r, y)
            }
            CNode::AtLeast(n, r, x) => {
                let y = self.nnf(x);
                self.at_least(n, r, y)
            }
            CNode::AtMost(n, r, x) => {
                let y = self.nnf(x);
                self.at_most(n, r, y)
            }
        };
        self.nnf_memo.insert(c, out);
        out
    }

    /// NNF of ¬C, memoized per handle — the choose-rule's query, and
    /// the recursion partner of [`Interner::nnf`] (together they mirror
    /// [`Concept::nnf`] exactly).
    pub fn neg_nnf(&mut self, c: ConceptRef) -> ConceptRef {
        if let Some(&m) = self.neg_nnf_memo.get(&c) {
            return m;
        }
        let node = self.node(c).clone();
        let out = match node {
            CNode::Top => self.bottom(),
            CNode::Bottom => self.top(),
            CNode::Atom(_) => self.mk(CNode::Not(c)),
            CNode::Not(x) => self.nnf(x),
            CNode::And(xs) => {
                let ys: Vec<ConceptRef> = xs.iter().map(|&x| self.neg_nnf(x)).collect();
                self.or(ys)
            }
            CNode::Or(xs) => {
                let ys: Vec<ConceptRef> = xs.iter().map(|&x| self.neg_nnf(x)).collect();
                self.and(ys)
            }
            CNode::Exists(r, x) => {
                let y = self.neg_nnf(x);
                self.forall(r, y)
            }
            CNode::Forall(r, x) => {
                let y = self.neg_nnf(x);
                self.exists(r, y)
            }
            // ¬(≥n r.C) = ≤(n−1) r.C ; ¬(≥0 r.C) = ⊥
            CNode::AtLeast(n, r, x) => {
                if n == 0 {
                    self.bottom()
                } else {
                    let y = self.nnf(x);
                    self.at_most(n - 1, r, y)
                }
            }
            // ¬(≤n r.C) = ≥(n+1) r.C
            CNode::AtMost(n, r, x) => {
                let y = self.nnf(x);
                self.at_least(n + 1, r, y)
            }
        };
        self.neg_nnf_memo.insert(c, out);
        out
    }
}

/// Pretty-printer for [`Concept`].
pub struct ConceptDisplay<'a> {
    c: &'a Concept,
    voc: &'a Vocabulary,
}

impl fmt::Display for ConceptDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.c {
            Concept::Top => write!(f, "⊤"),
            Concept::Bottom => write!(f, "⊥"),
            Concept::Atom(c) => write!(f, "{}", self.voc.concept_name(*c)),
            Concept::Not(c) => write!(f, "¬{}", c.display(self.voc)),
            Concept::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊓ ")?;
                    }
                    write!(f, "{}", c.display(self.voc))?;
                }
                write!(f, ")")
            }
            Concept::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊔ ")?;
                    }
                    write!(f, "{}", c.display(self.voc))?;
                }
                write!(f, ")")
            }
            Concept::Exists(r, c) => {
                write!(f, "∃{}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
            Concept::Forall(r, c) => {
                write!(f, "∀{}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
            Concept::AtLeast(n, r, c) => {
                write!(f, "≥{n} {}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
            Concept::AtMost(n, r, c) => {
                write!(f, "≤{n} {}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> (Vocabulary, ConceptId, ConceptId, RoleId) {
        let mut v = Vocabulary::new();
        let a = v.concept("A");
        let b = v.concept("B");
        let r = v.role("r");
        (v, a, b, r)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        assert_eq!(v.concept("A"), v.concept("A"));
        assert_eq!(v.role("r"), v.role("r"));
        assert_eq!(v.n_concepts(), 1);
        assert_eq!(v.n_roles(), 1);
        assert_eq!(v.find_concept("A"), Some(ConceptId(0)));
        assert_eq!(v.find_concept("Z"), None);
    }

    #[test]
    fn and_flattens_and_dedupes() {
        let (_v, a, b, _r) = voc();
        let c = Concept::and(vec![
            Concept::atom(a),
            Concept::and(vec![Concept::atom(b), Concept::atom(a)]),
            Concept::Top,
        ]);
        assert_eq!(c, Concept::And(vec![Concept::atom(a), Concept::atom(b)]));
    }

    #[test]
    fn and_with_bottom_collapses() {
        let (_v, a, _b, _r) = voc();
        assert_eq!(
            Concept::and(vec![Concept::atom(a), Concept::Bottom]),
            Concept::Bottom
        );
        assert_eq!(Concept::and(vec![]), Concept::Top);
        assert_eq!(Concept::or(vec![]), Concept::Bottom);
    }

    #[test]
    fn or_with_top_collapses() {
        let (_v, a, _b, _r) = voc();
        assert_eq!(
            Concept::or(vec![Concept::atom(a), Concept::Top]),
            Concept::Top
        );
    }

    #[test]
    fn double_negation_eliminated() {
        let (_v, a, _b, _r) = voc();
        let c = Concept::not(Concept::not(Concept::atom(a)));
        assert_eq!(c, Concept::atom(a));
    }

    #[test]
    fn nnf_pushes_negation_through_quantifiers() {
        let (_v, a, _b, r) = voc();
        let c = Concept::not(Concept::exists(r, Concept::atom(a)));
        assert_eq!(c.nnf(), Concept::forall(r, Concept::not(Concept::atom(a))));
        let d = Concept::not(Concept::forall(r, Concept::atom(a)));
        assert_eq!(d.nnf(), Concept::exists(r, Concept::not(Concept::atom(a))));
    }

    #[test]
    fn nnf_de_morgan() {
        let (_v, a, b, _r) = voc();
        let c = Concept::not(Concept::and(vec![Concept::atom(a), Concept::atom(b)]));
        assert_eq!(
            c.nnf(),
            Concept::or(vec![
                Concept::not(Concept::atom(a)),
                Concept::not(Concept::atom(b))
            ])
        );
    }

    #[test]
    fn nnf_number_restrictions() {
        let (_v, a, _b, r) = voc();
        let c = Concept::not(Concept::at_least(3, r, Concept::atom(a)));
        assert_eq!(c.nnf(), Concept::at_most(2, r, Concept::atom(a)));
        let d = Concept::not(Concept::at_most(3, r, Concept::atom(a)));
        assert_eq!(d.nnf(), Concept::at_least(4, r, Concept::atom(a)));
        let z = Concept::not(Concept::at_least(0, r, Concept::atom(a)));
        assert_eq!(z.nnf(), Concept::Bottom);
    }

    #[test]
    fn nnf_is_idempotent() {
        let (_v, a, b, r) = voc();
        let c = Concept::not(Concept::and(vec![
            Concept::exists(r, Concept::atom(a)),
            Concept::forall(r, Concept::or(vec![Concept::atom(b), Concept::Top])),
        ]));
        assert_eq!(c.nnf(), c.nnf().nnf());
    }

    #[test]
    fn exactly_expands_to_min_and_max() {
        let (_v, a, _b, r) = voc();
        let c = Concept::exactly(4, r, Concept::atom(a));
        match c {
            Concept::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts
                    .iter()
                    .any(|p| matches!(p, Concept::AtLeast(4, _, _))));
                assert!(parts.iter().any(|p| matches!(p, Concept::AtMost(4, _, _))));
            }
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn size_depth_atoms_roles() {
        let (_v, a, b, r) = voc();
        let c = Concept::exists(
            r,
            Concept::and(vec![Concept::atom(a), Concept::atom(b)]),
        );
        assert_eq!(c.size(), 4);
        assert_eq!(c.role_depth(), 1);
        assert_eq!(c.atoms().len(), 2);
        assert_eq!(c.roles().len(), 1);
    }

    #[test]
    fn el_fragment_detection() {
        let (_v, a, b, r) = voc();
        let el = Concept::exists(r, Concept::and(vec![Concept::atom(a), Concept::atom(b)]));
        assert!(el.is_el());
        assert!(!Concept::not(Concept::atom(a)).is_el());
        assert!(!Concept::forall(r, Concept::atom(a)).is_el());
        assert!(!Concept::at_least(2, r, Concept::atom(a)).is_el());
    }

    #[test]
    fn display_round_trip_shape() {
        let (v, a, b, r) = voc();
        let c = Concept::and(vec![
            Concept::atom(a),
            Concept::exists(r, Concept::atom(b)),
        ]);
        let s = format!("{}", c.display(&v));
        assert!(s.contains('A') && s.contains("∃r.B"));
    }

    /// A small corpus of structurally varied concepts exercising every
    /// constructor, nesting, and normalization edge case.
    fn interner_corpus() -> Vec<Concept> {
        let (_v, a, b, r) = voc();
        vec![
            Concept::Top,
            Concept::Bottom,
            Concept::atom(a),
            Concept::not(Concept::atom(a)),
            Concept::not(Concept::not(Concept::atom(b))),
            Concept::and(vec![Concept::atom(b), Concept::atom(a)]),
            Concept::or(vec![Concept::atom(a), Concept::Bottom]),
            Concept::exists(r, Concept::and(vec![Concept::atom(a), Concept::atom(b)])),
            Concept::forall(r, Concept::or(vec![Concept::atom(a), Concept::atom(b)])),
            Concept::at_least(2, r, Concept::atom(a)),
            Concept::at_most(0, r, Concept::atom(b)),
            Concept::not(Concept::and(vec![
                Concept::exists(r, Concept::atom(a)),
                Concept::forall(r, Concept::not(Concept::atom(b))),
                Concept::at_least(3, r, Concept::atom(a)),
                Concept::at_most(1, r, Concept::atom(b)),
            ])),
            Concept::not(Concept::at_least(0, r, Concept::atom(a))),
            Concept::not(Concept::or(vec![
                Concept::Top,
                Concept::exists(r, Concept::not(Concept::atom(a))),
            ])),
            Concept::exactly(2, r, Concept::not(Concept::atom(a))),
        ]
    }

    #[test]
    fn intern_externalize_round_trips() {
        let mut i = Interner::new();
        for c in interner_corpus() {
            let h = i.intern(&c);
            assert_eq!(i.externalize(h), c, "round trip for {c:?}");
        }
    }

    #[test]
    fn interning_is_hash_consed() {
        let mut i = Interner::new();
        let corpus = interner_corpus();
        let first: Vec<ConceptRef> = corpus.iter().map(|c| i.intern(c)).collect();
        let len = i.len();
        let second: Vec<ConceptRef> = corpus.iter().map(|c| i.intern(c)).collect();
        assert_eq!(first, second, "same structure must yield same handle");
        assert_eq!(i.len(), len, "re-interning must not allocate");
        assert!(i.hits() > 0);
    }

    #[test]
    fn handle_nnf_matches_concept_nnf() {
        let mut i = Interner::new();
        for c in interner_corpus() {
            let h = i.intern(&c);
            let n = i.nnf(h);
            assert_eq!(
                i.externalize(n),
                c.nnf(),
                "externalized handle NNF must equal Concept::nnf for {c:?}"
            );
        }
    }

    #[test]
    fn handle_neg_nnf_matches_negated_concept_nnf() {
        let mut i = Interner::new();
        for c in interner_corpus() {
            let h = i.intern(&c);
            let n = i.neg_nnf(h);
            assert_eq!(
                i.externalize(n),
                Concept::not(c.clone()).nnf(),
                "neg_nnf must equal nnf of the negation for {c:?}"
            );
        }
    }

    #[test]
    fn cmp_structural_matches_derived_ord() {
        let mut i = Interner::new();
        let corpus = interner_corpus();
        let handles: Vec<ConceptRef> = corpus.iter().map(|c| i.intern(c)).collect();
        for (x, hx) in corpus.iter().zip(&handles) {
            for (y, hy) in corpus.iter().zip(&handles) {
                assert_eq!(
                    i.cmp_structural(*hx, *hy),
                    x.cmp(y),
                    "structural order must match Ord for {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn nnf_is_memoized_per_handle() {
        let mut i = Interner::new();
        let (_v, a, _b, r) = voc();
        let c = Concept::not(Concept::exists(r, Concept::atom(a)));
        let h = i.intern(&c);
        let n1 = i.nnf(h);
        let misses = i.misses();
        let n2 = i.nnf(h);
        assert_eq!(n1, n2);
        assert_eq!(i.misses(), misses, "second nnf must not build nodes");
    }
}
