//! The ALCQ concept language.
//!
//! Concepts are built from interned atomic concept names and role
//! names with the constructors ⊤, ⊥, ¬, ⊓, ⊔, ∃r.C, ∀r.C and the
//! qualified number restrictions ≥n r.C / ≤n r.C (the paper's
//! `∃₄has.wheels` is `≥4 has.wheel ⊓ ≤4 has.wheel`).

use std::collections::BTreeSet;
use std::fmt;

/// Interned atomic concept name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub u32);

/// Interned role name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoleId(pub u32);

/// Interner for concept and role names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    concepts: Vec<String>,
    roles: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a concept name (idempotent).
    pub fn concept(&mut self, name: &str) -> ConceptId {
        if let Some(i) = self.concepts.iter().position(|n| n == name) {
            return ConceptId(i as u32);
        }
        self.concepts.push(name.to_string());
        ConceptId((self.concepts.len() - 1) as u32)
    }

    /// Intern a role name (idempotent).
    pub fn role(&mut self, name: &str) -> RoleId {
        if let Some(i) = self.roles.iter().position(|n| n == name) {
            return RoleId(i as u32);
        }
        self.roles.push(name.to_string());
        RoleId((self.roles.len() - 1) as u32)
    }

    /// Look up a concept id by name without interning.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        self.concepts
            .iter()
            .position(|n| n == name)
            .map(|i| ConceptId(i as u32))
    }

    /// Look up a role id by name without interning.
    pub fn find_role(&self, name: &str) -> Option<RoleId> {
        self.roles
            .iter()
            .position(|n| n == name)
            .map(|i| RoleId(i as u32))
    }

    /// Name of a concept id.
    pub fn concept_name(&self, c: ConceptId) -> &str {
        &self.concepts[c.0 as usize]
    }

    /// Name of a role id.
    pub fn role_name(&self, r: RoleId) -> &str {
        &self.roles[r.0 as usize]
    }

    /// Number of interned concept names.
    pub fn n_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Number of interned role names.
    pub fn n_roles(&self) -> usize {
        self.roles.len()
    }

    /// All concept ids.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    /// All role ids.
    pub fn roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        (0..self.roles.len() as u32).map(RoleId)
    }
}

/// An ALCQ concept expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Concept {
    /// ⊤ — everything.
    Top,
    /// ⊥ — nothing.
    Bottom,
    /// An atomic concept name.
    Atom(ConceptId),
    /// ¬C.
    Not(Box<Concept>),
    /// C₁ ⊓ … ⊓ Cₙ (n ≥ 2 after normalization).
    And(Vec<Concept>),
    /// C₁ ⊔ … ⊔ Cₙ.
    Or(Vec<Concept>),
    /// ∃r.C.
    Exists(RoleId, Box<Concept>),
    /// ∀r.C.
    Forall(RoleId, Box<Concept>),
    /// ≥n r.C.
    AtLeast(u32, RoleId, Box<Concept>),
    /// ≤n r.C.
    AtMost(u32, RoleId, Box<Concept>),
}

impl Concept {
    /// Atomic concept.
    pub fn atom(c: ConceptId) -> Concept {
        Concept::Atom(c)
    }

    /// Negation (with double-negation elimination).
    #[allow(clippy::should_implement_trait)] // `Concept::not` mirrors DL syntax ¬C
    pub fn not(c: Concept) -> Concept {
        match c {
            Concept::Not(inner) => *inner,
            Concept::Top => Concept::Bottom,
            Concept::Bottom => Concept::Top,
            other => Concept::Not(Box::new(other)),
        }
    }

    /// n-ary conjunction, flattening nested conjunctions and dropping ⊤.
    pub fn and(cs: Vec<Concept>) -> Concept {
        let mut flat = vec![];
        for c in cs {
            match c {
                Concept::And(inner) => flat.extend(inner),
                Concept::Top => {}
                Concept::Bottom => return Concept::Bottom,
                other => flat.push(other),
            }
        }
        flat.sort();
        flat.dedup();
        match flat.len() {
            0 => Concept::Top,
            1 => flat.pop().expect("len checked"),
            _ => Concept::And(flat),
        }
    }

    /// n-ary disjunction, flattening and dropping ⊥.
    pub fn or(cs: Vec<Concept>) -> Concept {
        let mut flat = vec![];
        for c in cs {
            match c {
                Concept::Or(inner) => flat.extend(inner),
                Concept::Bottom => {}
                Concept::Top => return Concept::Top,
                other => flat.push(other),
            }
        }
        flat.sort();
        flat.dedup();
        match flat.len() {
            0 => Concept::Bottom,
            1 => flat.pop().expect("len checked"),
            _ => Concept::Or(flat),
        }
    }

    /// ∃r.C.
    pub fn exists(r: RoleId, c: Concept) -> Concept {
        Concept::Exists(r, Box::new(c))
    }

    /// ∀r.C.
    pub fn forall(r: RoleId, c: Concept) -> Concept {
        Concept::Forall(r, Box::new(c))
    }

    /// ≥n r.C.
    pub fn at_least(n: u32, r: RoleId, c: Concept) -> Concept {
        Concept::AtLeast(n, r, Box::new(c))
    }

    /// ≤n r.C.
    pub fn at_most(n: u32, r: RoleId, c: Concept) -> Concept {
        Concept::AtMost(n, r, Box::new(c))
    }

    /// "Exactly n r.C" — the paper's `∃ₙr.C` reading: ≥n ⊓ ≤n.
    pub fn exactly(n: u32, r: RoleId, c: Concept) -> Concept {
        Concept::and(vec![
            Concept::at_least(n, r, c.clone()),
            Concept::at_most(n, r, c),
        ])
    }

    /// Negation normal form: negation only on atoms.
    pub fn nnf(&self) -> Concept {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => self.clone(),
            Concept::And(cs) => Concept::and(cs.iter().map(Concept::nnf).collect()),
            Concept::Or(cs) => Concept::or(cs.iter().map(Concept::nnf).collect()),
            Concept::Exists(r, c) => Concept::exists(*r, c.nnf()),
            Concept::Forall(r, c) => Concept::forall(*r, c.nnf()),
            Concept::AtLeast(n, r, c) => Concept::at_least(*n, *r, c.nnf()),
            Concept::AtMost(n, r, c) => Concept::at_most(*n, *r, c.nnf()),
            Concept::Not(inner) => match inner.as_ref() {
                Concept::Top => Concept::Bottom,
                Concept::Bottom => Concept::Top,
                Concept::Atom(_) => self.clone(),
                Concept::Not(c) => c.nnf(),
                Concept::And(cs) => {
                    Concept::or(cs.iter().map(|c| Concept::not(c.clone()).nnf()).collect())
                }
                Concept::Or(cs) => {
                    Concept::and(cs.iter().map(|c| Concept::not(c.clone()).nnf()).collect())
                }
                Concept::Exists(r, c) => Concept::forall(*r, Concept::not(*c.clone()).nnf()),
                Concept::Forall(r, c) => Concept::exists(*r, Concept::not(*c.clone()).nnf()),
                // ¬(≥n r.C) = ≤(n−1) r.C ; ¬(≥0 r.C) = ⊥
                Concept::AtLeast(n, r, c) => {
                    if *n == 0 {
                        Concept::Bottom
                    } else {
                        Concept::at_most(n - 1, *r, c.nnf())
                    }
                }
                // ¬(≤n r.C) = ≥(n+1) r.C
                Concept::AtMost(n, r, c) => Concept::at_least(n + 1, *r, c.nnf()),
            },
        }
    }

    /// Number of constructors in the expression.
    pub fn size(&self) -> usize {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => 1,
            Concept::Not(c) => 1 + c.size(),
            Concept::And(cs) | Concept::Or(cs) => 1 + cs.iter().map(Concept::size).sum::<usize>(),
            Concept::Exists(_, c)
            | Concept::Forall(_, c)
            | Concept::AtLeast(_, _, c)
            | Concept::AtMost(_, _, c) => 1 + c.size(),
        }
    }

    /// Maximal nesting depth of role restrictions.
    pub fn role_depth(&self) -> usize {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => 0,
            Concept::Not(c) => c.role_depth(),
            Concept::And(cs) | Concept::Or(cs) => {
                cs.iter().map(Concept::role_depth).max().unwrap_or(0)
            }
            Concept::Exists(_, c)
            | Concept::Forall(_, c)
            | Concept::AtLeast(_, _, c)
            | Concept::AtMost(_, _, c) => 1 + c.role_depth(),
        }
    }

    /// All atomic concept ids occurring in the expression.
    pub fn atoms(&self) -> BTreeSet<ConceptId> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<ConceptId>) {
        match self {
            Concept::Top | Concept::Bottom => {}
            Concept::Atom(c) => {
                out.insert(*c);
            }
            Concept::Not(c) => c.collect_atoms(out),
            Concept::And(cs) | Concept::Or(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
            Concept::Exists(_, c)
            | Concept::Forall(_, c)
            | Concept::AtLeast(_, _, c)
            | Concept::AtMost(_, _, c) => c.collect_atoms(out),
        }
    }

    /// All role ids occurring in the expression.
    pub fn roles(&self) -> BTreeSet<RoleId> {
        let mut out = BTreeSet::new();
        self.collect_roles(&mut out);
        out
    }

    fn collect_roles(&self, out: &mut BTreeSet<RoleId>) {
        match self {
            Concept::Top | Concept::Bottom | Concept::Atom(_) => {}
            Concept::Not(c) => c.collect_roles(out),
            Concept::And(cs) | Concept::Or(cs) => {
                for c in cs {
                    c.collect_roles(out);
                }
            }
            Concept::Exists(r, c)
            | Concept::Forall(r, c)
            | Concept::AtLeast(_, r, c)
            | Concept::AtMost(_, r, c) => {
                out.insert(*r);
                c.collect_roles(out);
            }
        }
    }

    /// True when the expression lies in the EL fragment (⊤, atoms, ⊓,
    /// ∃r.C only).
    pub fn is_el(&self) -> bool {
        match self {
            Concept::Top | Concept::Atom(_) => true,
            Concept::And(cs) => cs.iter().all(Concept::is_el),
            Concept::Exists(_, c) => c.is_el(),
            _ => false,
        }
    }

    /// Pretty-print against a vocabulary.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> ConceptDisplay<'a> {
        ConceptDisplay { c: self, voc }
    }
}

/// Pretty-printer for [`Concept`].
pub struct ConceptDisplay<'a> {
    c: &'a Concept,
    voc: &'a Vocabulary,
}

impl fmt::Display for ConceptDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.c {
            Concept::Top => write!(f, "⊤"),
            Concept::Bottom => write!(f, "⊥"),
            Concept::Atom(c) => write!(f, "{}", self.voc.concept_name(*c)),
            Concept::Not(c) => write!(f, "¬{}", c.display(self.voc)),
            Concept::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊓ ")?;
                    }
                    write!(f, "{}", c.display(self.voc))?;
                }
                write!(f, ")")
            }
            Concept::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊔ ")?;
                    }
                    write!(f, "{}", c.display(self.voc))?;
                }
                write!(f, ")")
            }
            Concept::Exists(r, c) => {
                write!(f, "∃{}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
            Concept::Forall(r, c) => {
                write!(f, "∀{}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
            Concept::AtLeast(n, r, c) => {
                write!(f, "≥{n} {}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
            Concept::AtMost(n, r, c) => {
                write!(f, "≤{n} {}.{}", self.voc.role_name(*r), c.display(self.voc))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> (Vocabulary, ConceptId, ConceptId, RoleId) {
        let mut v = Vocabulary::new();
        let a = v.concept("A");
        let b = v.concept("B");
        let r = v.role("r");
        (v, a, b, r)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        assert_eq!(v.concept("A"), v.concept("A"));
        assert_eq!(v.role("r"), v.role("r"));
        assert_eq!(v.n_concepts(), 1);
        assert_eq!(v.n_roles(), 1);
        assert_eq!(v.find_concept("A"), Some(ConceptId(0)));
        assert_eq!(v.find_concept("Z"), None);
    }

    #[test]
    fn and_flattens_and_dedupes() {
        let (_v, a, b, _r) = voc();
        let c = Concept::and(vec![
            Concept::atom(a),
            Concept::and(vec![Concept::atom(b), Concept::atom(a)]),
            Concept::Top,
        ]);
        assert_eq!(c, Concept::And(vec![Concept::atom(a), Concept::atom(b)]));
    }

    #[test]
    fn and_with_bottom_collapses() {
        let (_v, a, _b, _r) = voc();
        assert_eq!(
            Concept::and(vec![Concept::atom(a), Concept::Bottom]),
            Concept::Bottom
        );
        assert_eq!(Concept::and(vec![]), Concept::Top);
        assert_eq!(Concept::or(vec![]), Concept::Bottom);
    }

    #[test]
    fn or_with_top_collapses() {
        let (_v, a, _b, _r) = voc();
        assert_eq!(
            Concept::or(vec![Concept::atom(a), Concept::Top]),
            Concept::Top
        );
    }

    #[test]
    fn double_negation_eliminated() {
        let (_v, a, _b, _r) = voc();
        let c = Concept::not(Concept::not(Concept::atom(a)));
        assert_eq!(c, Concept::atom(a));
    }

    #[test]
    fn nnf_pushes_negation_through_quantifiers() {
        let (_v, a, _b, r) = voc();
        let c = Concept::not(Concept::exists(r, Concept::atom(a)));
        assert_eq!(c.nnf(), Concept::forall(r, Concept::not(Concept::atom(a))));
        let d = Concept::not(Concept::forall(r, Concept::atom(a)));
        assert_eq!(d.nnf(), Concept::exists(r, Concept::not(Concept::atom(a))));
    }

    #[test]
    fn nnf_de_morgan() {
        let (_v, a, b, _r) = voc();
        let c = Concept::not(Concept::and(vec![Concept::atom(a), Concept::atom(b)]));
        assert_eq!(
            c.nnf(),
            Concept::or(vec![
                Concept::not(Concept::atom(a)),
                Concept::not(Concept::atom(b))
            ])
        );
    }

    #[test]
    fn nnf_number_restrictions() {
        let (_v, a, _b, r) = voc();
        let c = Concept::not(Concept::at_least(3, r, Concept::atom(a)));
        assert_eq!(c.nnf(), Concept::at_most(2, r, Concept::atom(a)));
        let d = Concept::not(Concept::at_most(3, r, Concept::atom(a)));
        assert_eq!(d.nnf(), Concept::at_least(4, r, Concept::atom(a)));
        let z = Concept::not(Concept::at_least(0, r, Concept::atom(a)));
        assert_eq!(z.nnf(), Concept::Bottom);
    }

    #[test]
    fn nnf_is_idempotent() {
        let (_v, a, b, r) = voc();
        let c = Concept::not(Concept::and(vec![
            Concept::exists(r, Concept::atom(a)),
            Concept::forall(r, Concept::or(vec![Concept::atom(b), Concept::Top])),
        ]));
        assert_eq!(c.nnf(), c.nnf().nnf());
    }

    #[test]
    fn exactly_expands_to_min_and_max() {
        let (_v, a, _b, r) = voc();
        let c = Concept::exactly(4, r, Concept::atom(a));
        match c {
            Concept::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts
                    .iter()
                    .any(|p| matches!(p, Concept::AtLeast(4, _, _))));
                assert!(parts.iter().any(|p| matches!(p, Concept::AtMost(4, _, _))));
            }
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn size_depth_atoms_roles() {
        let (_v, a, b, r) = voc();
        let c = Concept::exists(
            r,
            Concept::and(vec![Concept::atom(a), Concept::atom(b)]),
        );
        assert_eq!(c.size(), 4);
        assert_eq!(c.role_depth(), 1);
        assert_eq!(c.atoms().len(), 2);
        assert_eq!(c.roles().len(), 1);
    }

    #[test]
    fn el_fragment_detection() {
        let (_v, a, b, r) = voc();
        let el = Concept::exists(r, Concept::and(vec![Concept::atom(a), Concept::atom(b)]));
        assert!(el.is_el());
        assert!(!Concept::not(Concept::atom(a)).is_el());
        assert!(!Concept::forall(r, Concept::atom(a)).is_el());
        assert!(!Concept::at_least(2, r, Concept::atom(a)).is_el());
    }

    #[test]
    fn display_round_trip_shape() {
        let (v, a, b, r) = voc();
        let c = Concept::and(vec![
            Concept::atom(a),
            Concept::exists(r, Concept::atom(b)),
        ]);
        let s = format!("{}", c.display(&v));
        assert!(s.contains('A') && s.contains("∃r.B"));
    }
}
