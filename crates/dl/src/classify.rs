//! Classification: computing the full subsumption hierarchy over the
//! named concepts of a TBox.

use crate::cache::{tbox_fingerprint, SatCache};
use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointState, ResumeOutcome};
use crate::concept::{Concept, ConceptId, Vocabulary};
use crate::el::ElClassifier;
use crate::error::Result;
use crate::tableau::Tableau;
use crate::tbox::TBox;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use summa_guard::{Budget, Governed, Interrupt, Meter, Spend};

/// The computed hierarchy: for every named concept, its full set of
/// named subsumers (reflexive–transitive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassHierarchy {
    subsumers: BTreeMap<ConceptId, BTreeSet<ConceptId>>,
}

impl ClassHierarchy {
    /// Does `sup` subsume `sub`?
    pub fn subsumes(&self, sup: ConceptId, sub: ConceptId) -> bool {
        self.subsumers
            .get(&sub)
            .map(|s| s.contains(&sup))
            .unwrap_or(false)
    }

    /// Equivalent concepts (mutual subsumption).
    pub fn equivalent(&self, a: ConceptId, b: ConceptId) -> bool {
        self.subsumes(a, b) && self.subsumes(b, a)
    }

    /// All subsumers of `c` (including itself), as an owned set.
    /// Prefer [`ClassHierarchy::subsumers_ref`] when a borrow will do —
    /// this clones the whole `BTreeSet` per call.
    pub fn subsumers_of(&self, c: ConceptId) -> BTreeSet<ConceptId> {
        self.subsumers.get(&c).cloned().unwrap_or_default()
    }

    /// Borrowing accessor for the subsumers of `c`: `None` when `c` is
    /// not in the hierarchy (undecided under an interrupted budget, or
    /// simply unknown). The clone-free path for membership tests and
    /// iteration.
    pub fn subsumers_ref(&self, c: ConceptId) -> Option<&BTreeSet<ConceptId>> {
        self.subsumers.get(&c)
    }

    /// Direct (non-transitive, non-reflexive) parents of `c`: subsumers
    /// with no strictly smaller subsumer in between.
    pub fn parents_of(&self, c: ConceptId) -> BTreeSet<ConceptId> {
        static EMPTY: BTreeSet<ConceptId> = BTreeSet::new();
        let subs = self.subsumers_ref(c).unwrap_or(&EMPTY);
        let strict: BTreeSet<ConceptId> = subs
            .iter()
            .copied()
            .filter(|&s| s != c && !self.equivalent(s, c))
            .collect();
        strict
            .iter()
            .copied()
            .filter(|&p| {
                !strict
                    .iter()
                    .any(|&q| q != p && self.subsumes(p, q) && !self.equivalent(p, q))
            })
            .collect()
    }

    /// All concepts in the hierarchy.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        self.subsumers.keys().copied()
    }

    /// Number of subsumption pairs (reflexive included).
    pub fn n_pairs(&self) -> usize {
        self.subsumers.values().map(BTreeSet::len).sum()
    }

    /// Render as an indented tree-ish listing of parent links.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        for c in self.concepts() {
            let parents = self.parents_of(c);
            if parents.is_empty() {
                out.push_str(&format!("{} ⊑ ⊤\n", voc.concept_name(c)));
            }
            for p in parents {
                out.push_str(&format!(
                    "{} ⊑ {}\n",
                    voc.concept_name(c),
                    voc.concept_name(p)
                ));
            }
        }
        out
    }
}

/// A classification strategy.
pub trait Classifier {
    /// Compute the subsumer sets for all named concepts of the TBox.
    fn classify(&mut self, tbox: &TBox, voc: &Vocabulary) -> Result<ClassHierarchy>;

    /// Budget-governed classification. One envelope bounds the whole
    /// run (all inner subsumption tests share a single meter); on
    /// exhaustion or cancellation the partial hierarchy contains the
    /// subsumptions proved so far — a sound under-approximation in
    /// which an absent pair means *not proved*, not *disproved*.
    fn classify_governed(
        &mut self,
        tbox: &TBox,
        voc: &Vocabulary,
        budget: &Budget,
    ) -> Governed<ClassHierarchy>;
}

/// Counters from one classification run: how many satisfiability
/// tests were actually issued to the tableau, and how many of the
/// n² grid cells were decided without one.
///
/// The accounting invariant: `cells = sat_tests − row_checks + pruned`
/// where `row_checks` is one per row whose atom needed an explicit
/// satisfiability probe — every cell is either tested or pruned, and
/// the row probes are the only extra tests on top of the cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyStats {
    /// Satisfiability calls issued (cell tests + per-row probes).
    pub sat_tests: u64,
    /// Grid cells decided without a satisfiability call.
    pub pruned: u64,
    /// Total grid cells decided (n² on a completed run).
    pub cells: u64,
}

impl ClassifyStats {
    fn absorb(&mut self, other: ClassifyStats) {
        self.sat_tests += other.sat_tests;
        self.pruned += other.pruned;
        self.cells += other.cells;
    }
}

/// The told-subsumer index: subsumption edges that are *syntactically
/// evident* in the TBox and therefore free to seed.
///
/// An axiom `A ⊑ B` (or `A ⊑ B ⊓ C ⊓ …`) with atomic left-hand side
/// states its right-hand atoms as subsumers of `A` outright; `A ⊑ ⊥`
/// marks `A` told-unsatisfiable. The index stores the
/// reflexive–transitive closure of those edges, plus the top-down
/// candidate order (ascending told-closure size) the enhanced
/// traversal tests candidates in — most-general first, so one refuted
/// general candidate prunes its whole told subtree.
///
/// Every told edge is entailed by the TBox, so seeding from the index
/// can never disagree with the tableau — which is what keeps the
/// enhanced hierarchy byte-identical to brute force.
struct ToldIndex {
    /// The named concepts of the TBox, in their canonical order.
    atoms: Vec<ConceptId>,
    /// `closure[i]`: indices of the told subsumers of atom `i`
    /// (reflexive–transitive), sorted ascending.
    closure: Vec<Vec<usize>>,
    /// Atom `i` is told-unsatisfiable (`⊑ ⊥` through told edges).
    told_unsat: Vec<bool>,
    /// Candidate processing order: ascending told-closure size
    /// (most-general first), ties by index.
    order: Vec<usize>,
}

impl ToldIndex {
    fn build(tbox: &TBox) -> Self {
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        let n = atoms.len();
        let pos: BTreeMap<ConceptId, usize> =
            atoms.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut bottom = vec![false; n];
        for (l, r) in tbox.gcis() {
            let Concept::Atom(a) = l else { continue };
            let Some(&i) = pos.get(&a) else { continue };
            match &r {
                Concept::Atom(b) => {
                    if let Some(&j) = pos.get(b) {
                        edges[i].insert(j);
                    }
                }
                // A ⊑ B ⊓ C ⊓ …: every atomic conjunct is told.
                Concept::And(parts) => {
                    for p in parts {
                        if let Concept::Atom(b) = p {
                            if let Some(&j) = pos.get(b) {
                                edges[i].insert(j);
                            }
                        }
                    }
                }
                Concept::Bottom => bottom[i] = true,
                _ => {}
            }
        }
        // Reflexive–transitive closure by per-atom BFS (n is the named
        // concept count; the closure is tiny next to one sat call).
        let closure: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut seen: BTreeSet<usize> = BTreeSet::new();
                let mut frontier = vec![i];
                seen.insert(i);
                while let Some(x) = frontier.pop() {
                    for &y in &edges[x] {
                        if seen.insert(y) {
                            frontier.push(y);
                        }
                    }
                }
                seen.into_iter().collect()
            })
            .collect();
        let told_unsat: Vec<bool> = (0..n)
            .map(|i| closure[i].iter().any(|&j| bottom[j]))
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&j| (closure[j].len(), j));
        ToldIndex {
            atoms,
            closure,
            told_unsat,
            order,
        }
    }
}

/// Per-row slice of [`ClassifyStats`].
type RowStats = ClassifyStats;

/// Charge one deterministic ledger step for a cell decided without a
/// satisfiability test. Pruning must stay *visible* to governance:
/// Spend remains a pure function of the input, budgets can interrupt
/// between pruned cells exactly as between tested ones, and the
/// `dl.classify.pruned` counter reconciles with the ledger
/// (steps = Σ dl.rule.* + dl.classify.pruned).
fn charge_pruned(meter: &mut Meter, stats: &mut RowStats) -> std::result::Result<(), Interrupt> {
    meter.charge(1)?;
    meter.count("dl.classify.pruned", 1);
    stats.pruned += 1;
    stats.cells += 1;
    Ok(())
}

/// Decide one row of the subsumption grid (all named subsumers of
/// `told.atoms[i]`) with the enhanced traversal:
///
/// 1. told subsumers are seeded free (every told edge is entailed);
/// 2. one satisfiability probe of the row atom itself decides *whole
///    rows* of incoherent TBoxes at once (`A` unsatisfiable ⟹ `A ⊑ B`
///    for every `B`), skipped when the index already tells `A ⊑ ⊥`;
/// 3. remaining candidates are tested most-general-first; a refuted
///    candidate `S` prunes every untested candidate below it in the
///    told hierarchy (`B ⊑told S` and `A ⋢ S` ⟹ `A ⋢ B`), and a
///    proved `A ⊑ B` propagates positively to `B`'s told subsumers.
///
/// Every skip is licensed by an entailment, so the decided row is
/// *exactly* the brute-force row — which is why enhanced and
/// brute-force hierarchies are byte-identical, including under
/// interrupted budgets (a partial differs only in which rows
/// completed, never in a completed row's content).
fn classify_row(
    reasoner: &mut Tableau,
    meter: &mut Meter,
    told: &ToldIndex,
    i: usize,
) -> std::result::Result<(BTreeSet<ConceptId>, RowStats), Interrupt> {
    let n = told.atoms.len();
    let a = told.atoms[i];
    // Chaos-injection site: a scheduled panic here exercises the
    // executor's supervised retry; cancel/trip exercise the partial
    // row contract.
    meter.fault_point("dl.classify.row")?;
    let mut stats = RowStats::default();
    let mut decided: Vec<Option<bool>> = vec![None; n];

    // 1. Told subsumers (including the reflexive self-edge) are free.
    for &j in &told.closure[i] {
        decided[j] = Some(true);
        charge_pruned(meter, &mut stats)?;
    }

    // 2. Row probe: an unsatisfiable atom subsumes under everything.
    let row_sat = if told.told_unsat[i] {
        false
    } else {
        stats.sat_tests += 1;
        meter.count("dl.classify.sat_tests", 1);
        reasoner.sat_metered(&Concept::atom(a), meter)?
    };
    if !row_sat {
        for slot in decided.iter_mut() {
            if slot.is_none() {
                *slot = Some(true);
                charge_pruned(meter, &mut stats)?;
            }
        }
    } else {
        // 3. Top-down traversal of the remaining candidates.
        for &j in &told.order {
            if decided[j].is_some() {
                continue;
            }
            // Negative pruning: a refuted told-superconcept of the
            // candidate refutes the candidate.
            if told.closure[j]
                .iter()
                .any(|&s| decided[s] == Some(false))
            {
                decided[j] = Some(false);
                charge_pruned(meter, &mut stats)?;
                continue;
            }
            stats.sat_tests += 1;
            stats.cells += 1;
            meter.count("dl.classify.sat_tests", 1);
            let query = Concept::and(vec![
                Concept::atom(a),
                Concept::not(Concept::atom(told.atoms[j])),
            ]);
            let subsumed = !reasoner.sat_metered(&query, meter)?;
            decided[j] = Some(subsumed);
            if subsumed {
                // Positive propagation: A ⊑ B and B ⊑told S ⟹ A ⊑ S.
                for &s in &told.closure[j] {
                    if decided[s].is_none() {
                        decided[s] = Some(true);
                        charge_pruned(meter, &mut stats)?;
                    }
                }
            }
        }
    }

    let set: BTreeSet<ConceptId> = (0..n)
        .filter(|&j| decided[j] == Some(true))
        .map(|j| told.atoms[j])
        .collect();
    Ok((set, stats))
}

/// Enhanced-traversal classification under one governance envelope,
/// reporting the run's [`ClassifyStats`] alongside the hierarchy. The
/// result is byte-identical to [`classify_brute_force_governed`] —
/// only the number of satisfiability calls differs (see
/// [`classify_row`] for why every skip is sound).
///
/// Partial results keep fully decided rows only, the same contract as
/// the brute-force path.
pub fn classify_enhanced_governed(
    reasoner: &mut Tableau,
    tbox: &TBox,
    budget: &Budget,
) -> (Governed<ClassHierarchy>, ClassifyStats) {
    let run = classify_enhanced_checkpointed(reasoner, tbox, budget, None);
    (run.governed, run.stats)
}

/// The outcome of a resumable classification run: the governed
/// hierarchy, this run's stats (resumed rows cost nothing again), a
/// [`Checkpoint`] when the run was interrupted with progress worth
/// keeping, and how the run started.
#[derive(Debug)]
pub struct ClassifyRun {
    pub governed: Governed<ClassHierarchy>,
    /// Work done by *this* run only — rows restored from a checkpoint
    /// are not re-counted.
    pub stats: ClassifyStats,
    /// Emitted on exhaustion/cancellation when at least one row is
    /// decided; `None` on completion (nothing left to resume).
    pub checkpoint: Option<Checkpoint>,
    pub resume: ResumeOutcome,
}

/// [`classify_enhanced_governed`] with checkpoint/resume: pass the
/// bytes of a previously emitted [`Checkpoint`] to skip its completed
/// rows, and receive a fresh checkpoint when this run is interrupted
/// in turn. A checkpoint that fails validation (corruption, wrong
/// TBox, foreign bytes, future version) degrades to a clean restart —
/// recorded in [`ClassifyRun::resume`] — never to a poisoned resume.
///
/// Soundness of resume: checkpoints only ever contain *fully decided*
/// rows, and every row is computed independently, so (resumed rows) ∪
/// (rows computed now) is exactly the hierarchy an uninterrupted run
/// produces — byte-identical, as the chaos differential suite checks.
pub fn classify_enhanced_checkpointed(
    reasoner: &mut Tableau,
    tbox: &TBox,
    budget: &Budget,
    resume: Option<&[u8]>,
) -> ClassifyRun {
    let fingerprint = tbox_fingerprint(tbox);
    let told = ToldIndex::build(tbox);
    let n = told.atoms.len();
    let (mut subsumers, resume_outcome) = match resume {
        None => (BTreeMap::new(), ResumeOutcome::Fresh),
        Some(bytes) => match restore_classification(bytes, fingerprint, &told) {
            Ok(rows) => {
                let restored = rows.len();
                (rows, ResumeOutcome::Resumed { restored })
            }
            Err(why) => (BTreeMap::new(), ResumeOutcome::Restarted { why }),
        },
    };
    let mut meter = budget.meter();
    let mut span = meter
        .span("dl.classify")
        .with("atoms", n)
        .with("strategy", "enhanced");
    if let ResumeOutcome::Resumed { restored } = &resume_outcome {
        span.record("resumed_rows", *restored as u64);
        meter.count("dl.classify.resumed_rows", *restored as u64);
    }
    let mut stats = ClassifyStats::default();
    for i in 0..n {
        // Rows restored from the checkpoint are already exact.
        if subsumers.contains_key(&told.atoms[i]) {
            continue;
        }
        match classify_row(reasoner, &mut meter, &told, i) {
            Ok((set, row_stats)) => {
                stats.absorb(row_stats);
                subsumers.insert(told.atoms[i], set);
            }
            // Keep only fully decided rows: every listed subsumer set
            // is then exact, and absent concepts are simply undecided.
            Err(interrupt) => {
                span.record("interrupted", true);
                let checkpoint = (!subsumers.is_empty()).then(|| Checkpoint {
                    fingerprint,
                    state: CheckpointState::Classification(subsumers.clone()),
                });
                return ClassifyRun {
                    governed: Governed::from_interrupt(
                        interrupt,
                        Some(ClassHierarchy { subsumers }),
                    ),
                    stats,
                    checkpoint,
                    resume: resume_outcome,
                };
            }
        }
    }
    span.record("sat_tests", stats.sat_tests);
    span.record("pruned", stats.pruned);
    ClassifyRun {
        governed: Governed::Completed(ClassHierarchy { subsumers }),
        stats,
        checkpoint: None,
        resume: resume_outcome,
    }
}

/// Resume classification from checkpoint bytes (see
/// [`classify_enhanced_checkpointed`]).
pub fn classify_resume_from(
    reasoner: &mut Tableau,
    tbox: &TBox,
    budget: &Budget,
    bytes: &[u8],
) -> ClassifyRun {
    classify_enhanced_checkpointed(reasoner, tbox, budget, Some(bytes))
}

/// Validate checkpoint bytes against this TBox and return the
/// restorable rows: decode, checksum, fingerprint, and a structural
/// check that every mentioned concept is actually a named concept of
/// the TBox (a stale checkpoint of a renamed ontology must not smuggle
/// unknown ids into the hierarchy).
fn restore_classification(
    bytes: &[u8],
    fingerprint: u64,
    told: &ToldIndex,
) -> std::result::Result<BTreeMap<ConceptId, BTreeSet<ConceptId>>, CheckpointError> {
    let ckp = Checkpoint::from_bytes_for(bytes, fingerprint)?;
    let CheckpointState::Classification(rows) = ckp.state else {
        return Err(CheckpointError::Malformed(
            "not a classification checkpoint",
        ));
    };
    let known: BTreeSet<ConceptId> = told.atoms.iter().copied().collect();
    for (c, set) in &rows {
        if !known.contains(c) || !set.iter().all(|s| known.contains(s)) {
            return Err(CheckpointError::Malformed(
                "checkpoint mentions concepts outside the TBox",
            ));
        }
    }
    Ok(rows)
}

/// The classical O(n²) grid: one subsumption test per (sub, sup) pair,
/// no seeding, no pruning. Kept as the reference implementation the
/// differential tests and the classification benchmark compare
/// against.
pub fn classify_brute_force_governed(
    reasoner: &mut Tableau,
    tbox: &TBox,
    budget: &Budget,
) -> (Governed<ClassHierarchy>, ClassifyStats) {
    let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
    let mut meter = budget.meter();
    let _span = meter
        .span("dl.classify")
        .with("atoms", atoms.len())
        .with("strategy", "brute_force");
    let mut subsumers = BTreeMap::new();
    let mut stats = ClassifyStats::default();
    for &sub in &atoms {
        let mut set = BTreeSet::new();
        for &sup in &atoms {
            let query = Concept::and(vec![
                Concept::atom(sub),
                Concept::not(Concept::atom(sup)),
            ]);
            stats.sat_tests += 1;
            stats.cells += 1;
            meter.count("dl.classify.sat_tests", 1);
            match reasoner.sat_metered(&query, &mut meter) {
                Ok(sat) => {
                    if !sat {
                        set.insert(sup);
                    }
                }
                // Keep only fully decided rows: every listed subsumer
                // set is then exact, and absent concepts are simply
                // undecided.
                Err(i) => {
                    return (
                        Governed::from_interrupt(i, Some(ClassHierarchy { subsumers })),
                        stats,
                    )
                }
            }
        }
        subsumers.insert(sub, set);
    }
    (Governed::Completed(ClassHierarchy { subsumers }), stats)
}

impl Classifier for Tableau {
    /// Enhanced-traversal classification (told-subsumer seeding,
    /// top-down pruning) — byte-identical to the classical brute-force
    /// grid at a fraction of the satisfiability calls. The reference
    /// grid survives as [`classify_brute_force_governed`].
    fn classify(&mut self, tbox: &TBox, _voc: &Vocabulary) -> Result<ClassHierarchy> {
        let (governed, _stats) = classify_enhanced_governed(self, tbox, &Budget::unlimited());
        Ok(governed.expect_completed("unlimited budget cannot interrupt"))
    }

    fn classify_governed(
        &mut self,
        tbox: &TBox,
        _voc: &Vocabulary,
        budget: &Budget,
    ) -> Governed<ClassHierarchy> {
        classify_enhanced_governed(self, tbox, budget).0
    }
}

/// Parallel, budget-governed tableau classification over `threads`
/// workers (see [`summa_exec`]). Each worker owns a private [`Tableau`]
/// wired to one shared [`SatCache`], and the *rows* of the subsumption
/// matrix are distributed by work stealing — each row runs the same
/// enhanced traversal as the sequential path (told seeding, row-sat
/// probe, top-down pruning), so the parallel grid inherits the full
/// pruning rate rather than fanning out n² static cells. One
/// [`Budget`] envelope bounds the whole grid. A partial hierarchy
/// keeps only fully decided rows — rows are the unit of distribution,
/// so the sequential partial-result guarantee carries over verbatim
/// and an absent pair always means *not proved*.
///
/// On completion the hierarchy is **identical** to the sequential one:
/// every pruning step is licensed by an entailment, every tested cell
/// is an independent satisfiability query with a deterministic answer,
/// and only completed answers enter the cache.
pub fn classify_parallel_governed(
    tbox: &TBox,
    voc: &Vocabulary,
    budget: &Budget,
    threads: usize,
) -> Governed<ClassHierarchy> {
    classify_parallel_governed_with(tbox, voc, budget, threads, Arc::new(SatCache::new())).0
}

/// [`classify_parallel_governed`] with a caller-supplied cache (shared
/// across runs or services) and the pooled [`Spend`] — including cache
/// hit/miss counts — reported back.
pub fn classify_parallel_governed_with(
    tbox: &TBox,
    voc: &Vocabulary,
    budget: &Budget,
    threads: usize,
    cache: Arc<SatCache>,
) -> (Governed<ClassHierarchy>, Spend) {
    let told = ToldIndex::build(tbox);
    let n = told.atoms.len();
    let told_ref = &told;
    // The service span lives on the calling thread; worker task spans
    // (opened by the executor) land in their own lanes.
    let _span = budget
        .tracer()
        .span("dl.classify.parallel")
        .with("atoms", n)
        .with("threads", threads)
        .with("strategy", "enhanced");
    let rows: Vec<usize> = (0..n).collect();
    let tracer = budget.tracer().clone();
    let outcome = summa_exec::par_map_with_drain(
        &rows,
        budget,
        threads,
        |_| Tableau::new(tbox, voc).with_shared_cache(Arc::clone(&cache)),
        |reasoner, meter, _, &i| classify_row(reasoner, meter, told_ref, i),
        // Harvest interner hits accrued after a worker's last completed
        // sat call (they are otherwise dropped on the scope join).
        |_, mut reasoner: Tableau| {
            let d = reasoner.drain_intern_hits();
            if d > 0 {
                tracer.add("dl.intern.hits", d);
            }
        },
    );
    // The outcome's spend already carries this run's cache hit/miss
    // counts: each worker meter records them at lookup time.
    let spend: Spend = outcome.spend;
    let governed = outcome.into_governed(|row_results| {
        let mut subsumers = BTreeMap::new();
        for (i, slot) in row_results.into_iter().enumerate() {
            // Undecided rows are simply absent, mirroring the
            // sequential partial-result contract.
            if let Some((set, _stats)) = slot {
                subsumers.insert(told.atoms[i], set);
            }
        }
        Some(ClassHierarchy { subsumers })
    });
    (governed, spend)
}

impl Classifier for ElClassifier {
    fn classify(&mut self, tbox: &TBox, _voc: &Vocabulary) -> Result<ClassHierarchy> {
        // One saturation, then read every subsumer set straight off the
        // saturated state — no per-pair `subsumes` probes (each of
        // which would re-check saturation and re-resolve both atoms).
        self.saturate();
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        Ok(ClassHierarchy {
            subsumers: self.current_named_subsumers(&atoms),
        })
    }

    fn classify_governed(
        &mut self,
        tbox: &TBox,
        _voc: &Vocabulary,
        budget: &Budget,
    ) -> Governed<ClassHierarchy> {
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        let mut meter = budget.meter();
        let _span = meter.span("dl.classify.el").with("atoms", atoms.len());
        match self.saturate_metered(&mut meter) {
            Ok(()) => Governed::Completed(ClassHierarchy {
                subsumers: self.current_named_subsumers(&atoms),
            }),
            // Partial saturation is a sound under-approximation, so
            // the interrupted hierarchy is still truthful.
            Err(i) => Governed::from_interrupt(
                i,
                Some(ClassHierarchy {
                    subsumers: self.current_named_subsumers(&atoms),
                }),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_tbox() -> (Vocabulary, TBox, Vec<ConceptId>) {
        let mut voc = Vocabulary::new();
        let ids: Vec<ConceptId> = (0..4).map(|i| voc.concept(&format!("C{i}"))).collect();
        let mut t = TBox::new();
        for w in ids.windows(2) {
            t.subsume(Concept::atom(w[0]), Concept::atom(w[1]));
        }
        (voc, t, ids)
    }

    #[test]
    fn tableau_and_el_agree_on_chain() {
        let (voc, t, ids) = chain_tbox();
        let h1 = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        let h2 = ElClassifier::new(&t, &voc)
            .unwrap()
            .classify(&t, &voc)
            .unwrap();
        assert_eq!(h1, h2);
        assert!(h1.subsumes(ids[3], ids[0]));
        assert!(!h1.subsumes(ids[0], ids[3]));
    }

    #[test]
    fn parents_skip_transitive_links() {
        let (voc, t, ids) = chain_tbox();
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        let parents = h.parents_of(ids[0]);
        assert_eq!(parents, [ids[1]].into_iter().collect());
        assert!(h.parents_of(ids[3]).is_empty());
    }

    #[test]
    fn equivalent_concepts_detected() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let mut t = TBox::new();
        t.equiv(Concept::atom(a), Concept::atom(b));
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        assert!(h.equivalent(a, b));
        // Each is the other's subsumer but neither is a strict parent.
        assert!(h.parents_of(a).is_empty());
    }

    #[test]
    fn render_mentions_every_edge() {
        let (voc, t, _) = chain_tbox();
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        let s = h.render(&voc);
        assert!(s.contains("C0 ⊑ C1"));
        assert!(s.contains("C3 ⊑ ⊤"));
        assert!(!s.contains("C0 ⊑ C2")); // transitive edge elided
    }

    #[test]
    fn n_pairs_counts_reflexive_and_transitive() {
        let (voc, t, _) = chain_tbox();
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        // 4 + 3 + 2 + 1 = 10 subsumption pairs on a 4-chain.
        assert_eq!(h.n_pairs(), 10);
    }

    #[test]
    fn enhanced_matches_brute_force_with_fewer_sat_calls() {
        let (voc, t, _) = chain_tbox();
        let budget = Budget::unlimited();
        let (brute, bs) =
            classify_brute_force_governed(&mut Tableau::new(&t, &voc), &t, &budget);
        let (enhanced, es) =
            classify_enhanced_governed(&mut Tableau::new(&t, &voc), &t, &budget);
        assert_eq!(
            brute.expect_completed("unlimited"),
            enhanced.expect_completed("unlimited")
        );
        // Every told edge of the chain is seeded free; only the
        // downward (refuted) direction plus row probes need calls.
        assert_eq!(bs.sat_tests, 16);
        assert!(
            es.sat_tests < bs.sat_tests,
            "enhanced issued {} sat calls, brute force {}",
            es.sat_tests,
            bs.sat_tests
        );
        // Both decided the full 4×4 grid.
        assert_eq!(bs.cells, 16);
        assert_eq!(es.cells, 16);
        assert_eq!(es.cells, es.cells - es.pruned + es.pruned);
        assert!(es.pruned > 0);
    }

    #[test]
    fn told_unsat_rows_fill_without_probes() {
        // A ⊑ B, B ⊑ ⊥: both rows are told-unsatisfiable, so the whole
        // hierarchy resolves with zero satisfiability calls.
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let mut t = TBox::new();
        t.subsume(Concept::atom(a), Concept::atom(b));
        t.subsume(Concept::atom(b), Concept::Bottom);
        let budget = Budget::unlimited();
        let (enhanced, es) =
            classify_enhanced_governed(&mut Tableau::new(&t, &voc), &t, &budget);
        let h = enhanced.expect_completed("unlimited");
        assert_eq!(es.sat_tests, 0);
        assert_eq!(es.pruned, 4);
        // Unsatisfiable concepts subsume under everything.
        assert!(h.subsumes(a, b) && h.subsumes(b, a));
        let (brute, _) =
            classify_brute_force_governed(&mut Tableau::new(&t, &voc), &t, &budget);
        assert_eq!(h, brute.expect_completed("unlimited"));
    }

    #[test]
    fn enhanced_ledger_reconciles_steps_with_pruned_counter() {
        // Pruned cells charge exactly one deterministic ledger step, so
        // steps == Σ dl.rule.* + dl.classify.pruned always holds.
        let (voc, t, _) = chain_tbox();
        let tracer = summa_guard::obs::Tracer::enabled();
        let budget = Budget::unlimited().with_tracer(tracer.clone());
        let mut meter = budget.meter();
        let told = ToldIndex::build(&t);
        let mut reasoner = Tableau::new(&t, &voc);
        let mut stats = ClassifyStats::default();
        for i in 0..told.atoms.len() {
            let (_, row) = classify_row(&mut reasoner, &mut meter, &told, i).unwrap();
            stats.absorb(row);
        }
        let counters = tracer.snapshot().counters;
        // `dl.rule.agenda.skip` / `dl.rule.trail.undo` live in the rule
        // family but are observational (the kernel's bookkeeping, never
        // charged), so the reconciliation subtracts them.
        let rule_steps: u64 = counters
            .iter()
            .filter(|(k, _)| {
                k.starts_with("dl.rule.")
                    && k.as_str() != "dl.rule.agenda.skip"
                    && k.as_str() != "dl.rule.trail.undo"
            })
            .map(|(_, v)| v)
            .sum();
        assert_eq!(tracer.counter_value("dl.classify.pruned"), stats.pruned);
        assert_eq!(
            tracer.counter_value("dl.classify.sat_tests"),
            stats.sat_tests
        );
        assert!(stats.pruned > 0);
        assert_eq!(meter.spend().steps, rule_steps + stats.pruned);
    }
}
