//! Classification: computing the full subsumption hierarchy over the
//! named concepts of a TBox.

use crate::cache::SatCache;
use crate::concept::{Concept, ConceptId, Vocabulary};
use crate::el::ElClassifier;
use crate::error::Result;
use crate::tableau::Tableau;
use crate::tbox::TBox;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use summa_guard::{Budget, Governed, Spend};

/// The computed hierarchy: for every named concept, its full set of
/// named subsumers (reflexive–transitive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassHierarchy {
    subsumers: BTreeMap<ConceptId, BTreeSet<ConceptId>>,
}

impl ClassHierarchy {
    /// Does `sup` subsume `sub`?
    pub fn subsumes(&self, sup: ConceptId, sub: ConceptId) -> bool {
        self.subsumers
            .get(&sub)
            .map(|s| s.contains(&sup))
            .unwrap_or(false)
    }

    /// Equivalent concepts (mutual subsumption).
    pub fn equivalent(&self, a: ConceptId, b: ConceptId) -> bool {
        self.subsumes(a, b) && self.subsumes(b, a)
    }

    /// All subsumers of `c` (including itself).
    pub fn subsumers_of(&self, c: ConceptId) -> BTreeSet<ConceptId> {
        self.subsumers.get(&c).cloned().unwrap_or_default()
    }

    /// Direct (non-transitive, non-reflexive) parents of `c`: subsumers
    /// with no strictly smaller subsumer in between.
    pub fn parents_of(&self, c: ConceptId) -> BTreeSet<ConceptId> {
        let subs = self.subsumers_of(c);
        let strict: BTreeSet<ConceptId> = subs
            .iter()
            .copied()
            .filter(|&s| s != c && !self.equivalent(s, c))
            .collect();
        strict
            .iter()
            .copied()
            .filter(|&p| {
                !strict
                    .iter()
                    .any(|&q| q != p && self.subsumes(p, q) && !self.equivalent(p, q))
            })
            .collect()
    }

    /// All concepts in the hierarchy.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        self.subsumers.keys().copied()
    }

    /// Number of subsumption pairs (reflexive included).
    pub fn n_pairs(&self) -> usize {
        self.subsumers.values().map(BTreeSet::len).sum()
    }

    /// Render as an indented tree-ish listing of parent links.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        for c in self.concepts() {
            let parents = self.parents_of(c);
            if parents.is_empty() {
                out.push_str(&format!("{} ⊑ ⊤\n", voc.concept_name(c)));
            }
            for p in parents {
                out.push_str(&format!(
                    "{} ⊑ {}\n",
                    voc.concept_name(c),
                    voc.concept_name(p)
                ));
            }
        }
        out
    }
}

/// A classification strategy.
pub trait Classifier {
    /// Compute the subsumer sets for all named concepts of the TBox.
    fn classify(&mut self, tbox: &TBox, voc: &Vocabulary) -> Result<ClassHierarchy>;

    /// Budget-governed classification. One envelope bounds the whole
    /// run (all inner subsumption tests share a single meter); on
    /// exhaustion or cancellation the partial hierarchy contains the
    /// subsumptions proved so far — a sound under-approximation in
    /// which an absent pair means *not proved*, not *disproved*.
    fn classify_governed(
        &mut self,
        tbox: &TBox,
        voc: &Vocabulary,
        budget: &Budget,
    ) -> Governed<ClassHierarchy>;
}

impl Classifier for Tableau {
    /// O(n²) pairwise subsumption tests through the tableau (with its
    /// satisfiability cache this is the classical brute-force
    /// classification).
    fn classify(&mut self, tbox: &TBox, _voc: &Vocabulary) -> Result<ClassHierarchy> {
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        let mut subsumers = BTreeMap::new();
        for &sub in &atoms {
            let mut set = BTreeSet::new();
            for &sup in &atoms {
                let unsat = self.try_is_satisfiable(&Concept::and(vec![
                    Concept::atom(sub),
                    Concept::not(Concept::atom(sup)),
                ]))?;
                if !unsat {
                    set.insert(sup);
                }
            }
            subsumers.insert(sub, set);
        }
        Ok(ClassHierarchy { subsumers })
    }

    fn classify_governed(
        &mut self,
        tbox: &TBox,
        _voc: &Vocabulary,
        budget: &Budget,
    ) -> Governed<ClassHierarchy> {
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        let mut meter = budget.meter();
        let _span = meter.span("dl.classify").with("atoms", atoms.len());
        let mut subsumers = BTreeMap::new();
        for &sub in &atoms {
            let mut set = BTreeSet::new();
            for &sup in &atoms {
                let query = Concept::and(vec![
                    Concept::atom(sub),
                    Concept::not(Concept::atom(sup)),
                ]);
                match self.sat_metered(&query, &mut meter) {
                    Ok(sat) => {
                        if !sat {
                            set.insert(sup);
                        }
                    }
                    // Keep only fully decided rows: every listed
                    // subsumer set is then exact, and absent concepts
                    // are simply undecided.
                    Err(i) => {
                        return Governed::from_interrupt(
                            i,
                            Some(ClassHierarchy { subsumers }),
                        )
                    }
                }
            }
            subsumers.insert(sub, set);
        }
        Governed::Completed(ClassHierarchy { subsumers })
    }
}

/// Parallel, budget-governed tableau classification over `threads`
/// workers (see [`summa_exec`]). Each worker owns a private [`Tableau`]
/// wired to one shared [`SatCache`], and the subsumption matrix's
/// cells are distributed by work stealing; one [`Budget`] envelope
/// bounds the whole grid. Results are assembled by cell index, and a
/// partial hierarchy keeps only fully decided rows — the same
/// guarantee as the sequential
/// [`Classifier::classify_governed`], so an absent pair always means
/// *not proved*.
///
/// On completion the hierarchy is **identical** to the sequential one:
/// every cell is an independent satisfiability query with a
/// deterministic answer, and only completed answers enter the cache.
pub fn classify_parallel_governed(
    tbox: &TBox,
    voc: &Vocabulary,
    budget: &Budget,
    threads: usize,
) -> Governed<ClassHierarchy> {
    classify_parallel_governed_with(tbox, voc, budget, threads, Arc::new(SatCache::new())).0
}

/// [`classify_parallel_governed`] with a caller-supplied cache (shared
/// across runs or services) and the pooled [`Spend`] — including cache
/// hit/miss counts — reported back.
pub fn classify_parallel_governed_with(
    tbox: &TBox,
    voc: &Vocabulary,
    budget: &Budget,
    threads: usize,
    cache: Arc<SatCache>,
) -> (Governed<ClassHierarchy>, Spend) {
    let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
    let n = atoms.len();
    let atoms_ref = &atoms;
    // The service span lives on the calling thread; worker task spans
    // (opened by the executor) land in their own lanes.
    let _span = budget
        .tracer()
        .span("dl.classify.parallel")
        .with("atoms", n)
        .with("threads", threads);
    let outcome = summa_exec::par_cells(
        n,
        n,
        budget,
        threads,
        |_| Tableau::new(tbox, voc).with_shared_cache(Arc::clone(&cache)),
        |reasoner, meter, row, col| {
            let query = Concept::and(vec![
                Concept::atom(atoms_ref[row]),
                Concept::not(Concept::atom(atoms_ref[col])),
            ]);
            reasoner.sat_metered(&query, meter).map(|sat| !sat)
        },
    );
    // The outcome's spend already carries this run's cache hit/miss
    // counts: each worker meter records them at lookup time.
    let spend: Spend = outcome.spend;
    let governed = outcome.into_governed(|cells| {
        let mut subsumers = BTreeMap::new();
        for (i, &sub) in atoms.iter().enumerate() {
            let row = &cells[i * n..(i + 1) * n];
            // Keep only fully decided rows, mirroring the sequential
            // partial-result contract.
            if row.iter().all(Option::is_some) {
                let set: BTreeSet<ConceptId> = atoms
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| row[j] == Some(true))
                    .map(|(_, &sup)| sup)
                    .collect();
                subsumers.insert(sub, set);
            }
        }
        Some(ClassHierarchy { subsumers })
    });
    (governed, spend)
}

impl Classifier for ElClassifier {
    fn classify(&mut self, tbox: &TBox, _voc: &Vocabulary) -> Result<ClassHierarchy> {
        self.saturate();
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        let mut subsumers = BTreeMap::new();
        for &sub in &atoms {
            let mut set = BTreeSet::new();
            for &sup in &atoms {
                if self.subsumes(sup, sub) {
                    set.insert(sup);
                }
            }
            subsumers.insert(sub, set);
        }
        Ok(ClassHierarchy { subsumers })
    }

    fn classify_governed(
        &mut self,
        tbox: &TBox,
        _voc: &Vocabulary,
        budget: &Budget,
    ) -> Governed<ClassHierarchy> {
        let atoms: Vec<ConceptId> = tbox.atoms().into_iter().collect();
        let mut meter = budget.meter();
        let _span = meter.span("dl.classify.el").with("atoms", atoms.len());
        match self.saturate_metered(&mut meter) {
            Ok(()) => Governed::Completed(ClassHierarchy {
                subsumers: self.current_named_subsumers(&atoms),
            }),
            // Partial saturation is a sound under-approximation, so
            // the interrupted hierarchy is still truthful.
            Err(i) => Governed::from_interrupt(
                i,
                Some(ClassHierarchy {
                    subsumers: self.current_named_subsumers(&atoms),
                }),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_tbox() -> (Vocabulary, TBox, Vec<ConceptId>) {
        let mut voc = Vocabulary::new();
        let ids: Vec<ConceptId> = (0..4).map(|i| voc.concept(&format!("C{i}"))).collect();
        let mut t = TBox::new();
        for w in ids.windows(2) {
            t.subsume(Concept::atom(w[0]), Concept::atom(w[1]));
        }
        (voc, t, ids)
    }

    #[test]
    fn tableau_and_el_agree_on_chain() {
        let (voc, t, ids) = chain_tbox();
        let h1 = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        let h2 = ElClassifier::new(&t, &voc)
            .unwrap()
            .classify(&t, &voc)
            .unwrap();
        assert_eq!(h1, h2);
        assert!(h1.subsumes(ids[3], ids[0]));
        assert!(!h1.subsumes(ids[0], ids[3]));
    }

    #[test]
    fn parents_skip_transitive_links() {
        let (voc, t, ids) = chain_tbox();
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        let parents = h.parents_of(ids[0]);
        assert_eq!(parents, [ids[1]].into_iter().collect());
        assert!(h.parents_of(ids[3]).is_empty());
    }

    #[test]
    fn equivalent_concepts_detected() {
        let mut voc = Vocabulary::new();
        let a = voc.concept("A");
        let b = voc.concept("B");
        let mut t = TBox::new();
        t.equiv(Concept::atom(a), Concept::atom(b));
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        assert!(h.equivalent(a, b));
        // Each is the other's subsumer but neither is a strict parent.
        assert!(h.parents_of(a).is_empty());
    }

    #[test]
    fn render_mentions_every_edge() {
        let (voc, t, _) = chain_tbox();
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        let s = h.render(&voc);
        assert!(s.contains("C0 ⊑ C1"));
        assert!(s.contains("C3 ⊑ ⊤"));
        assert!(!s.contains("C0 ⊑ C2")); // transitive edge elided
    }

    #[test]
    fn n_pairs_counts_reflexive_and_transitive() {
        let (voc, t, _) = chain_tbox();
        let h = Tableau::new(&t, &voc).classify(&t, &voc).unwrap();
        // 4 + 3 + 2 + 1 = 10 subsumption pairs on a 4-chain.
        assert_eq!(h.n_pairs(), 10);
    }
}
