//! A shared, sharded satisfiability cache.
//!
//! Classification grids ask thousands of subsumption queries against
//! one TBox, and parallel workers each hold their own [`Tableau`]
//! clone — without sharing, every worker re-proves what a sibling just
//! proved. The [`SatCache`] is a sharded `RwLock` hash map keyed by
//! *(normalized-TBox hash, NNF query concept)* so one cache instance
//! can safely serve many reasoners, including reasoners bound to
//! different TBoxes.
//!
//! Only **completed** satisfiability answers are inserted (the tableau
//! never caches an interrupted search), so sharing the cache cannot
//! change any answer — it only changes how fast the answer arrives.
//! That invariant is what makes the differential tests
//! (parallel ≡ sequential) hold bit-for-bit.

use crate::concept::Concept;
use crate::fxhash::{fx_hash, FxBuildHasher, FxHasher};
use crate::tbox::TBox;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

/// Shard maps are keyed with the Fx mixer too: the keys are our own
/// structures, not attacker input, and lookups sit on the hot path of
/// every shared-cache probe. Each entry stores its answer *and* an
/// [`entry_checksum`] over (key, answer): a flipped or poisoned entry
/// no longer matches its checksum and is evicted on read instead of
/// being served — degrading to a recompute, never to a wrong answer.
type ShardMap = HashMap<(u64, Concept), (bool, u64), FxBuildHasher>;

/// One shard: its map plus its own hit/miss/corruption counters.
/// Keeping the counters *per shard* (instead of three process-wide
/// atomics every worker hammers) removes the last piece of cross-shard
/// write sharing on the probe path, and — because each counter is
/// updated at the probe itself, not buffered in worker state and
/// drained at teardown — [`SatCache::stats`] is exact at every instant.
/// A short-lived reader (a server answering one request and dropping
/// its pool) sees the same totals a long-lived one would.
#[derive(Debug, Default)]
struct Shard {
    map: RwLock<ShardMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    corruptions: AtomicU64,
}

/// An exact snapshot of a cache's lifetime counters (summed across
/// shards at the moment of the call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Completed answers served.
    pub hits: u64,
    /// Probes that found nothing (or evicted a corrupt entry).
    pub misses: u64,
    /// Corrupted entries detected and evicted on read.
    pub corruptions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// Integrity checksum of one cache entry, bound to its full key and
/// value. Any bit of the answer (or a cross-slot mixup of keys)
/// changes the checksum.
fn entry_checksum(tbox: u64, c: &Concept, sat: bool) -> u64 {
    fx_hash(&(0x53A7_CACE_u32, tbox, fx_hash(c), sat))
}

/// Number of independent shards. A power of two so shard selection is
/// a mask; 16 is plenty for the worker counts std::thread::scope will
/// realistically see.
const SHARDS: usize = 16;

/// Hash a TBox into the cache key space: every GCI is normalized to
/// NNF and hashed, and the per-axiom hashes are combined
/// order-independently, so two TBoxes that state the same axioms in a
/// different order share cache entries.
pub fn tbox_fingerprint(tbox: &TBox) -> u64 {
    let mut acc: u64 = 0x5361_6e74_696e_6906; // arbitrary nonzero seed
    for (l, r) in tbox.gcis() {
        let mut h = DefaultHasher::new();
        l.nnf().hash(&mut h);
        r.nnf().hash(&mut h);
        acc = acc.wrapping_add(h.finish());
    }
    acc
}

/// A concurrent satisfiability cache shared across reasoners and
/// threads. Cheap to clone behind an `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct SatCache {
    shards: Vec<Shard>,
}

impl SatCache {
    pub fn new() -> Self {
        SatCache {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    /// Shard selection uses the dependency-free Fx mixer
    /// ([`crate::fxhash`]) rather than SipHash: it is an order of
    /// magnitude cheaper per probe, and — having no per-process random
    /// key — it is *stable*, so a given `(fingerprint, concept)` pair
    /// always lands in the same shard across runs and processes (a
    /// property the key-stability unit test pins with golden values).
    /// The TBox *fingerprint* itself keeps its original `DefaultHasher`
    /// semantics; only the shard index changed hash functions.
    fn shard(&self, tbox: u64, c: &Concept) -> &Shard {
        let mut h = FxHasher::default();
        tbox.hash(&mut h);
        c.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Look up a completed answer for `c` (already in NNF) under the
    /// TBox with fingerprint `tbox`. Counts a hit or miss on the
    /// shard's own counters at the probe itself. An entry whose
    /// checksum no longer matches (bit rot, injected poisoning) is
    /// *evicted and reported as a miss* — the caller recomputes, and
    /// the answer stays correct.
    pub fn get(&self, tbox: u64, c: &Concept) -> Option<bool> {
        let shard = self.shard(tbox, c);
        let key = (tbox, c.clone());
        let found = shard
            .map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .copied();
        match found {
            Some((sat, sum)) if sum == entry_checksum(tbox, c, sat) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(sat)
            }
            Some(_) => {
                // Corrupted entry: evict, count, fall back to recompute.
                shard.corruptions.fetch_add(1, Ordering::Relaxed);
                shard
                    .map
                    .write()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&key);
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a **completed** answer. Concurrent inserts of the same
    /// key always carry the same value (the calculus is deterministic),
    /// so last-write-wins is harmless.
    pub fn insert(&self, tbox: u64, c: Concept, sat: bool) {
        let sum = entry_checksum(tbox, &c, sat);
        self.shard(tbox, &c)
            .map
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((tbox, c), (sat, sum));
    }

    /// Record a *corrupted* answer: the stored boolean is flipped while
    /// the checksum still covers the true value — exactly the shape a
    /// stray bit-flip or a chaos-injected `poison` fault produces. The
    /// next [`get`](Self::get) detects the mismatch and recomputes.
    /// Used by the fault-injection path and the integrity tests.
    pub fn insert_poisoned(&self, tbox: u64, c: Concept, sat: bool) {
        let sum = entry_checksum(tbox, &c, sat);
        self.shard(tbox, &c)
            .map
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((tbox, c), (!sat, sum));
    }

    /// Lifetime hit count (exact: summed over shard counters).
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Lifetime miss count (exact: summed over shard counters).
    pub fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Corrupted entries detected (and evicted) on read.
    pub fn corruptions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.corruptions.load(Ordering::Relaxed))
            .sum()
    }

    /// One coherent snapshot of every lifetime counter plus the entry
    /// count. Because each shard counts at the probe (nothing is
    /// buffered per worker and drained at teardown), the snapshot is
    /// exact even for a cache whose pool was just dropped — the
    /// property the serving layer relies on for per-request accounting.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for s in &self.shards {
            out.hits += s.hits.load(Ordering::Relaxed);
            out.misses += s.misses.load(Ordering::Relaxed);
            out.corruptions += s.corruptions.load(Ordering::Relaxed);
            out.entries += s
                .map
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len();
        }
        out
    }

    /// Cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Vocabulary;

    #[test]
    fn fingerprint_is_order_independent() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let b = Concept::atom(voc.concept("B"));
        let c = Concept::atom(voc.concept("C"));
        let mut t1 = TBox::new();
        t1.subsume(a.clone(), b.clone());
        t1.subsume(b.clone(), c.clone());
        let mut t2 = TBox::new();
        t2.subsume(b.clone(), c.clone());
        t2.subsume(a.clone(), b.clone());
        assert_eq!(tbox_fingerprint(&t1), tbox_fingerprint(&t2));
        let mut t3 = TBox::new();
        t3.subsume(a, c);
        assert_ne!(tbox_fingerprint(&t1), tbox_fingerprint(&t3));
    }

    #[test]
    fn get_insert_and_counters() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let cache = SatCache::new();
        assert_eq!(cache.get(7, &a), None);
        cache.insert(7, a.clone(), true);
        assert_eq!(cache.get(7, &a), Some(true));
        // Different TBox fingerprint: separate entry.
        assert_eq!(cache.get(8, &a), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
        // stats() is the same information as one coherent snapshot.
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                corruptions: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn stats_are_exact_without_any_teardown_drain() {
        // Counters live on the shards and are bumped at the probe, so a
        // snapshot taken while worker threads still exist — or right
        // after a short-lived pool dropped — is already exact. Every
        // probe is accounted; nothing waits for a teardown drain.
        use std::sync::Arc;
        let mut voc = Vocabulary::new();
        let atoms: Vec<Concept> = (0..32)
            .map(|i| Concept::atom(voc.concept(&format!("S{i}"))))
            .collect();
        let cache = Arc::new(SatCache::new());
        for (i, c) in atoms.iter().enumerate() {
            cache.insert(3, c.clone(), i % 2 == 0);
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let atoms = &atoms;
                scope.spawn(move || {
                    for c in atoms {
                        cache.get(3, c); // hit
                        cache.get(4, c); // miss (other fingerprint)
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits, 4 * 32);
        assert_eq!(s.misses, 4 * 32);
        assert_eq!(s.corruptions, 0);
        assert_eq!(s.entries, 32);
        assert_eq!((s.hits, s.misses), (cache.hits(), cache.misses()));
    }

    #[test]
    fn shard_keys_are_stable() {
        use crate::fxhash::fx_hash;
        // The Fx mixer has no per-process random state, so these values
        // are golden: if they ever change, shard assignment changed and
        // any persisted assumptions about key placement break. (SipHash
        // via `DefaultHasher` could never pass this test — its key is
        // randomized per process in principle, and its output is not
        // part of std's stability guarantees.)
        assert_eq!(fx_hash(&42u64), 0x5e77_c80c_6b95_bc72);
        assert_eq!(fx_hash(&(7u64, 9u64)), 0x899b_8573_6757_f606);

        // And the composite (fingerprint, concept) shard key is stable
        // across independently constructed caches: same key, same
        // shard, every time.
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let deep = Concept::not(Concept::and(vec![
            a.clone(),
            Concept::exists(voc.role("r"), a.clone()),
        ]));
        let c1 = SatCache::new();
        let c2 = SatCache::new();
        for (fp, c) in [(0u64, &a), (7, &a), (7, &deep), (u64::MAX, &deep)] {
            let s1 = c1.shard(fp, c) as *const _ as usize - c1.shards.as_ptr() as usize;
            let s2 = c2.shard(fp, c) as *const _ as usize - c2.shards.as_ptr() as usize;
            assert_eq!(s1, s2, "shard index must be process-independent");
        }
    }

    #[test]
    fn poisoned_entries_are_detected_evicted_and_recomputed() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let cache = SatCache::new();

        // A poisoned entry (flipped answer, stale checksum) is never
        // served: the read detects the mismatch, evicts, and reports a
        // miss so the caller recomputes.
        cache.insert_poisoned(7, a.clone(), true);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(7, &a), None, "poisoned answer must not be served");
        assert_eq!(cache.corruptions(), 1);
        assert_eq!(cache.len(), 0, "corrupt entry evicted");

        // The recomputed answer re-enters cleanly and is served again.
        cache.insert(7, a.clone(), true);
        assert_eq!(cache.get(7, &a), Some(true));
        assert_eq!(cache.corruptions(), 1, "no further corruption seen");

        // A healthy entry under a different key is unaffected.
        let b = Concept::atom(voc.concept("B"));
        cache.insert(7, b.clone(), false);
        assert_eq!(cache.get(7, &b), Some(false));
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let mut voc = Vocabulary::new();
        let atoms: Vec<Concept> = (0..64)
            .map(|i| Concept::atom(voc.concept(&format!("A{i}"))))
            .collect();
        let cache = Arc::new(SatCache::new());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let cache = Arc::clone(&cache);
                let atoms = &atoms;
                scope.spawn(move || {
                    for (i, c) in atoms.iter().enumerate() {
                        cache.insert(0, c.clone(), (i + w) % 2 == 0);
                        cache.get(0, c);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
        assert!(cache.hits() + cache.misses() == 256);
    }
}
