//! A dependency-free FxHash-style hasher.
//!
//! `std`'s `DefaultHasher` is SipHash-1-3 — keyed, DoS-resistant, and
//! an order of magnitude slower than needed for interning tables and
//! shard selection, where the keys are machine words or short
//! structures produced by our own code rather than attacker-controlled
//! input. This is the classic multiply-rotate-xor mixer popularized by
//! Firefox and rustc (`FxHasher`), reimplemented here so the workspace
//! stays dependency-free.
//!
//! The function is **fixed**: no per-process random state, so a key
//! always lands in the same shard across runs and across processes.
//! The cache satellite's key-stability unit test pins that property
//! with golden values (see `cache.rs`).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash family (a 64-bit odd
/// constant close to 2^64 / φ, giving good avalanche under
/// `rotate ^ mul`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The mixer state. One `u64`, folded a word at a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Fold the length in with the tail so "ab" and "ab\0" hash
            // differently.
            self.add_word(u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx mixer.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// One-shot convenience: hash a value with the Fx mixer.
pub fn fx_hash<T: std::hash::Hash + ?Sized>(t: &T) -> u64 {
    let mut h = FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(fx_hash(&42u64), fx_hash(&42u64));
        assert_eq!(fx_hash(&"hello"), fx_hash(&"hello"));
        assert_ne!(fx_hash(&42u64), fx_hash(&43u64));
    }

    #[test]
    fn tail_bytes_are_length_sensitive() {
        // Same prefix, different length: the length fold must separate
        // them even though the zero-padded words coincide.
        assert_ne!(fx_hash(&[1u8, 2, 3][..]), fx_hash(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn maps_with_fx_hasher_behave() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }
}
