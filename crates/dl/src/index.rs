//! A precomputed classification index: the reflexive–transitive
//! subsumption closure over named concepts, packed into u64-word
//! bitsets for O(1) `subsumes` answers with zero tableau calls.
//!
//! A [`HierarchyIndex`] is built once from a **completed**
//! [`ClassHierarchy`] (snapshot-install time in the serving layer) and
//! then answers the told fragment of the reasoning services by lookup:
//!
//! * `sup ⊒ sub` between two *indexed* atoms — one bit test;
//! * a concept's full subsumer (ancestor) or subsumee (descendant)
//!   set — one row scan;
//!
//! Queries mentioning complex concepts, or atoms interned after the
//! index was built, are not answerable here ([`HierarchyIndex::subsumes`]
//! returns `None`) and fall through to the prover. Because every bit
//! in the index was itself decided by the governed classifier — which
//! is differential-tested byte-identical against brute-force tableau
//! calls — an index answer is *exactly* the prover's answer, never an
//! approximation.
//!
//! Like the resilience layer's `SatCache` entries, the packed blocks
//! carry a checksum ([`HierarchyIndex::is_intact`]); a consumer that
//! detects corruption drops the index and falls back to proving.

use crate::classify::ClassHierarchy;
use crate::concept::ConceptId;
use crate::fxhash::fx_hash;

/// Magic seed folded into the index checksum so it cannot collide with
/// the sat-cache entry checksums over the same data.
const INDEX_CHECKSUM_SEED: u64 = 0x1D0_5EED_u64;

/// A reflexive–transitive-closure subsumption index over interned atom
/// handles. Immutable after [`HierarchyIndex::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyIndex {
    /// Indexed atoms, sorted ascending; row/bit positions are ranks in
    /// this vector.
    atoms: Vec<ConceptId>,
    /// Words per row: `ceil(atoms.len() / 64)`.
    words: usize,
    /// Row `i`, bit `j`: `atoms[j]` subsumes `atoms[i]` (ancestors,
    /// reflexive).
    ancestors: Vec<u64>,
    /// The transpose — row `i`, bit `j`: `atoms[j]` is subsumed by
    /// `atoms[i]` (descendants, reflexive).
    descendants: Vec<u64>,
    checksum: u64,
}

impl HierarchyIndex {
    /// Build from a classification result. Returns `None` when the
    /// hierarchy is not closed over its own subsumers (a partial
    /// hierarchy from an interrupted run mentions subsumers that have
    /// no row of their own) — an index over an unclosed hierarchy
    /// could answer `Some(false)` for a pair the prover would affirm,
    /// so it must never be built.
    pub fn build(h: &ClassHierarchy) -> Option<HierarchyIndex> {
        let atoms: Vec<ConceptId> = h.concepts().collect(); // BTreeMap keys: sorted
        let n = atoms.len();
        let words = n.div_ceil(64);
        let rank = |c: ConceptId| atoms.binary_search(&c).ok();
        let mut ancestors = vec![0u64; n * words];
        let mut descendants = vec![0u64; n * words];
        for (i, &c) in atoms.iter().enumerate() {
            for &s in h.subsumers_ref(c)? {
                let j = rank(s)?;
                ancestors[i * words + j / 64] |= 1u64 << (j % 64);
                descendants[j * words + i / 64] |= 1u64 << (i % 64);
            }
        }
        let checksum = Self::compute_checksum(&atoms, words, &ancestors, &descendants);
        Some(HierarchyIndex {
            atoms,
            words,
            ancestors,
            descendants,
            checksum,
        })
    }

    fn compute_checksum(
        atoms: &[ConceptId],
        words: usize,
        ancestors: &[u64],
        descendants: &[u64],
    ) -> u64 {
        fx_hash(&(INDEX_CHECKSUM_SEED, atoms, words, ancestors, descendants))
    }

    /// Recompute the checksum over the packed blocks and compare. A
    /// mismatch means silent corruption; the consumer must fall back
    /// to the prover.
    pub fn is_intact(&self) -> bool {
        Self::compute_checksum(&self.atoms, self.words, &self.ancestors, &self.descendants)
            == self.checksum
    }

    /// Number of indexed atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The indexed atoms, ascending.
    pub fn atoms(&self) -> &[ConceptId] {
        &self.atoms
    }

    /// Is this atom covered by the index? Atoms interned after the
    /// snapshot was classified (query-local names) are not.
    pub fn contains(&self, c: ConceptId) -> bool {
        self.atoms.binary_search(&c).is_ok()
    }

    /// Does `sup` subsume `sub`? `None` when either atom is outside
    /// the index (the caller falls through to the prover); `Some` is
    /// the prover's own answer, by construction.
    pub fn subsumes(&self, sup: ConceptId, sub: ConceptId) -> Option<bool> {
        let i = self.atoms.binary_search(&sub).ok()?;
        let j = self.atoms.binary_search(&sup).ok()?;
        Some(self.ancestors[i * self.words + j / 64] & (1u64 << (j % 64)) != 0)
    }

    /// All subsumers of `c` (reflexive), ascending; `None` when `c` is
    /// not indexed.
    pub fn subsumers_of(&self, c: ConceptId) -> Option<Vec<ConceptId>> {
        let i = self.atoms.binary_search(&c).ok()?;
        Some(self.unpack_row(&self.ancestors[i * self.words..(i + 1) * self.words]))
    }

    /// All subsumees of `c` (reflexive), ascending; `None` when `c` is
    /// not indexed.
    pub fn subsumees_of(&self, c: ConceptId) -> Option<Vec<ConceptId>> {
        let i = self.atoms.binary_search(&c).ok()?;
        Some(self.unpack_row(&self.descendants[i * self.words..(i + 1) * self.words]))
    }

    fn unpack_row(&self, row: &[u64]) -> Vec<ConceptId> {
        let mut out = Vec::new();
        for (w, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(self.atoms[w * 64 + b]);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{vehicles_tbox, PaperVocab};
    use crate::tableau::Tableau;
    use summa_guard::Budget;

    fn classified(
        tbox: &crate::tbox::TBox,
        voc: &crate::concept::Vocabulary,
    ) -> ClassHierarchy {
        let mut c = Tableau::new(tbox, voc);
        crate::classify::Classifier::classify(&mut c, tbox, voc).expect("classifies")
    }

    #[test]
    fn index_matches_hierarchy_on_vehicles() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let h = classified(&t, &p.voc);
        let idx = HierarchyIndex::build(&h).expect("closed hierarchy");
        assert!(idx.is_intact());
        // Rows are the hierarchy's rows (the TBox atoms) — the shared
        // PaperVocab holds animal names too, which stay unindexed.
        assert_eq!(idx.len(), h.concepts().count());
        let rows: Vec<ConceptId> = h.concepts().collect();
        for &sub in &rows {
            for &sup in &rows {
                assert_eq!(
                    idx.subsumes(sup, sub),
                    Some(h.subsumes(sup, sub)),
                    "pair ({}, {})",
                    p.voc.concept_name(sup),
                    p.voc.concept_name(sub),
                );
            }
            let row = idx.subsumers_of(sub).expect("indexed");
            let want: Vec<ConceptId> = h.subsumers_of(sub).into_iter().collect();
            assert_eq!(row, want);
        }
        // Descendants are the exact transpose.
        for &sup in &rows {
            let down = idx.subsumees_of(sup).expect("indexed");
            let want: Vec<ConceptId> =
                rows.iter().copied().filter(|&sub| h.subsumes(sup, sub)).collect();
            assert_eq!(down, want);
        }
        // A vocabulary atom outside the TBox is not indexed.
        assert!(!idx.contains(p.dog));
    }

    #[test]
    fn unknown_atoms_fall_through() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let h = classified(&t, &p.voc);
        let idx = HierarchyIndex::build(&h).expect("closed hierarchy");
        let ghost = ConceptId(9_999);
        assert!(!idx.contains(ghost));
        assert_eq!(idx.subsumes(ghost, p.car), None);
        assert_eq!(idx.subsumes(p.car, ghost), None);
        assert_eq!(idx.subsumers_of(ghost), None);
    }

    #[test]
    fn partial_hierarchies_refuse_to_index() {
        // A starved classification yields a partial hierarchy; if it
        // is unclosed (subsumers without rows) the build must refuse.
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let mut c = Tableau::new(&t, &p.voc);
        let g = crate::classify::Classifier::classify_governed(
            &mut c,
            &t,
            &p.voc,
            &Budget::new().with_steps(1),
        );
        if let Some(partial) = g.as_partial() {
            // Either it indexes (closed prefix) or refuses — it must
            // never build an unclosed index. Probe closure directly.
            let closed = partial.concepts().all(|cid| {
                partial
                    .subsumers_ref(cid)
                    .is_some_and(|s| s.iter().all(|&x| partial.subsumers_ref(x).is_some()))
            });
            assert_eq!(HierarchyIndex::build(partial).is_some(), closed);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let p = PaperVocab::new();
        let t = vehicles_tbox(&p);
        let h = classified(&t, &p.voc);
        let mut idx = HierarchyIndex::build(&h).expect("closed hierarchy");
        assert!(idx.is_intact());
        if let Some(w) = idx.ancestors.first_mut() {
            *w ^= 1;
        }
        assert!(!idx.is_intact());
    }

    #[test]
    fn sixty_five_atoms_cross_the_word_boundary() {
        // >64 atoms forces words == 2; the bit addressing must still
        // agree with the hierarchy on every pair.
        let mut voc = crate::concept::Vocabulary::new();
        let mut tbox = crate::tbox::TBox::new();
        let ids: Vec<ConceptId> = (0..65).map(|i| voc.concept(&format!("c{i}"))).collect();
        for w in ids.windows(2) {
            tbox.subsume(
                crate::concept::Concept::atom(w[0]),
                crate::concept::Concept::atom(w[1]),
            );
        }
        let h = classified(&tbox, &voc);
        let idx = HierarchyIndex::build(&h).expect("closed hierarchy");
        assert_eq!(idx.len(), 65);
        for (i, &sub) in ids.iter().enumerate() {
            for (j, &sup) in ids.iter().enumerate() {
                // Chain: c0 < c1 < … < c64, so sup subsumes sub iff
                // j >= i.
                assert_eq!(idx.subsumes(sup, sub), Some(j >= i), "({j}, {i})");
            }
        }
    }
}
