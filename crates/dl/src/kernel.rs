//! The agenda/trail expansion kernel: the default engine behind
//! [`Tableau::expand`].
//!
//! Three incremental structures replace the reference engine's
//! re-scan-the-world loop, without changing what the search *does*:
//!
//! * **Agenda** (`clean` flags): a node whose last full scan found no
//!   applicable deterministic rule is marked clean and skipped in later
//!   rounds, until something that could re-enable a rule at it happens.
//!   Label growth at `y` can only enable rules at `y` itself or —
//!   through equality blocking, which compares a node's label against
//!   its strict ancestors' — at `y`'s descendants, so an insert dirties
//!   exactly that cone (walked over the parent-pointer forest, dead
//!   intermediates included). Spawns are born dirty; merges
//!   conservatively re-dirty everything.
//! * **Incremental clash detection** (`pending` queue): instead of
//!   re-running `has_clash` over every alive node at every scan point,
//!   each mutation enqueues the checks that could newly clash — a
//!   [`ClashCheck::Delta`] for an inserted concept (⊥, complement
//!   pairs via [`Interner::probe_not`], its own ≤-restriction, and the
//!   ≤-restrictions at predecessors that mention it as filler),
//!   [`ClashCheck::AtMosts`] for distinctness marks and new edges, and
//!   a [`ClashCheck::Full`] for fresh or merged nodes. Checks evaluate
//!   against the *current* state at the same points the reference
//!   engine scans, so both see identical clash verdicts.
//! * **Trail** (`trail` + `choices`): nondeterministic alternatives
//!   mutate the single live [`State`] in place, recording inverse
//!   operations; backtracking unwinds the trail in LIFO order instead
//!   of cloning the whole completion tree per disjunct. Merges carry a
//!   [`MergeUndo`] record; everything else undoes from the op alone.
//!
//! Both engines consume the same [`Tableau::find_branch`] alternatives
//! (applied here in reversed order, matching the reference engine's
//! LIFO stack) and issue the identical `charge`/`count` sequence per
//! rule application, so answers, `Spend`, and starved-budget partial
//! results are engine-independent — the differential suite holds them
//! byte-identical.
//!
//! Two counters are purely observational (never charged, so the
//! ledger-reconciliation property subtracts them from the `dl.rule.*`
//! family): `dl.rule.agenda.skip` (clean nodes skipped per round) and
//! `dl.rule.trail.undo` (trail operations reversed per search).

use crate::concept::{CNode, ConceptRef, Interner, RoleId};
use crate::tableau::{
    Alt, MergeUndo, Outcome, State, Stop, Tableau, LABEL_SCANS,
};
use std::collections::BTreeSet;
use summa_guard::Meter;

/// Observational: clean nodes the agenda skipped during rounds.
const AGENDA_SKIP: &str = "dl.rule.agenda.skip";
/// Observational: trail operations reversed while backtracking.
const TRAIL_UNDO: &str = "dl.rule.trail.undo";

/// One reversible mutation on the live [`State`].
#[derive(Debug)]
enum TrailOp {
    /// `c` was inserted into `node`'s label (it was absent before).
    Insert { node: usize, c: ConceptRef },
    /// The most recent node was spawned (its parent edge is the
    /// parent's last edge — LIFO unwinding keeps that true).
    Spawn,
    /// The pair `(lo, hi)` was newly marked distinct.
    Distinct { lo: usize, hi: usize },
    /// A sibling merge; boxed because the undo record is large.
    Merge(Box<MergeUndo>),
}

/// A clash check owed before the state may be declared clash-free.
#[derive(Debug, Clone, Copy)]
enum ClashCheck {
    /// Run the complete `has_clash` scan over one node.
    Full(usize),
    /// `c` was just inserted at `node`: check only the clash
    /// conditions that insertion can newly create.
    Delta { node: usize, c: ConceptRef },
    /// Re-evaluate every ≤-restriction in `node`'s label (its
    /// successor set or their distinctness changed).
    AtMosts(usize),
}

/// One open disjunction in the depth-first search.
#[derive(Debug)]
struct ChoicePoint {
    /// Trail length when the choice was made; unwinding to here
    /// restores the pre-branch state.
    trail_len: usize,
    /// Node count at the choice point (spawned nodes past it die on
    /// backtrack, so bookkeeping arrays truncate to this).
    n_nodes: usize,
    /// Alternatives in *exploration* order (already reversed: the
    /// reference engine pushes alternatives on a stack and pops the
    /// last one first).
    alts: Vec<Alt>,
    /// Next alternative to try.
    cursor: usize,
    /// Paranoid mode only: a full clone taken at the choice point,
    /// compared bit-for-bit after every unwind back to it.
    snapshot: Option<Box<State>>,
}

/// The mutable search context threaded through one `expand` call: the
/// live state plus the agenda, pending clash checks, trail, and the
/// derived indexes (predecessors for delta clash checks, the
/// parent-pointer children forest for dirty-cone walks).
pub(crate) struct Search {
    pub(crate) st: State,
    trail: Vec<TrailOp>,
    choices: Vec<ChoicePoint>,
    /// `clean[x]` ⇒ no deterministic rule applies at `x`.
    clean: Vec<bool>,
    pending: Vec<ClashCheck>,
    /// `preds[y]`: nodes with an edge into `y` (duplicates possible —
    /// they only cost a redundant check). Rebuilt wholesale around
    /// merges, which rewire edges arbitrarily.
    preds: Vec<Vec<usize>>,
    /// `children[x]`: nodes whose *parent pointer* is `x` (the
    /// blocking ancestry, not the edge relation).
    children: Vec<Vec<usize>>,
    undone: u64,
    paranoid: bool,
    roundtrips_ok: bool,
}

impl Search {
    pub(crate) fn new(st: State, paranoid: bool) -> Self {
        let n = st.nodes.len();
        let mut preds = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for x in 0..n {
            for &(_, y) in &st.nodes[x].edges {
                preds[y].push(x);
            }
            if let Some(p) = st.nodes[x].parent {
                children[p].push(x);
            }
        }
        // The initial state owes a full scan of every alive node —
        // exactly the reference engine's first clash pass.
        let pending = (0..n)
            .filter(|&x| st.nodes[x].alive)
            .map(ClashCheck::Full)
            .collect();
        Search {
            st,
            trail: Vec::new(),
            choices: Vec::new(),
            clean: vec![false; n],
            pending,
            preds,
            children,
            undone: 0,
            paranoid,
            roundtrips_ok: true,
        }
    }

    /// Did every paranoid-mode unwind restore the choice-point state
    /// bit-for-bit (including the sorted-label caches)?
    pub(crate) fn roundtrips_ok(&self) -> bool {
        self.roundtrips_ok
    }

    /// Insert `c` into `x`'s label through the trail. Returns whether
    /// the label grew; a no-op insert leaves no trace.
    fn insert(&mut self, x: usize, c: ConceptRef, it: &Interner) -> bool {
        if !self.st.insert_label(x, c, it) {
            return false;
        }
        self.trail.push(TrailOp::Insert { node: x, c });
        self.dirty_cone(x);
        self.pending.push(ClashCheck::Delta { node: x, c });
        true
    }

    /// Label growth at `x` can enable rules at `x` and — via equality
    /// blocking against ancestor labels — at every descendant, so the
    /// whole parent-pointer cone goes dirty (dead nodes included:
    /// blocking walks through them).
    fn dirty_cone(&mut self, x: usize) {
        let mut stack = vec![x];
        while let Some(y) = stack.pop() {
            self.clean[y] = false;
            stack.extend(self.children[y].iter().copied());
        }
    }

    /// Mark two nodes distinct through the trail. Distinctness can
    /// complete an over-full ≤-restriction at any predecessor of
    /// either endpoint, so those restrictions are re-checked.
    fn mark_distinct(&mut self, a: usize, b: usize) {
        if !self.st.mark_distinct(a, b) {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.trail.push(TrailOp::Distinct { lo, hi });
        for &p in &self.preds[a] {
            self.pending.push(ClashCheck::AtMosts(p));
        }
        for &p in &self.preds[b] {
            self.pending.push(ClashCheck::AtMosts(p));
        }
    }

    /// Record a just-spawned node `id` (child of `x`): extend the
    /// indexes, owe it a full clash scan, re-check `x`'s
    /// ≤-restrictions (it gained a successor), and trail the spawn.
    fn note_spawn(&mut self, x: usize, id: usize) {
        debug_assert_eq!(id, self.st.nodes.len() - 1);
        self.preds.push(vec![x]);
        self.children.push(Vec::new());
        self.children[x].push(id);
        self.clean.push(false);
        self.trail.push(TrailOp::Spawn);
        self.pending.push(ClashCheck::Full(id));
        self.pending.push(ClashCheck::AtMosts(x));
    }

    /// Apply a merge alternative through the trail. Merging rewires
    /// edges arbitrarily, so the predecessor index is rebuilt, every
    /// node goes dirty, and every alive node owes a full clash scan —
    /// the one conservative (clone-free) corner of the kernel.
    fn apply_merge(&mut self, a: usize, b: usize, it: &Interner) {
        let undo = self.st.merge(a, b, it);
        self.trail.push(TrailOp::Merge(Box::new(undo)));
        self.rebuild_preds();
        for f in self.clean.iter_mut() {
            *f = false;
        }
        self.pending.clear();
        for x in 0..self.st.nodes.len() {
            if self.st.nodes[x].alive {
                self.pending.push(ClashCheck::Full(x));
            }
        }
    }

    fn rebuild_preds(&mut self) {
        debug_assert_eq!(self.preds.len(), self.st.nodes.len());
        for row in self.preds.iter_mut() {
            row.clear();
        }
        for x in 0..self.st.nodes.len() {
            for &(_, y) in &self.st.nodes[x].edges {
                self.preds[y].push(x);
            }
        }
    }

    /// Reverse one trail operation. Sound only in LIFO order (merge
    /// undo slots and the parent's-last-edge invariant both rely on
    /// everything recorded later being undone already).
    fn undo_op(&mut self, op: TrailOp, it: &Interner) {
        match op {
            TrailOp::Insert { node, c } => self.st.remove_label(node, c, it),
            TrailOp::Distinct { lo, hi } => {
                let removed = self.st.distinct.remove(&(lo, hi));
                debug_assert!(removed, "trail undo removed an absent distinct pair");
            }
            TrailOp::Spawn => {
                let node = self.st.nodes.pop().expect("spawn undo on empty state");
                let id = self.st.nodes.len();
                let parent = node.parent.expect("spawned nodes have parents");
                let edge = self.st.nodes[parent].edges.pop();
                debug_assert!(
                    matches!(edge, Some((_, y)) if y == id),
                    "spawn undo popped a foreign edge"
                );
                let child = self.children[parent].pop();
                debug_assert_eq!(child, Some(id));
                self.children.pop();
                self.preds.pop();
                self.clean.pop();
            }
            TrailOp::Merge(undo) => {
                self.st.undo_merge(*undo, it);
                self.rebuild_preds();
            }
        }
        self.undone += 1;
    }

    /// Undo the most recent choice and apply its next alternative.
    /// Returns `false` when every choice point is exhausted (the whole
    /// search tree is closed — the query is unsatisfiable).
    fn backtrack(&mut self, it: &Interner) -> bool {
        loop {
            let (trail_len, n_nodes, exhausted) = match self.choices.last() {
                None => return false,
                Some(cp) => (cp.trail_len, cp.n_nodes, cp.cursor >= cp.alts.len()),
            };
            while self.trail.len() > trail_len {
                let op = self.trail.pop().expect("trail shorter than choice point");
                self.undo_op(op, it);
            }
            // The choice point sat at a deterministic fixpoint, so
            // every surviving node is clean; nodes spawned past it
            // were popped by the spawn undos above.
            self.clean.truncate(n_nodes);
            for f in self.clean.iter_mut() {
                *f = true;
            }
            // Pending checks were drained before branching (and
            // cleared when a clash aborted the alternative), so the
            // restored state owes none.
            self.pending.clear();
            if self.paranoid {
                let in_sync = sorted_in_sync(&self.st, it);
                if let Some(snap) = self.choices.last().and_then(|cp| cp.snapshot.as_deref()) {
                    if *snap != self.st || !in_sync {
                        self.roundtrips_ok = false;
                    }
                }
            }
            if exhausted {
                self.choices.pop();
                continue;
            }
            self.apply_next_alt(it);
            return true;
        }
    }

    /// Open a choice point over `alts` and apply the first alternative
    /// in exploration order (reversed — the reference engine stacks
    /// alternatives and pops the last one first).
    fn push_choice(&mut self, mut alts: Vec<Alt>, it: &Interner) {
        alts.reverse();
        let snapshot = self.paranoid.then(|| Box::new(self.st.clone()));
        self.choices.push(ChoicePoint {
            trail_len: self.trail.len(),
            n_nodes: self.st.nodes.len(),
            alts,
            cursor: 0,
            snapshot,
        });
        self.apply_next_alt(it);
    }

    fn apply_next_alt(&mut self, it: &Interner) {
        let cp = self.choices.last_mut().expect("no open choice point");
        let alt = cp.alts[cp.cursor];
        cp.cursor += 1;
        match alt {
            Alt::Insert { node, c } => {
                let grew = self.insert(node, c, it);
                debug_assert!(grew, "branch alternatives insert fresh concepts");
            }
            Alt::Merge { a, b } => self.apply_merge(a, b, it),
        }
    }

    /// Evaluate every owed clash check against the current state.
    /// Returns `true` (and drops the remaining checks — the state is
    /// being abandoned) on the first clash. Called exactly where the
    /// reference engine runs its full scans, so both engines judge the
    /// same states at the same times.
    fn drain_clash(&mut self, it: &Interner, meter: &Meter) -> bool {
        while let Some(chk) = self.pending.pop() {
            let clash = match chk {
                ClashCheck::Full(x) => {
                    self.st.nodes[x].alive && {
                        meter.count(LABEL_SCANS, 1);
                        self.st.has_clash(x, it)
                    }
                }
                ClashCheck::Delta { node, c } => {
                    self.st.nodes[node].alive && self.delta_clash(it, node, c)
                }
                ClashCheck::AtMosts(x) => self.st.nodes[x].alive && self.atmosts_clash(it, x),
            };
            if clash {
                self.pending.clear();
                return true;
            }
        }
        false
    }

    /// Can inserting `c` at `x` have created a clash? Mirrors
    /// `has_clash` restricted to conditions involving `c`: ⊥, a
    /// complement pair in either direction (the reverse direction
    /// probes the interner for `¬c` — a negation never interned cannot
    /// appear in any label), `c`'s own ≤-restriction, and the
    /// ≤-restrictions at predecessors with `c` as filler (the label
    /// growth may have completed an over-full successor set).
    fn delta_clash(&self, it: &Interner, x: usize, c: ConceptRef) -> bool {
        if c == it.bottom() {
            return true;
        }
        match it.node(c) {
            CNode::Not(inner) if self.st.nodes[x].label.contains(inner) => {
                return true;
            }
            CNode::AtMost(n, r, cc) if self.st.atmost_clashes(x, *n, *r, *cc) => {
                return true;
            }
            _ => {}
        }
        if let Some(neg) = it.probe_not(c) {
            if self.st.nodes[x].label.contains(&neg) {
                return true;
            }
        }
        for &p in &self.preds[x] {
            if !self.st.nodes[p].alive {
                continue;
            }
            for (n, r, cc) in atmost_entries(&self.st, it, p) {
                if cc == c && self.st.atmost_clashes(p, n, r, cc) {
                    return true;
                }
            }
        }
        false
    }

    /// Re-evaluate every ≤-restriction in `x`'s label.
    fn atmosts_clash(&self, it: &Interner, x: usize) -> bool {
        atmost_entries(&self.st, it, x)
            .into_iter()
            .any(|(n, r, cc)| self.st.atmost_clashes(x, n, r, cc))
    }

    /// Emit the trail-undo total (observational — backtracking is
    /// bookkeeping, not ledger work).
    fn flush_counters(&self, meter: &Meter) {
        if self.undone > 0 {
            meter.count(TRAIL_UNDO, self.undone);
        }
    }
}

/// The ≤-restrictions in `x`'s label, read off the tail of the sorted
/// cache: `AtMost` has the greatest structural rank, so its entries
/// are exactly the maximal suffix in structural order.
fn atmost_entries(st: &State, it: &Interner, x: usize) -> Vec<(u32, RoleId, ConceptRef)> {
    st.nodes[x]
        .sorted
        .iter()
        .rev()
        .map_while(|&c| match it.node(c) {
            CNode::AtMost(n, r, cc) => Some((*n, *r, *cc)),
            _ => None,
        })
        .collect()
}

/// Is every node's sorted cache a faithful structural ordering of its
/// label set? (Paranoid-mode invariant.)
fn sorted_in_sync(st: &State, it: &Interner) -> bool {
    st.nodes.iter().all(|n| {
        n.sorted.len() == n.label.len()
            && n.sorted.iter().all(|c| n.label.contains(c))
            && n
                .sorted
                .windows(2)
                .all(|w| it.cmp_structural(w[0], w[1]) == std::cmp::Ordering::Less)
    })
}

fn note_skips(meter: &Meter, skipped: u64) {
    if skipped > 0 {
        meter.count(AGENDA_SKIP, skipped);
    }
}

impl Tableau {
    /// The agenda/trail engine behind [`Tableau::expand`] (see the
    /// module docs for the machinery and the equivalence argument).
    pub(crate) fn expand_kernel(
        &mut self,
        st: State,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
    ) -> std::result::Result<Outcome, Stop> {
        let mut s = Search::new(st, false);
        let r = self.kernel_search(&mut s, node_cap, created, meter);
        s.flush_counters(meter);
        r
    }

    /// Depth-first search over the single live state. Each loop
    /// iteration is one "state entry" — the exact analogue of a
    /// reference-engine stack pop, with the identical charge: one step
    /// on entry, one per deterministic round (the final no-change
    /// round included), spawn charges inside the rounds.
    fn kernel_search(
        &mut self,
        s: &mut Search,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
    ) -> std::result::Result<Outcome, Stop> {
        loop {
            meter.charge(1)?;
            meter.count("dl.rule.search", 1);
            // Deterministic rules to fixpoint, abandoning on clash —
            // checks run before the first round and after every
            // changed round, never after the no-change round, exactly
            // like the reference loop.
            let mut clashed = s.drain_clash(&self.interner, meter);
            while !clashed {
                if !self.kernel_round(s, node_cap, created, meter)? {
                    break;
                }
                clashed = s.drain_clash(&self.interner, meter);
            }
            if clashed {
                if !s.backtrack(&self.interner) {
                    return Ok(Outcome::Clash);
                }
                continue;
            }
            match self.find_branch(&s.st, meter) {
                Some(alts) => s.push_choice(alts, &self.interner),
                // Nothing applicable and clash-free: complete.
                None => return Ok(Outcome::Satisfiable),
            }
        }
    }

    /// One deterministic round over the dirty nodes. Identical rule
    /// logic and scan order to the reference `apply_deterministic`;
    /// the only difference is skipping clean nodes, which is sound
    /// because `clean[x]` is set only by a full empty scan of `x` and
    /// cleared by everything that could re-enable a rule there (own
    /// label growth, ancestor label growth via the dirty cone, merges
    /// re-dirtying wholesale, backtracking restoring a fixpoint).
    fn kernel_round(
        &self,
        s: &mut Search,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Stop> {
        meter.charge(1)?;
        meter.count("dl.rule.round", 1);
        let mut skipped = 0u64;
        let n = s.st.nodes.len();
        for x in 0..n {
            if !s.st.nodes[x].alive {
                continue;
            }
            if s.clean[x] {
                skipped += 1;
                continue;
            }
            meter.count(LABEL_SCANS, 1);
            let mut i = 0;
            while i < s.st.nodes[x].sorted.len() {
                let c = s.st.nodes[x].sorted[i];
                i += 1;
                match self.interner.node(c) {
                    // absorption: A ∈ L(x) with A ⊑ C absorbed → add C
                    CNode::Atom(a) => {
                        if let Some(rhss) = self.absorbed.get(a) {
                            let mut changed = false;
                            for &rhs in rhss {
                                changed |= s.insert(x, rhs, &self.interner);
                            }
                            if changed {
                                note_skips(meter, skipped);
                                return Ok(true);
                            }
                        }
                    }
                    // ⊓-rule
                    CNode::And(parts) => {
                        let mut changed = false;
                        for &p in parts.iter() {
                            changed |= s.insert(x, p, &self.interner);
                        }
                        if changed {
                            note_skips(meter, skipped);
                            return Ok(true);
                        }
                    }
                    // ∀-rule
                    CNode::Forall(r, d) => {
                        let (r, d) = (*r, *d);
                        for y in s.st.successors(x, r) {
                            if s.insert(y, d, &self.interner) {
                                note_skips(meter, skipped);
                                return Ok(true);
                            }
                        }
                    }
                    // ∃-rule (blocked nodes do not generate)
                    CNode::Exists(r, d) => {
                        let (r, d) = (*r, *d);
                        if s.st.is_blocked(x) {
                            continue;
                        }
                        let has = s
                            .st
                            .successors(x, r)
                            .into_iter()
                            .any(|y| s.st.nodes[y].label.contains(&d));
                        if !has {
                            self.kernel_spawn(
                                s,
                                x,
                                r,
                                [d],
                                node_cap,
                                created,
                                meter,
                                "dl.rule.exists",
                            )?;
                            note_skips(meter, skipped);
                            return Ok(true);
                        }
                    }
                    // ≥-rule
                    CNode::AtLeast(k, r, d) => {
                        let (k, r, d) = (*k, *r, *d);
                        if s.st.is_blocked(x) {
                            continue;
                        }
                        let with_d: Vec<usize> = s
                            .st
                            .successors(x, r)
                            .into_iter()
                            .filter(|&y| s.st.nodes[y].label.contains(&d))
                            .collect();
                        // Count a maximal pairwise-distinct subset
                        // conservatively: all current ones are candidates.
                        if (with_d.len() as u32) < k {
                            let mut fresh = vec![];
                            for _ in with_d.len() as u32..k {
                                let id = self.kernel_spawn(
                                    s,
                                    x,
                                    r,
                                    [d],
                                    node_cap,
                                    created,
                                    meter,
                                    "dl.rule.at_least",
                                )?;
                                fresh.push(id);
                            }
                            // New witnesses pairwise distinct, and distinct
                            // from existing D-successors.
                            for (j, &a) in fresh.iter().enumerate() {
                                for &b in &fresh[j + 1..] {
                                    s.mark_distinct(a, b);
                                }
                                for &b in &with_d {
                                    s.mark_distinct(a, b);
                                }
                            }
                            note_skips(meter, skipped);
                            return Ok(true);
                        }
                    }
                    _ => {}
                }
            }
            // A complete scan applied nothing: x is at fixpoint until
            // something dirties it again.
            s.clean[x] = true;
        }
        note_skips(meter, skipped);
        Ok(false)
    }

    /// Spawn through the shared [`Tableau::spawn_child`] (so budget
    /// checks, charges, universal seeding, and ∀-propagation stay
    /// engine-identical), then record the kernel bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn kernel_spawn(
        &self,
        s: &mut Search,
        x: usize,
        r: RoleId,
        seed: impl IntoIterator<Item = ConceptRef>,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
        rule: &'static str,
    ) -> std::result::Result<usize, Stop> {
        let id = self.spawn_child(&mut s.st, x, r, seed, node_cap, created, meter, rule)?;
        s.note_spawn(x, id);
        Ok(id)
    }

    /// Test hook: run one satisfiability search in paranoid mode —
    /// every backtrack compares the unwound state bit-for-bit against
    /// a snapshot taken at the choice point (and re-validates the
    /// sorted-label caches). Returns `(satisfiable, roundtrips_ok)`.
    /// Bypasses every cache so the search genuinely runs.
    #[doc(hidden)]
    pub fn kernel_trail_roundtrip(&mut self, c: &crate::concept::Concept) -> (bool, bool) {
        let h = self.interner.intern(c);
        let nnf = self.interner.nnf(h);
        let mut st = State::new();
        let mut label: BTreeSet<ConceptRef> = BTreeSet::new();
        label.insert(nnf);
        label.extend(self.universal.iter().copied());
        st.add_node(label, None, &self.interner);
        let mut s = Search::new(st, true);
        let mut meter = Meter::unlimited();
        let r = self.kernel_search(&mut s, usize::MAX, &mut 0, &mut meter);
        let sat = matches!(r, Ok(Outcome::Satisfiable));
        (sat, s.roundtrips_ok())
    }
}
