//! Assertional boxes (ABoxes): concept and role assertions about
//! named individuals.

use crate::concept::{Concept, RoleId, Vocabulary};

/// Interned individual name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Individual(pub u32);

/// An ABox over a vocabulary, with its own individual interner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ABox {
    individuals: Vec<String>,
    concept_assertions: Vec<(Individual, Concept)>,
    role_assertions: Vec<(Individual, RoleId, Individual)>,
}

impl ABox {
    /// An empty ABox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an individual by name (idempotent).
    pub fn individual(&mut self, name: &str) -> Individual {
        if let Some(i) = self.individuals.iter().position(|n| n == name) {
            return Individual(i as u32);
        }
        self.individuals.push(name.to_string());
        Individual((self.individuals.len() - 1) as u32)
    }

    /// Name of an individual.
    pub fn individual_name(&self, i: Individual) -> &str {
        &self.individuals[i.0 as usize]
    }

    /// Number of individuals.
    pub fn n_individuals(&self) -> usize {
        self.individuals.len()
    }

    /// All individuals.
    pub fn individuals(&self) -> impl Iterator<Item = Individual> + '_ {
        (0..self.individuals.len() as u32).map(Individual)
    }

    /// Assert `C(a)`.
    pub fn assert_concept(&mut self, a: Individual, c: Concept) {
        self.concept_assertions.push((a, c));
    }

    /// Assert `r(a, b)`.
    pub fn assert_role(&mut self, a: Individual, r: RoleId, b: Individual) {
        self.role_assertions.push((a, r, b));
    }

    /// Concept assertions.
    pub fn concept_assertions(&self) -> &[(Individual, Concept)] {
        &self.concept_assertions
    }

    /// Role assertions.
    pub fn role_assertions(&self) -> &[(Individual, RoleId, Individual)] {
        &self.role_assertions
    }

    /// Render against a vocabulary.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        for (a, c) in &self.concept_assertions {
            out.push_str(&format!(
                "{}({})\n",
                c.display(voc),
                self.individual_name(*a)
            ));
        }
        for (a, r, b) in &self.role_assertions {
            out.push_str(&format!(
                "{}({}, {})\n",
                voc.role_name(*r),
                self.individual_name(*a),
                self.individual_name(*b)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn individuals_are_interned() {
        let mut a = ABox::new();
        let x = a.individual("napoleon");
        let y = a.individual("napoleon");
        assert_eq!(x, y);
        assert_eq!(a.n_individuals(), 1);
        assert_eq!(a.individual_name(x), "napoleon");
    }

    #[test]
    fn assertions_accumulate_and_render() {
        let mut voc = Vocabulary::new();
        let winner = voc.concept("WinnerAtJena");
        let r = voc.role("defeated");
        let mut a = ABox::new();
        let nap = a.individual("napoleon");
        let prussia = a.individual("prussia");
        a.assert_concept(nap, Concept::atom(winner));
        a.assert_role(nap, r, prussia);
        assert_eq!(a.concept_assertions().len(), 1);
        assert_eq!(a.role_assertions().len(), 1);
        let s = a.render(&voc);
        assert!(s.contains("WinnerAtJena(napoleon)"));
        assert!(s.contains("defeated(napoleon, prussia)"));
    }
}
