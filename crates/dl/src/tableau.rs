//! Tableau-based satisfiability and subsumption for ALCQ with general
//! TBoxes.
//!
//! The calculus is the standard one: completion trees whose nodes carry
//! concept labels, expansion rules for ⊓, ⊔, ∃, ∀, ≥, ≤ (with the
//! *choose* rule and sibling merging for qualified number
//! restrictions), GCIs internalized as universal constraints added to
//! every node, and **equality blocking** (a non-root node is blocked
//! when some ancestor carries exactly the same label — sound for ALCQ
//! without inverse roles).
//!
//! Two engines explore the nondeterminism (⊔, choose, merge) over the
//! *identical* search tree:
//!
//! * the **agenda/trail kernel** (`kernel` module, the default):
//!   dirty-node scheduling for the deterministic rules, incremental
//!   clash detection, and a choice-point trail that undoes label
//!   insertions, node spawns, and merges on backtrack;
//! * the **reference engine** ([`Tableau::expand_reference`], forced
//!   by `SUMMA_TABLEAU_REFERENCE=1` or
//!   [`Tableau::with_reference_kernel`]): re-scans every node each
//!   round and clones the completion state per alternative — slower,
//!   deliberately simple, and kept as the differential-testing oracle
//!   (mirroring what `classify_brute_force_governed` is to the
//!   enhanced classifier).
//!
//! ABox consistency treats named individuals as root nodes under the
//! unique-name assumption.

use crate::abox::ABox;
use crate::cache::{tbox_fingerprint, SatCache};
use crate::concept::{CNode, Concept, ConceptRef, Interner, RoleId, Vocabulary};
use crate::error::{DlError, Result};
use crate::fxhash::FxHashMap;
use crate::tbox::TBox;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use summa_guard::{Budget, Governed, Interrupt, Meter};

/// Default node budget per satisfiability call.
pub const DEFAULT_NODE_BUDGET: usize = 20_000;

/// Observational counter: complete single-label traversals (clash
/// scans, deterministic-rule scans, branch scans). Both engines emit
/// it, so the tableau bench can show the agenda kernel doing strictly
/// less scanning for the same search tree. Deliberately *outside* the
/// `dl.rule.*` family: it is not a charged rule application.
pub(crate) const LABEL_SCANS: &str = "dl.tableau.label_scans";

/// Why the expansion loop stopped early: the reasoner's own node
/// budget (legacy API), or the caller's [`Budget`] envelope.
pub(crate) enum Stop {
    NodeBudget,
    Interrupted(Interrupt),
}

impl From<Interrupt> for Stop {
    fn from(i: Interrupt) -> Self {
        Stop::Interrupted(i)
    }
}

/// Engine selection default: `SUMMA_TABLEAU_REFERENCE=1` forces every
/// newly constructed reasoner onto the reference engine (the same
/// escape-hatch idiom as `SUMMA_SERVE_COLD`). Tests and benches that
/// compare engines pin the choice per-instance with
/// [`Tableau::with_reference_kernel`] instead.
fn reference_kernel_default() -> bool {
    std::env::var("SUMMA_TABLEAU_REFERENCE").map(|v| v == "1").unwrap_or(false)
}

/// Lift a metered result into a [`Governed`] outcome (boolean queries
/// have no partial answer).
fn governed_outcome<T>(r: std::result::Result<T, Interrupt>) -> Governed<T> {
    match r {
        Ok(v) => Governed::Completed(v),
        Err(i) => Governed::from_interrupt(i, None),
    }
}

/// A tableau reasoner bound to one TBox.
///
/// All concept manipulation inside the reasoner runs on hash-consed
/// [`ConceptRef`] handles from a reasoner-local [`Interner`]: node
/// labels are sets of `u32` handles, equality blocking compares word
/// sets, rule dispatch matches on the arena node, and the local
/// satisfiability memo keys on a single handle — no deep-tree hashing
/// or `Box`/`Vec` cloning anywhere in the expansion loop. Trees are
/// rebuilt (`externalize`) only at the shared-cache boundary, because
/// handles are interner-local while the [`SatCache`] is shared across
/// reasoners with different interning histories.
#[derive(Debug, Clone)]
pub struct Tableau {
    /// Hash-consing arena all handles below point into.
    pub(crate) interner: Interner,
    /// Universal constraints: internalized GCIs in NNF (only those not
    /// absorbed below).
    pub(crate) universal: Vec<ConceptRef>,
    /// Absorbed axioms `A ⊑ C`: applied lazily when the atom `A`
    /// appears in a node label (the standard absorption optimization —
    /// sound and complete, and avoids one disjunction per GCI per
    /// node).
    pub(crate) absorbed: BTreeMap<crate::concept::ConceptId, Vec<ConceptRef>>,
    /// Run the pre-overhaul clone-per-disjunct engine
    /// ([`Tableau::expand_reference`]) instead of the agenda/trail
    /// kernel. Both walk the identical search tree with identical
    /// charges, so the switch trades speed, never answers. Defaults
    /// from the `SUMMA_TABLEAU_REFERENCE=1` escape hatch.
    use_reference: bool,
    /// Per-call node budget.
    budget: usize,
    /// Memoized satisfiability results keyed by the handle of the NNF
    /// input concept.
    cache: FxHashMap<ConceptRef, bool>,
    /// Optional cross-reasoner cache shared with sibling workers; only
    /// completed answers are published, so sharing never changes any
    /// result.
    shared: Option<Arc<SatCache>>,
    /// Normalized-TBox fingerprint keying this reasoner's entries in
    /// the shared cache.
    fingerprint: u64,
    /// Interner hits already flowed into the `dl.intern.hits` counter
    /// (the counter reports deltas at each sat-call boundary).
    intern_hits_reported: u64,
}

/// Sort a label buffer into structural order. This is the single
/// sorting code path in the reasoner: [`State::add_node`] seeds the
/// per-node cache through it, and [`State::insert_label`] maintains
/// the cache by binary insertion against the same comparator — no
/// rule scan re-sorts anything.
pub(crate) fn sort_structural(it: &Interner, buf: &mut [ConceptRef]) {
    buf.sort_by(|&a, &b| it.cmp_structural(a, b));
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Node {
    pub(crate) label: BTreeSet<ConceptRef>,
    /// The label in *structural* order ([`Interner::cmp_structural`]),
    /// maintained incrementally on insert. Rule scans read this cache
    /// instead of re-collecting and re-sorting the set every round.
    pub(crate) sorted: Vec<ConceptRef>,
    /// Outgoing edges: (role, child index). Multiple edges to the same
    /// child are allowed after merges.
    pub(crate) edges: Vec<(RoleId, usize)>,
    /// Parent index; `None` for root/ABox nodes (never blocked).
    pub(crate) parent: Option<usize>,
    /// Merged-away nodes are dead.
    pub(crate) alive: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct State {
    pub(crate) nodes: Vec<Node>,
    /// Pairs of node ids asserted pairwise-distinct (from ≥-rules and
    /// the unique-name assumption on ABox individuals).
    pub(crate) distinct: BTreeSet<(usize, usize)>,
}

/// Everything needed to reverse a [`State::merge`]: the trail kernel
/// undoes merges from this record instead of cloning states (the
/// reference engine drops it).
#[derive(Debug)]
pub(crate) struct MergeUndo {
    pub(crate) a: usize,
    pub(crate) b: usize,
    /// Labels newly added to `a` (present in `b`, absent from `a`).
    pub(crate) added: Vec<ConceptRef>,
    /// `a.edges` length before `b`'s edges were appended.
    pub(crate) a_edges_len: usize,
    /// `b`'s pristine edge list (moved out before rewiring).
    pub(crate) b_edges: Vec<(RoleId, usize)>,
    /// Edge slots rewired `b → a`: (node, edge index).
    pub(crate) rewired: Vec<(usize, usize)>,
    /// Distinct pairs newly inserted by the transfer.
    pub(crate) distinct_added: Vec<(usize, usize)>,
}

impl State {
    pub(crate) fn new() -> Self {
        State {
            nodes: vec![],
            distinct: BTreeSet::new(),
        }
    }

    pub(crate) fn add_node(
        &mut self,
        label: BTreeSet<ConceptRef>,
        parent: Option<usize>,
        it: &Interner,
    ) -> usize {
        let mut sorted: Vec<ConceptRef> = label.iter().copied().collect();
        sort_structural(it, &mut sorted);
        self.nodes.push(Node {
            label,
            sorted,
            edges: vec![],
            parent,
            alive: true,
        });
        self.nodes.len() - 1
    }

    /// Insert `c` into `x`'s label, keeping the sorted cache in sync.
    /// Returns whether the label actually grew.
    pub(crate) fn insert_label(&mut self, x: usize, c: ConceptRef, it: &Interner) -> bool {
        let node = &mut self.nodes[x];
        if !node.label.insert(c) {
            return false;
        }
        let pos = node
            .sorted
            .binary_search_by(|&p| it.cmp_structural(p, c))
            .unwrap_err();
        node.sorted.insert(pos, c);
        true
    }

    /// Remove `c` from `x`'s label (trail undo only — expansion never
    /// shrinks labels).
    pub(crate) fn remove_label(&mut self, x: usize, c: ConceptRef, it: &Interner) {
        let node = &mut self.nodes[x];
        let removed = node.label.remove(&c);
        debug_assert!(removed, "trail undo removed an absent label");
        match node.sorted.binary_search_by(|&p| it.cmp_structural(p, c)) {
            Ok(pos) => {
                node.sorted.remove(pos);
            }
            Err(_) => debug_assert!(false, "sorted cache out of sync with label set"),
        }
    }

    /// Returns whether the pair was newly inserted.
    pub(crate) fn mark_distinct(&mut self, a: usize, b: usize) -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.distinct.insert((lo, hi))
    }

    pub(crate) fn are_distinct(&self, a: usize, b: usize) -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.distinct.contains(&(lo, hi))
    }

    /// r-successors (alive) of node `x`.
    pub(crate) fn successors(&self, x: usize, r: RoleId) -> Vec<usize> {
        let mut out: Vec<usize> = self.nodes[x]
            .edges
            .iter()
            .filter(|(er, c)| *er == r && self.nodes[*c].alive)
            .map(|(_, c)| *c)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// ≤n r.C clash at `x` for one restriction: more than n
    /// pairwise-distinct r-successors containing C. Shared by the full
    /// label scan below and the kernel's incremental delta checks.
    pub(crate) fn atmost_clashes(&self, x: usize, n: u32, r: RoleId, cc: ConceptRef) -> bool {
        let with_c: Vec<usize> = self
            .successors(x, r)
            .into_iter()
            .filter(|&y| self.nodes[y].label.contains(&cc))
            .collect();
        if with_c.len() <= n as usize {
            return false;
        }
        // clash only if no two of them are mergeable
        with_c
            .iter()
            .enumerate()
            .all(|(i, &a)| with_c[i + 1..].iter().all(|&b| self.are_distinct(a, b)))
    }

    /// Does the label of `x` directly clash?
    pub(crate) fn has_clash(&self, x: usize, it: &Interner) -> bool {
        let l = &self.nodes[x].label;
        if l.contains(&it.bottom()) {
            return true;
        }
        for &c in l {
            match it.node(c) {
                CNode::Not(inner) if l.contains(inner) => {
                    return true;
                }
                CNode::AtMost(n, r, cc) if self.atmost_clashes(x, *n, *r, *cc) => {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Equality blocking: `x` is blocked when some strict ancestor has
    /// an identical label.
    pub(crate) fn is_blocked(&self, x: usize) -> bool {
        let mut cur = self.nodes[x].parent;
        while let Some(a) = cur {
            if self.nodes[a].label == self.nodes[x].label {
                return true;
            }
            cur = self.nodes[a].parent;
        }
        false
    }

    /// Merge node `b` into node `a` (siblings under the ≤-rule): union
    /// labels, move edges, rewire incoming edges, kill `b`. Returns the
    /// record that [`State::undo_merge`] reverses exactly.
    pub(crate) fn merge(&mut self, a: usize, b: usize, it: &Interner) -> MergeUndo {
        let blabel: Vec<ConceptRef> = self.nodes[b].label.iter().copied().collect();
        let mut added = Vec::new();
        for c in blabel {
            if self.insert_label(a, c, it) {
                added.push(c);
            }
        }
        let a_edges_len = self.nodes[a].edges.len();
        let b_edges = std::mem::take(&mut self.nodes[b].edges);
        self.nodes[a].edges.extend(b_edges.iter().copied());
        self.nodes[b].alive = false;
        // Rewire incoming edges from any node to b → a.
        let mut rewired = Vec::new();
        for (i, n) in self.nodes.iter_mut().enumerate() {
            for (j, e) in n.edges.iter_mut().enumerate() {
                if e.1 == b {
                    e.1 = a;
                    rewired.push((i, j));
                }
            }
        }
        // Distinctness constraints transfer.
        let moved: Vec<(usize, usize)> = self
            .distinct
            .iter()
            .filter(|&&(x, y)| x == b || y == b)
            .copied()
            .collect();
        let mut distinct_added = Vec::new();
        for (x, y) in moved {
            let other = if x == b { y } else { x };
            if other != a && self.mark_distinct(a, other) {
                let (lo, hi) = if a < other { (a, other) } else { (other, a) };
                distinct_added.push((lo, hi));
            }
        }
        MergeUndo {
            a,
            b,
            added,
            a_edges_len,
            b_edges,
            rewired,
            distinct_added,
        }
    }

    /// Reverse a [`State::merge`]. Sound only in LIFO trail order:
    /// every operation recorded after the merge must already be
    /// undone, so the recorded edge slots still address what the merge
    /// rewired.
    pub(crate) fn undo_merge(&mut self, u: MergeUndo, it: &Interner) {
        for (i, j) in u.rewired {
            self.nodes[i].edges[j].1 = u.b;
        }
        for pair in u.distinct_added {
            self.distinct.remove(&pair);
        }
        self.nodes[u.a].edges.truncate(u.a_edges_len);
        self.nodes[u.b].edges = u.b_edges;
        self.nodes[u.b].alive = true;
        for c in u.added {
            self.remove_label(u.a, c, it);
        }
    }
}

/// Result of one rule-application search step.
pub(crate) enum Outcome {
    Satisfiable,
    Clash,
}

/// One alternative of the first applicable nondeterministic rule, as
/// data: the reference engine materializes it by cloning the state,
/// the trail kernel applies it in place and undoes it on backtrack.
/// Both consume the same [`Tableau::find_branch`] output, so they
/// cannot disagree on what the alternatives *are*.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Alt {
    Insert { node: usize, c: ConceptRef },
    Merge { a: usize, b: usize },
}

impl Tableau {
    /// A reasoner for `tbox`. The vocabulary is accepted for symmetry
    /// with other constructors (names are already interned into ids).
    pub fn new(tbox: &TBox, _voc: &Vocabulary) -> Self {
        let mut interner = Interner::new();
        let mut universal = vec![];
        let mut absorbed: BTreeMap<crate::concept::ConceptId, Vec<ConceptRef>> = BTreeMap::new();
        for (l, r) in tbox.gcis() {
            match l {
                Concept::Atom(a) => {
                    let h = interner.intern(&r);
                    let n = interner.nnf(h);
                    absorbed.entry(a).or_default().push(n);
                }
                _ => {
                    let g = Concept::or(vec![Concept::not(l), r]);
                    let h = interner.intern(&g);
                    let n = interner.nnf(h);
                    universal.push(n);
                }
            }
        }
        Tableau {
            interner,
            universal,
            absorbed,
            use_reference: reference_kernel_default(),
            budget: DEFAULT_NODE_BUDGET,
            cache: FxHashMap::default(),
            shared: None,
            fingerprint: tbox_fingerprint(tbox),
            intern_hits_reported: 0,
        }
    }

    /// A reasoner with the absorption optimization disabled: every GCI
    /// — atomic-LHS or not — is internalized as a universal disjunction
    /// added to every node. Semantically equivalent to [`Tableau::new`]
    /// but exponentially slower on axiom-rich TBoxes; kept for the
    /// ablation benchmark (`ablation_absorption`).
    pub fn new_without_absorption(tbox: &TBox, _voc: &Vocabulary) -> Self {
        let mut interner = Interner::new();
        let universal = tbox
            .universal_constraints()
            .iter()
            .map(|c| {
                let h = interner.intern(c);
                interner.nnf(h)
            })
            .collect();
        Tableau {
            interner,
            universal,
            absorbed: BTreeMap::new(),
            use_reference: reference_kernel_default(),
            budget: DEFAULT_NODE_BUDGET,
            cache: FxHashMap::default(),
            shared: None,
            fingerprint: tbox_fingerprint(tbox),
            intern_hits_reported: 0,
        }
    }

    /// The reasoner's hash-consing arena (read-only; exposed for
    /// diagnostics and tests).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Override the node budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Force an expansion engine explicitly, overriding the
    /// `SUMMA_TABLEAU_REFERENCE` default: `true` pins the reference
    /// clone-based engine, `false` the agenda/trail kernel. The
    /// differential suite drives both sides through this switch.
    pub fn with_reference_kernel(mut self, reference: bool) -> Self {
        self.use_reference = reference;
        self
    }

    /// Which engine this reasoner dispatches to (`true` = reference).
    pub fn uses_reference_kernel(&self) -> bool {
        self.use_reference
    }

    /// Attach a cross-reasoner [`SatCache`]: completed answers are
    /// published to (and looked up from) the shared map keyed by this
    /// reasoner's TBox fingerprint. See the `cache` module for why
    /// sharing is answer-preserving.
    pub fn with_shared_cache(mut self, cache: Arc<SatCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Is `c` satisfiable w.r.t. the TBox?
    pub fn is_satisfiable(&mut self, c: &Concept) -> bool {
        self.try_is_satisfiable(c)
            .expect("node budget exceeded; raise with with_budget")
    }

    /// Fallible satisfiability (reports budget exhaustion).
    pub fn try_is_satisfiable(&mut self, c: &Concept) -> Result<bool> {
        let mut meter = Meter::unlimited();
        match self.sat_inner(c, self.budget, &mut meter) {
            Ok(sat) => Ok(sat),
            Err(Stop::NodeBudget) => Err(DlError::NodeBudgetExceeded {
                budget: self.budget,
            }),
            // An unlimited meter never interrupts.
            Err(Stop::Interrupted(_)) => unreachable!("unlimited meter interrupted"),
        }
    }

    /// Budget-governed satisfiability: runs entirely under the caller's
    /// envelope (the reasoner's own node budget does not apply) and
    /// reports exhaustion/cancellation instead of erroring or hanging.
    /// A boolean query has no meaningful partial answer, so the
    /// non-completed outcomes carry `partial: None`.
    pub fn is_satisfiable_governed(&mut self, c: &Concept, budget: &Budget) -> Governed<bool> {
        let mut meter = budget.meter();
        let r = self.sat_metered(c, &mut meter);
        governed_outcome(r)
    }

    /// Metered satisfiability for composite services (classification,
    /// realization) that share one [`Meter`] across many inner calls.
    pub fn sat_metered(&mut self, c: &Concept, meter: &mut Meter) -> std::result::Result<bool, Interrupt> {
        match self.sat_inner(c, usize::MAX, meter) {
            Ok(sat) => Ok(sat),
            Err(Stop::Interrupted(i)) => Err(i),
            Err(Stop::NodeBudget) => unreachable!("node cap disabled in metered mode"),
        }
    }

    /// Interner hits not yet flowed into the `dl.intern.hits` counter;
    /// returns the delta and marks it reported. Composite services
    /// (e.g. the parallel classifier's worker-drain hook) call this to
    /// harvest hits accumulated outside any sat-call boundary.
    pub fn drain_intern_hits(&mut self) -> u64 {
        let now = self.interner.hits();
        let delta = now - self.intern_hits_reported;
        self.intern_hits_reported = now;
        delta
    }

    /// Flow newly accumulated interner hits into the `dl.intern.hits`
    /// counter as a delta (observational only — hash-cons reuse is not
    /// ledger work, so nothing is charged).
    fn note_intern_hits(&mut self, meter: &Meter) {
        let delta = self.drain_intern_hits();
        if delta > 0 {
            meter.count("dl.intern.hits", delta);
        }
    }

    fn sat_inner(
        &mut self,
        c: &Concept,
        node_cap: usize,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Stop> {
        let h = self.interner.intern(c);
        let nnf = self.interner.nnf(h);
        if let Some(&r) = self.cache.get(&nnf) {
            self.note_intern_hits(meter);
            return Ok(r);
        }
        // The shared cache is keyed by the externalized (canonical)
        // tree, not the handle: handles are interner-local, and sibling
        // workers intern in different orders. Externalizing once per
        // *uncached* sat call is noise next to the search it fronts.
        let shared = self.shared.clone();
        let mut ext_key: Option<Concept> = None;
        if let Some(sc) = &shared {
            let key = self.interner.externalize(nnf);
            match sc.get(self.fingerprint, &key) {
                Some(r) => {
                    meter.note_cache_hit();
                    self.cache.insert(nnf, r);
                    self.note_intern_hits(meter);
                    return Ok(r);
                }
                None => {
                    meter.note_cache_miss();
                    ext_key = Some(key);
                }
            }
        }
        // Span covers the actual search only — cached answers return
        // above without opening one, so a flamegraph shows real work.
        let mut span = meter.span("dl.sat");
        let mut st = State::new();
        let mut label: BTreeSet<ConceptRef> = BTreeSet::new();
        label.insert(nnf);
        label.extend(self.universal.iter().copied());
        st.add_node(label, None, &self.interner);
        let sat = matches!(
            self.expand(st, node_cap, &mut 0, meter)?,
            Outcome::Satisfiable
        );
        span.record("sat", sat);
        // Only completed searches are memoized: a budget-interrupted
        // run has no answer to cache (and never reaches this line).
        if let Some(sc) = &shared {
            let key = ext_key.take().expect("externalized at lookup");
            // Chaos-injection site: a scheduled `poison` fault writes a
            // corrupted entry (flipped answer, stale checksum) so the
            // cache's integrity check can be exercised end to end. The
            // answer *returned* from this call stays correct either
            // way; only the stored copy is damaged.
            if matches!(
                meter.fault_point("dl.cache.insert"),
                Ok(Some(summa_guard::FaultKind::Poison))
            ) {
                sc.insert_poisoned(self.fingerprint, key, sat);
            } else {
                sc.insert(self.fingerprint, key, sat);
            }
        }
        self.cache.insert(nnf, sat);
        self.note_intern_hits(meter);
        Ok(sat)
    }

    /// Does `sup` subsume `sub` w.r.t. the TBox (`sub ⊑ sup`)?
    pub fn subsumes(&mut self, sup: &Concept, sub: &Concept) -> bool {
        !self.is_satisfiable(&Concept::and(vec![
            sub.clone(),
            Concept::not(sup.clone()),
        ]))
    }

    /// Budget-governed subsumption check (`sub ⊑ sup`).
    pub fn subsumes_governed(
        &mut self,
        sup: &Concept,
        sub: &Concept,
        budget: &Budget,
    ) -> Governed<bool> {
        let query = Concept::and(vec![sub.clone(), Concept::not(sup.clone())]);
        let mut meter = budget.meter();
        let r = self.sat_metered(&query, &mut meter).map(|sat| !sat);
        governed_outcome(r)
    }

    /// Are `a` and `b` equivalent w.r.t. the TBox?
    pub fn equivalent(&mut self, a: &Concept, b: &Concept) -> bool {
        self.subsumes(a, b) && self.subsumes(b, a)
    }

    /// Is the whole TBox coherent (⊤ satisfiable)?
    pub fn is_coherent(&mut self) -> bool {
        self.is_satisfiable(&Concept::Top)
    }

    /// ABox consistency under the unique-name assumption.
    pub fn is_consistent(&mut self, abox: &ABox) -> bool {
        self.try_is_consistent(abox)
            .expect("node budget exceeded; raise with with_budget")
    }

    /// Fallible ABox consistency.
    pub fn try_is_consistent(&mut self, abox: &ABox) -> Result<bool> {
        let mut meter = Meter::unlimited();
        match self.consistent_inner(abox, self.budget, &mut meter) {
            Ok(sat) => Ok(sat),
            Err(Stop::NodeBudget) => Err(DlError::NodeBudgetExceeded {
                budget: self.budget,
            }),
            Err(Stop::Interrupted(_)) => unreachable!("unlimited meter interrupted"),
        }
    }

    /// Budget-governed ABox consistency.
    pub fn is_consistent_governed(&mut self, abox: &ABox, budget: &Budget) -> Governed<bool> {
        let mut meter = budget.meter();
        let r = self.consistent_metered(abox, &mut meter);
        governed_outcome(r)
    }

    /// Metered ABox consistency, for services sharing one [`Meter`].
    pub fn consistent_metered(
        &mut self,
        abox: &ABox,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Interrupt> {
        match self.consistent_inner(abox, usize::MAX, meter) {
            Ok(sat) => Ok(sat),
            Err(Stop::Interrupted(i)) => Err(i),
            Err(Stop::NodeBudget) => unreachable!("node cap disabled in metered mode"),
        }
    }

    fn consistent_inner(
        &mut self,
        abox: &ABox,
        node_cap: usize,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Stop> {
        self.consistent_inner_with(abox, None, node_cap, meter)
    }

    /// ABox consistency with an optional *scratch assertion*: one
    /// extra `C(a)` pushed into `a`'s root label after the real
    /// assertions. Labels are sets, so this lands in exactly the state
    /// a cloned-and-extended ABox would produce — minus the clone of
    /// every assertion tree, which instance checks used to pay per
    /// call (realization makes |individuals| × |atoms| of them).
    fn consistent_inner_with(
        &mut self,
        abox: &ABox,
        scratch: Option<(crate::abox::Individual, ConceptRef)>,
        node_cap: usize,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Stop> {
        let mut st = State::new();
        let mut index: BTreeMap<u32, usize> = BTreeMap::new();
        for ind in abox.individuals() {
            let mut label: BTreeSet<ConceptRef> = BTreeSet::new();
            label.extend(self.universal.iter().copied());
            let id = st.add_node(label, None, &self.interner);
            index.insert(ind.0, id);
        }
        // UNA: all named individuals pairwise distinct.
        let ids: Vec<usize> = index.values().copied().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                st.mark_distinct(a, b);
            }
        }
        for (ind, c) in abox.concept_assertions() {
            let id = index[&ind.0];
            let h = self.interner.intern(c);
            let n = self.interner.nnf(h);
            st.insert_label(id, n, &self.interner);
        }
        if let Some((ind, n)) = scratch {
            let id = index[&ind.0];
            st.insert_label(id, n, &self.interner);
        }
        for (a, r, b) in abox.role_assertions() {
            let (ia, ib) = (index[&a.0], index[&b.0]);
            st.nodes[ia].edges.push((*r, ib));
        }
        let mut span = meter.span("dl.consistent");
        let consistent = matches!(
            self.expand(st, node_cap, &mut 0, meter)?,
            Outcome::Satisfiable
        );
        span.record("consistent", consistent);
        Ok(consistent)
    }

    /// The NNF of `¬c`, interned: the scratch assertion an instance
    /// check adds to the tested individual's root label.
    fn scratch_negation(&mut self, c: &Concept) -> ConceptRef {
        let h = self.interner.intern(c);
        self.interner.neg_nnf(h)
    }

    /// Instance check: does the ABox entail `c(a)`?
    ///
    /// `KB ⊨ C(a)` iff `KB ∪ {¬C(a)}` is inconsistent — decided by a
    /// borrow-based scratch assertion around the consistency check,
    /// not by cloning the whole ABox per call.
    pub fn is_instance(&mut self, abox: &ABox, a: crate::abox::Individual, c: &Concept) -> bool {
        self.try_is_instance(abox, a, c)
            .expect("node budget exceeded; raise with with_budget")
    }

    /// Fallible instance check (reports budget exhaustion).
    pub fn try_is_instance(
        &mut self,
        abox: &ABox,
        a: crate::abox::Individual,
        c: &Concept,
    ) -> Result<bool> {
        let mut meter = Meter::unlimited();
        let neg = self.scratch_negation(c);
        match self.consistent_inner_with(abox, Some((a, neg)), self.budget, &mut meter) {
            Ok(consistent) => Ok(!consistent),
            Err(Stop::NodeBudget) => Err(DlError::NodeBudgetExceeded {
                budget: self.budget,
            }),
            Err(Stop::Interrupted(_)) => unreachable!("unlimited meter interrupted"),
        }
    }

    /// Metered instance check, for services sharing one [`Meter`]
    /// (realization's inner loop).
    pub fn instance_metered(
        &mut self,
        abox: &ABox,
        a: crate::abox::Individual,
        c: &Concept,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Interrupt> {
        let neg = self.scratch_negation(c);
        match self.consistent_inner_with(abox, Some((a, neg)), usize::MAX, meter) {
            Ok(consistent) => Ok(!consistent),
            Err(Stop::Interrupted(i)) => Err(i),
            Err(Stop::NodeBudget) => unreachable!("node cap disabled in metered mode"),
        }
    }

    /// Budget-governed instance check.
    pub fn is_instance_governed(
        &mut self,
        abox: &ABox,
        a: crate::abox::Individual,
        c: &Concept,
        budget: &Budget,
    ) -> Governed<bool> {
        let mut meter = budget.meter();
        let r = self.instance_metered(abox, a, c, &mut meter);
        governed_outcome(r)
    }

    // ------------------------------------------------------------------
    // The expansion loop.
    // ------------------------------------------------------------------

    /// Dispatch one satisfiability search to the configured engine.
    /// Both visit the same search tree in the same order with the same
    /// charges, so everything observable — answers, `Spend`, partial
    /// results under starved budgets — is engine-independent.
    pub(crate) fn expand(
        &mut self,
        st: State,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
    ) -> std::result::Result<Outcome, Stop> {
        if self.use_reference {
            self.expand_reference(st, node_cap, created, meter)
        } else {
            self.expand_kernel(st, node_cap, created, meter)
        }
    }

    /// The reference engine: iterative depth-first search over cloned
    /// completion states (explicit stack, so deeply nested
    /// nondeterminism cannot overflow the call stack). Every round
    /// re-scans every node and every pop re-runs clash detection over
    /// the whole state — the agenda/trail kernel exists to shed
    /// exactly that work, and this engine stays as its oracle.
    ///
    /// `node_cap` is the legacy per-call node budget
    /// ([`Stop::NodeBudget`] when exceeded); `meter` is the caller's
    /// governance envelope, charged one step per search state popped,
    /// per rule application, and per node created.
    pub(crate) fn expand_reference(
        &mut self,
        st: State,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
    ) -> std::result::Result<Outcome, Stop> {
        let mut stack: Vec<State> = vec![st];
        'states: while let Some(mut st) = stack.pop() {
            // Every `charge` in the expansion machinery has a matching
            // `count` under a `dl.rule.*` name, so the counter totals
            // reconcile exactly with the steps on the ledger (proved by
            // the workspace's integration_obs property test).
            meter.charge(1)?;
            meter.count("dl.rule.search", 1);
            // Deterministic rules to fixpoint, abandoning on clash.
            loop {
                let mut clash = false;
                for x in 0..st.nodes.len() {
                    if !st.nodes[x].alive {
                        continue;
                    }
                    meter.count(LABEL_SCANS, 1);
                    if st.has_clash(x, &self.interner) {
                        clash = true;
                        break;
                    }
                }
                if clash {
                    continue 'states;
                }
                if !self.apply_deterministic(&mut st, node_cap, created, meter)? {
                    break;
                }
            }
            // Nondeterministic rules: push every alternative.
            match self.branch_alternatives(&st, meter) {
                Some(alts) => {
                    // All alternatives clash-free so far; explore each.
                    stack.extend(alts);
                }
                // Nothing applicable and clash-free: complete.
                None => return Ok(Outcome::Satisfiable),
            }
        }
        Ok(Outcome::Clash)
    }

    /// Apply one round of deterministic rules. Returns `true` when
    /// anything changed.
    fn apply_deterministic(
        &self,
        st: &mut State,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
    ) -> std::result::Result<bool, Stop> {
        meter.charge(1)?;
        meter.count("dl.rule.round", 1);
        let n = st.nodes.len();
        for x in 0..n {
            if !st.nodes[x].alive {
                continue;
            }
            // Scan the label in *structural* order, not handle order:
            // rule priority (absorption/⊓ before ⊔ before ∃/∀ before
            // counting rules) falls out of `Concept`'s variant order,
            // and the search tree this induces is what the blocking
            // condition and the node budgets were tuned against. The
            // structural order is also interner-independent, so
            // sibling workers with different interning histories walk
            // identical search trees. The node carries its label
            // pre-sorted (`Node::sorted`, maintained by
            // `State::insert_label`); index iteration is safe because
            // every mutating arm returns immediately.
            meter.count(LABEL_SCANS, 1);
            for i in 0..st.nodes[x].sorted.len() {
                let c = st.nodes[x].sorted[i];
                match self.interner.node(c) {
                    // absorption: A ∈ L(x) with A ⊑ C absorbed → add C
                    CNode::Atom(a) => {
                        if let Some(rhss) = self.absorbed.get(a) {
                            let mut changed = false;
                            for &rhs in rhss {
                                changed |= st.insert_label(x, rhs, &self.interner);
                            }
                            if changed {
                                return Ok(true);
                            }
                        }
                    }
                    // ⊓-rule
                    CNode::And(parts) => {
                        let mut changed = false;
                        for &p in parts.iter() {
                            changed |= st.insert_label(x, p, &self.interner);
                        }
                        if changed {
                            return Ok(true);
                        }
                    }
                    // ∀-rule
                    CNode::Forall(r, d) => {
                        let (r, d) = (*r, *d);
                        for y in st.successors(x, r) {
                            if st.insert_label(y, d, &self.interner) {
                                return Ok(true);
                            }
                        }
                    }
                    // ∃-rule (blocked nodes do not generate)
                    CNode::Exists(r, d) => {
                        let (r, d) = (*r, *d);
                        if st.is_blocked(x) {
                            continue;
                        }
                        let has = st
                            .successors(x, r)
                            .into_iter()
                            .any(|y| st.nodes[y].label.contains(&d));
                        if !has {
                            self.spawn_child(
                                st,
                                x,
                                r,
                                [d],
                                node_cap,
                                created,
                                meter,
                                "dl.rule.exists",
                            )?;
                            return Ok(true);
                        }
                    }
                    // ≥-rule
                    CNode::AtLeast(k, r, d) => {
                        let (k, r, d) = (*k, *r, *d);
                        if st.is_blocked(x) {
                            continue;
                        }
                        let with_d: Vec<usize> = st
                            .successors(x, r)
                            .into_iter()
                            .filter(|&y| st.nodes[y].label.contains(&d))
                            .collect();
                        // Count a maximal pairwise-distinct subset
                        // conservatively: all current ones are candidates.
                        if (with_d.len() as u32) < k {
                            let mut fresh = vec![];
                            for _ in with_d.len() as u32..k {
                                let id = self.spawn_child(
                                    st,
                                    x,
                                    r,
                                    [d],
                                    node_cap,
                                    created,
                                    meter,
                                    "dl.rule.at_least",
                                )?;
                                fresh.push(id);
                            }
                            // New witnesses pairwise distinct, and distinct
                            // from existing D-successors.
                            for (i, &a) in fresh.iter().enumerate() {
                                for &b in &fresh[i + 1..] {
                                    st.mark_distinct(a, b);
                                }
                                for &b in &with_d {
                                    st.mark_distinct(a, b);
                                }
                            }
                            return Ok(true);
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(false)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn_child(
        &self,
        st: &mut State,
        x: usize,
        r: RoleId,
        seed: impl IntoIterator<Item = ConceptRef>,
        node_cap: usize,
        created: &mut usize,
        meter: &mut Meter,
        rule: &'static str,
    ) -> std::result::Result<usize, Stop> {
        *created += 1;
        if *created > node_cap {
            return Err(Stop::NodeBudget);
        }
        meter.charge(1)?;
        meter.count(rule, 1);
        meter.charge_memory(1)?;
        let mut label: BTreeSet<ConceptRef> = seed.into_iter().collect();
        label.extend(self.universal.iter().copied());
        // ∀-propagation into the new node.
        let foralls: Vec<ConceptRef> = st.nodes[x]
            .label
            .iter()
            .filter_map(|&c| match self.interner.node(c) {
                CNode::Forall(rr, d) if *rr == r => Some(*d),
                _ => None,
            })
            .collect();
        label.extend(foralls);
        let id = st.add_node(label, Some(x), &self.interner);
        st.nodes[x].edges.push((r, id));
        Ok(id)
    }

    /// Find the first applicable nondeterministic rule and return the
    /// alternatives it generates as [`Alt`] descriptors. `None` means
    /// no rule applies (the state is complete).
    ///
    /// Both engines branch through this one function: the reference
    /// engine materializes each `Alt` into a cloned `State`, the
    /// kernel replays them against a single state via the trail. One
    /// decision procedure, two execution strategies — which is what
    /// makes their search trees identical by construction.
    pub(crate) fn find_branch(&mut self, st: &State, meter: &Meter) -> Option<Vec<Alt>> {
        for x in 0..st.nodes.len() {
            if !st.nodes[x].alive {
                continue;
            }
            // Scan the label in *structural* order, not handle order:
            // rule priority (absorption/⊓ before ⊔ before ∃/∀ before
            // counting rules) falls out of `Concept`'s variant order,
            // and the search tree this induces is what the blocking
            // condition and the node budgets were tuned against. The
            // structural order is also interner-independent, so
            // sibling workers with different interning histories walk
            // identical search trees. The node carries its label
            // pre-sorted (`Node::sorted`), so branching no longer
            // re-sorts anything.
            meter.count(LABEL_SCANS, 1);
            for i in 0..st.nodes[x].sorted.len() {
                let c = st.nodes[x].sorted[i];
                // ⊔-rule
                if let CNode::Or(parts) = self.interner.node(c) {
                    if parts.iter().any(|p| st.nodes[x].label.contains(p)) {
                        continue;
                    }
                    return Some(
                        parts
                            .iter()
                            .map(|&p| Alt::Insert { node: x, c: p })
                            .collect(),
                    );
                }
                // choose-rule: for ≤n r.D, every r-successor must
                // decide D vs ¬D. Copy the fields out so the arena
                // borrow ends before the (memoized, possibly
                // allocating) negation lookup below.
                let (r, d) = match self.interner.node(c) {
                    CNode::AtMost(_, r, d) => (*r, *d),
                    _ => continue,
                };
                let neg = self.interner.neg_nnf(d);
                for y in st.successors(x, r) {
                    if !st.nodes[y].label.contains(&d) && !st.nodes[y].label.contains(&neg) {
                        return Some(vec![
                            Alt::Insert { node: y, c: d },
                            Alt::Insert { node: y, c: neg },
                        ]);
                    }
                }
            }
        }
        // merge-rule: an over-full ≤ restriction with mergeable
        // successors.
        for x in 0..st.nodes.len() {
            if !st.nodes[x].alive {
                continue;
            }
            meter.count(LABEL_SCANS, 1);
            for i in 0..st.nodes[x].sorted.len() {
                let c = st.nodes[x].sorted[i];
                if let CNode::AtMost(n, r, d) = self.interner.node(c) {
                    let with_d: Vec<usize> = st
                        .successors(x, *r)
                        .into_iter()
                        .filter(|&y| st.nodes[y].label.contains(d))
                        .collect();
                    if with_d.len() > *n as usize {
                        let mut alts = vec![];
                        for (j, &a) in with_d.iter().enumerate() {
                            for &b in &with_d[j + 1..] {
                                if st.are_distinct(a, b) {
                                    continue;
                                }
                                alts.push(Alt::Merge { a, b });
                            }
                        }
                        if !alts.is_empty() {
                            return Some(alts);
                        }
                        // No mergeable pair: this is a clash, caught by
                        // has_clash in the caller's next pass.
                    }
                }
            }
        }
        None
    }

    /// Reference-engine branching: materialize each [`Alt`] from
    /// [`Tableau::find_branch`] into a full `State` clone.
    fn branch_alternatives(&mut self, st: &State, meter: &Meter) -> Option<Vec<State>> {
        let alts = self.find_branch(st, meter)?;
        let it = &self.interner;
        Some(
            alts.into_iter()
                .map(|alt| {
                    let mut st2 = st.clone();
                    match alt {
                        Alt::Insert { node, c } => {
                            st2.insert_label(node, c, it);
                        }
                        Alt::Merge { a, b } => {
                            let _ = st2.merge(a, b, it);
                        }
                    }
                    st2
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vocabulary, TBox) {
        (Vocabulary::new(), TBox::new())
    }

    #[test]
    fn top_is_satisfiable_bottom_is_not() {
        let (voc, tbox) = setup();
        let mut t = Tableau::new(&tbox, &voc);
        assert!(t.is_satisfiable(&Concept::Top));
        assert!(!t.is_satisfiable(&Concept::Bottom));
    }

    #[test]
    fn contradiction_is_unsatisfiable() {
        let (mut voc, tbox) = setup();
        let a = Concept::atom(voc.concept("A"));
        let mut t = Tableau::new(&tbox, &voc);
        assert!(!t.is_satisfiable(&Concept::and(vec![a.clone(), Concept::not(a)])));
    }

    #[test]
    fn disjunction_explores_both_branches() {
        let (mut voc, tbox) = setup();
        let a = Concept::atom(voc.concept("A"));
        let b = Concept::atom(voc.concept("B"));
        let mut t = Tableau::new(&tbox, &voc);
        // (A ⊔ B) ⊓ ¬A is satisfiable via B.
        let c = Concept::and(vec![
            Concept::or(vec![a.clone(), b.clone()]),
            Concept::not(a.clone()),
        ]);
        assert!(t.is_satisfiable(&c));
        // (A ⊔ A) ⊓ ¬A is not.
        let d = Concept::and(vec![
            Concept::or(vec![a.clone(), a.clone()]),
            Concept::not(a),
        ]);
        assert!(!t.is_satisfiable(&d));
    }

    #[test]
    fn exists_forall_interaction() {
        let (mut voc, tbox) = setup();
        let a = Concept::atom(voc.concept("A"));
        let r = voc.role("r");
        let mut t = Tableau::new(&tbox, &voc);
        // ∃r.A ⊓ ∀r.¬A is unsatisfiable.
        let c = Concept::and(vec![
            Concept::exists(r, a.clone()),
            Concept::forall(r, Concept::not(a.clone())),
        ]);
        assert!(!t.is_satisfiable(&c));
        // ∃r.A ⊓ ∀r.B is satisfiable.
        let b = Concept::atom(voc.concept("B"));
        let d = Concept::and(vec![
            Concept::exists(r, a),
            Concept::forall(r, b),
        ]);
        assert!(t.is_satisfiable(&d));
    }

    #[test]
    fn gci_propagates_to_successors() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let b = Concept::atom(voc.concept("B"));
        let r = voc.role("r");
        let mut tbox = TBox::new();
        tbox.subsume(a.clone(), b.clone());
        let mut t = Tableau::new(&tbox, &voc);
        // ∃r.(A ⊓ ¬B) must be unsatisfiable under A ⊑ B.
        let c = Concept::exists(r, Concept::and(vec![a.clone(), Concept::not(b.clone())]));
        assert!(!t.is_satisfiable(&c));
    }

    #[test]
    fn subsumption_via_unsatisfiability() {
        let mut voc = Vocabulary::new();
        let car = Concept::atom(voc.concept("car"));
        let vehicle = Concept::atom(voc.concept("vehicle"));
        let mut tbox = TBox::new();
        tbox.subsume(car.clone(), vehicle.clone());
        let mut t = Tableau::new(&tbox, &voc);
        assert!(t.subsumes(&vehicle, &car));
        assert!(!t.subsumes(&car, &vehicle));
        assert!(t.subsumes(&Concept::Top, &car));
        assert!(t.subsumes(&car, &Concept::Bottom));
    }

    #[test]
    fn cyclic_tbox_terminates_via_blocking() {
        // A ⊑ ∃r.A : an infinite model exists; blocking must find it.
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let r = voc.role("r");
        let mut tbox = TBox::new();
        tbox.subsume(a.clone(), Concept::exists(r, a.clone()));
        let mut t = Tableau::new(&tbox, &voc);
        assert!(t.is_satisfiable(&a));
    }

    #[test]
    fn at_least_at_most_conflict() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let r = voc.role("r");
        let (voc2, tbox) = (voc.clone(), TBox::new());
        let mut t = Tableau::new(&tbox, &voc2);
        // ≥3 r.A ⊓ ≤2 r.A is unsatisfiable.
        let c = Concept::and(vec![
            Concept::at_least(3, r, a.clone()),
            Concept::at_most(2, r, a.clone()),
        ]);
        assert!(!t.is_satisfiable(&c));
        // ≥2 r.A ⊓ ≤2 r.A is satisfiable.
        let d = Concept::exactly(2, r, a.clone());
        assert!(t.is_satisfiable(&d));
    }

    #[test]
    fn merge_resolves_excess_successors() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let b = Concept::atom(voc.concept("B"));
        let r = voc.role("r");
        let tbox = TBox::new();
        let mut t = Tableau::new(&tbox, &voc);
        // ∃r.A ⊓ ∃r.B ⊓ ≤1 r.⊤ is satisfiable by merging the two
        // successors into one node labeled A ⊓ B.
        let c = Concept::and(vec![
            Concept::exists(r, a.clone()),
            Concept::exists(r, b.clone()),
            Concept::at_most(1, r, Concept::Top),
        ]);
        assert!(t.is_satisfiable(&c));
        // ...but not if A and B clash.
        let d = Concept::and(vec![
            Concept::exists(r, a.clone()),
            Concept::exists(r, Concept::not(a.clone())),
            Concept::at_most(1, r, Concept::Top),
        ]);
        assert!(!t.is_satisfiable(&d));
    }

    #[test]
    fn choose_rule_counts_qualified() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let r = voc.role("r");
        let tbox = TBox::new();
        let mut t = Tableau::new(&tbox, &voc);
        // ≥2 r.⊤ ⊓ ∀r.A ⊓ ≤1 r.A : the two successors both get A, and
        // they must merge — but they are pairwise distinct. Unsat.
        let c = Concept::and(vec![
            Concept::at_least(2, r, Concept::Top),
            Concept::forall(r, a.clone()),
            Concept::at_most(1, r, a.clone()),
        ]);
        assert!(!t.is_satisfiable(&c));
    }

    #[test]
    fn paper_wheels_example() {
        // roadvehicle ⊑ ∃₄has.wheel (exactly 4): a roadvehicle with 5
        // pairwise-forced wheels is inconsistent.
        let mut voc = Vocabulary::new();
        let rv = Concept::atom(voc.concept("roadvehicle"));
        let wheel = Concept::atom(voc.concept("wheel"));
        let has = voc.role("has");
        let mut tbox = TBox::new();
        tbox.subsume(rv.clone(), Concept::exactly(4, has, wheel.clone()));
        let mut t = Tableau::new(&tbox, &voc);
        assert!(t.is_satisfiable(&rv));
        let five = Concept::and(vec![rv.clone(), Concept::at_least(5, has, wheel.clone())]);
        assert!(!t.is_satisfiable(&five));
        let four = Concept::and(vec![rv, Concept::at_least(4, has, wheel)]);
        assert!(t.is_satisfiable(&four));
    }

    #[test]
    fn abox_consistency_and_instance_check() {
        let mut voc = Vocabulary::new();
        let man = Concept::atom(voc.concept("Man"));
        let mortal = Concept::atom(voc.concept("Mortal"));
        let mut tbox = TBox::new();
        tbox.subsume(man.clone(), mortal.clone());
        let mut t = Tableau::new(&tbox, &voc);
        let mut abox = ABox::new();
        let socrates = abox.individual("socrates");
        abox.assert_concept(socrates, man.clone());
        assert!(t.is_consistent(&abox));
        assert!(t.is_instance(&abox, socrates, &mortal));
        assert!(!t.is_instance(&abox, socrates, &Concept::not(mortal.clone())));
        // Assert the contradiction directly: inconsistent.
        abox.assert_concept(socrates, Concept::not(mortal));
        assert!(!t.is_consistent(&abox));
    }

    #[test]
    fn abox_role_assertions_feed_forall() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let r = voc.role("r");
        let tbox = TBox::new();
        let mut t = Tableau::new(&tbox, &voc);
        let mut abox = ABox::new();
        let x = abox.individual("x");
        let y = abox.individual("y");
        abox.assert_role(x, r, y);
        abox.assert_concept(x, Concept::forall(r, a.clone()));
        abox.assert_concept(y, Concept::not(a.clone()));
        assert!(!t.is_consistent(&abox));
    }

    #[test]
    fn incoherent_tbox_detected() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let mut tbox = TBox::new();
        tbox.subsume(Concept::Top, a.clone());
        tbox.subsume(Concept::Top, Concept::not(a));
        let mut t = Tableau::new(&tbox, &voc);
        assert!(!t.is_coherent());
        let mut empty = Tableau::new(&TBox::new(), &voc);
        assert!(empty.is_coherent());
    }

    #[test]
    fn budget_is_enforced() {
        // A ⊑ ≥2 r.A explodes; with a tiny budget we must get an error
        // rather than loop forever. (Blocking would eventually stop it,
        // but the doubling tree overflows small budgets first.)
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let b = Concept::atom(voc.concept("B"));
        let r = voc.role("r");
        let mut tbox = TBox::new();
        // Alternate labels so equality blocking bites late.
        tbox.subsume(
            a.clone(),
            Concept::and(vec![
                Concept::at_least(2, r, b.clone()),
                Concept::exists(r, b.clone()),
            ]),
        );
        tbox.subsume(b.clone(), Concept::at_least(2, r, a.clone()));
        let mut t = Tableau::new(&tbox, &voc).with_budget(10);
        match t.try_is_satisfiable(&a) {
            Ok(_) => {}             // solved within budget — also fine
            Err(DlError::NodeBudgetExceeded { .. }) => {} // expected path
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn absorption_ablation_agrees_with_the_default() {
        // Both configurations must return the same answers; only the
        // cost differs.
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let b = Concept::atom(voc.concept("B"));
        let c = Concept::atom(voc.concept("C"));
        let r = voc.role("r");
        let mut tbox = TBox::new();
        tbox.subsume(a.clone(), b.clone());
        tbox.subsume(b.clone(), Concept::exists(r, c.clone()));
        tbox.subsume(Concept::exists(r, c.clone()), Concept::not(a.clone()));
        let mut with = Tableau::new(&tbox, &voc);
        let mut without = Tableau::new_without_absorption(&tbox, &voc);
        for query in [
            a.clone(),
            b.clone(),
            Concept::and(vec![a.clone(), b.clone()]),
            Concept::and(vec![a.clone(), Concept::not(b.clone())]),
        ] {
            assert_eq!(
                with.is_satisfiable(&query),
                without.is_satisfiable(&query),
                "configurations disagree on {query:?}"
            );
        }
    }

    #[test]
    fn cache_returns_consistent_answers() {
        let mut voc = Vocabulary::new();
        let a = Concept::atom(voc.concept("A"));
        let tbox = TBox::new();
        let mut t = Tableau::new(&tbox, &voc);
        assert!(t.is_satisfiable(&a));
        assert!(t.is_satisfiable(&a)); // cached
        assert!(!t.is_satisfiable(&Concept::and(vec![a.clone(), Concept::not(a)])));
    }
}
