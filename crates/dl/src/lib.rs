//! # summa-dl — description-logic substrate
//!
//! The concept language in which *Summa Contra Ontologiam* writes its
//! §3 example ontonomies:
//!
//! ```text
//! car           ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.small
//! pickup        ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.big
//! motorvehicle  ⊑ ∃uses.gasoline
//! roadvehicle   ⊑ ∃₄has.wheels            (structure (4))
//! ```
//!
//! and the isomorphic animal structure (8), together with the repair
//! axioms (9)–(11). This crate provides:
//!
//! * [`concept`] — the ALCQ concept language (⊓, ⊔, ¬, ∃r.C, ∀r.C,
//!   ≥n r.C, ≤n r.C) with interned concept/role names and NNF;
//! * [`tbox`] / [`abox`] — terminological and assertional boxes;
//! * [`tableau`] — a tableau-based satisfiability and subsumption
//!   reasoner with pairwise (double) blocking, handling general TBoxes;
//! * [`el`] — a polynomial completion-rule classifier for the EL
//!   fragment (the baseline reasoner);
//! * [`classify`] — full classification (the induced subsumption
//!   hierarchy over named concepts) with either reasoner;
//! * [`corpus`] — the paper's structures (4), (8) and (9)–(11) as
//!   ready-made TBoxes;
//! * [`generate`] — synthetic TBox families (chains, diamonds, random
//!   EL TBoxes, hard ALC instances) for benchmarks and property tests;
//! * [`parser`] — a small concrete syntax for concepts and axioms used
//!   by the examples.
//!
//! ## Quick example
//!
//! ```
//! use summa_dl::prelude::*;
//!
//! let mut voc = Vocabulary::new();
//! let car = voc.concept("car");
//! let vehicle = voc.concept("vehicle");
//! let mut tbox = TBox::new();
//! tbox.subsume(Concept::atom(car), Concept::atom(vehicle));
//!
//! let mut reasoner = Tableau::new(&tbox, &voc);
//! assert!(reasoner.subsumes(&Concept::atom(vehicle), &Concept::atom(car)));
//! assert!(!reasoner.subsumes(&Concept::atom(car), &Concept::atom(vehicle)));
//! ```

pub mod abox;
pub mod cache;
pub mod checkpoint;
pub mod classify;
pub mod concept;
pub mod corpus;
pub mod el;
pub mod error;
pub mod fxhash;
pub mod generate;
pub mod index;
mod kernel;
pub mod parser;
pub mod realize;
pub mod tableau;
pub mod tbox;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::abox::{ABox, Individual};
    pub use crate::cache::{tbox_fingerprint, CacheStats, SatCache};
    pub use crate::checkpoint::{
        abox_fingerprint, kb_fingerprint, Checkpoint, CheckpointError, CheckpointState,
        ResumeOutcome,
    };
    pub use crate::classify::{
        classify_brute_force_governed, classify_enhanced_checkpointed, classify_enhanced_governed,
        classify_parallel_governed, classify_parallel_governed_with, classify_resume_from,
        ClassHierarchy, ClassifyRun, ClassifyStats, Classifier,
    };
    pub use crate::concept::{CNode, Concept, ConceptId, ConceptRef, Interner, RoleId, Vocabulary};
    pub use crate::corpus::{animals_tbox, animals_tbox_repaired, vehicles_tbox, PaperVocab};
    pub use crate::el::ElClassifier;
    pub use crate::error::DlError;
    pub use crate::index::HierarchyIndex;
    pub use crate::parser::{parse_axiom, parse_concept};
    pub use crate::realize::{
        realize, realize_checkpointed, realize_governed, realize_parallel_governed,
        realize_parallel_governed_indexed, realize_parallel_governed_with, realize_resume_from,
        Realization, RealizeRun,
    };
    pub use crate::tableau::Tableau;
    pub use crate::tbox::{Axiom, TBox};
}
