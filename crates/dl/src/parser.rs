//! A small concrete syntax for concepts and axioms.
//!
//! Grammar (ASCII-friendly):
//!
//! ```text
//! concept  := conj ('|' conj)*
//! conj     := unary ('&' unary)*
//! unary    := '~' unary
//!           | 'some' ROLE '.' unary        (∃r.C)
//!           | 'all' ROLE '.' unary         (∀r.C)
//!           | 'atleast' N ROLE '.' unary   (≥n r.C)
//!           | 'atmost' N ROLE '.' unary    (≤n r.C)
//!           | 'exactly' N ROLE '.' unary   (≥n ⊓ ≤n)
//!           | 'top' | 'bottom'
//!           | NAME
//!           | '(' concept ')'
//! axiom    := concept '<' concept          (subsumption)
//!           | concept '=' concept          (equivalence)
//! ```
//!
//! Names are interned into the supplied [`Vocabulary`] on sight.
//!
//! ```
//! use summa_dl::prelude::*;
//! let mut voc = Vocabulary::new();
//! let c = parse_concept("car & some size.small", &mut voc).unwrap();
//! assert_eq!(c.size(), 4);
//! ```

use crate::concept::{Concept, Vocabulary};
use crate::error::{DlError, Result};
use crate::tbox::Axiom;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Name(String),
    Num(u32),
    Amp,
    Pipe,
    Tilde,
    Dot,
    LParen,
    RParen,
    Less,
    Equals,
}

/// Tokens paired with the byte offset where each begins.
fn lex(input: &str) -> Result<Vec<(Tok, usize)>> {
    let mut out = vec![];
    let mut chars = input.char_indices().peekable();
    while let Some(&(at, ch)) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            '&' | '⊓' => {
                chars.next();
                out.push((Tok::Amp, at));
            }
            '|' | '⊔' => {
                chars.next();
                out.push((Tok::Pipe, at));
            }
            '~' | '¬' => {
                chars.next();
                out.push((Tok::Tilde, at));
            }
            '.' => {
                chars.next();
                out.push((Tok::Dot, at));
            }
            '(' => {
                chars.next();
                out.push((Tok::LParen, at));
            }
            ')' => {
                chars.next();
                out.push((Tok::RParen, at));
            }
            '<' | '⊑' => {
                chars.next();
                out.push((Tok::Less, at));
            }
            '=' | '≡' => {
                chars.next();
                out.push((Tok::Equals, at));
            }
            c if c.is_ascii_digit() => {
                let mut n: u32 = 0;
                while let Some(&(_, d)) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        // Overflowing literals are a syntax error, not
                        // a panic (found by the corpus fuzzer).
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v))
                            .ok_or_else(|| DlError::Parse {
                                input: input.to_string(),
                                detail: "number literal too large".to_string(),
                                offset: at,
                            })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Num(n), at));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Name(s), at));
            }
            other => {
                return Err(DlError::Parse {
                    input: input.to_string(),
                    detail: format!("unexpected character '{other}'"),
                    offset: at,
                })
            }
        }
    }
    Ok(out)
}

/// Maximum nesting depth of the recursive descent before parsing is
/// refused. The recursion `unary → concept → conj → unary` otherwise
/// grows the call stack linearly with input nesting, and inputs like
/// `"(".repeat(2000)` overflow it (found by the corpus fuzzer). Deep
/// enough for any concept a human or the generators write; shallow
/// enough to stay far from the 2 MiB test-thread stack.
const MAX_NESTING: usize = 256;

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    voc: &'a mut Vocabulary,
    input: String,
    depth: usize,
}

impl<'a> Parser<'a> {
    /// Byte offset of the token at `pos` (end of input when past the
    /// last token) — what error messages point at.
    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, at)| at)
            .unwrap_or(self.input.len())
    }

    fn err_at(&self, offset: usize, detail: impl Into<String>) -> DlError {
        DlError::Parse {
            input: self.input.clone(),
            detail: detail.into(),
            offset,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        let at = self.offset();
        match self.next() {
            Some(got) if got == *t => Ok(()),
            got => Err(self.err_at(at, format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn concept(&mut self) -> Result<Concept> {
        let first = self.conj()?;
        if self.peek() != Some(&Tok::Pipe) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.peek() == Some(&Tok::Pipe) {
            self.next();
            parts.push(self.conj()?);
        }
        Ok(Concept::or(parts))
    }

    fn conj(&mut self) -> Result<Concept> {
        let first = self.unary()?;
        if self.peek() != Some(&Tok::Amp) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.peek() == Some(&Tok::Amp) {
            self.next();
            parts.push(self.unary()?);
        }
        Ok(Concept::and(parts))
    }

    fn quantified(&mut self, kw: &str, kw_at: usize) -> Result<Concept> {
        // after 'some'/'all': ROLE '.' unary
        // after 'atleast'/'atmost'/'exactly': N ROLE '.' unary
        let n = if matches!(kw, "atleast" | "atmost" | "exactly") {
            let at = self.offset();
            match self.next() {
                Some(Tok::Num(n)) => Some(n),
                got => {
                    return Err(
                        self.err_at(at, format!("expected number after '{kw}', got {got:?}"))
                    )
                }
            }
        } else {
            None
        };
        let at = self.offset();
        let role = match self.next() {
            Some(Tok::Name(r)) => self.voc.role(&r),
            got => return Err(self.err_at(at, format!("expected role after '{kw}', got {got:?}"))),
        };
        self.expect(&Tok::Dot)?;
        let inner = self.unary()?;
        let n = || n.ok_or_else(|| self.err_at(kw_at, format!("'{kw}' requires a count")));
        Ok(match kw {
            "some" => Concept::exists(role, inner),
            "all" => Concept::forall(role, inner),
            "atleast" => Concept::at_least(n()?, role, inner),
            "atmost" => Concept::at_most(n()?, role, inner),
            "exactly" => Concept::exactly(n()?, role, inner),
            other => return Err(self.err_at(kw_at, format!("unknown quantifier '{other}'"))),
        })
    }

    fn unary(&mut self) -> Result<Concept> {
        let at = self.offset();
        if self.depth >= MAX_NESTING {
            return Err(self.err_at(at, format!("nesting deeper than {MAX_NESTING}")));
        }
        self.depth += 1;
        let out = self.unary_inner(at);
        self.depth -= 1;
        out
    }

    fn unary_inner(&mut self, at: usize) -> Result<Concept> {
        match self.next() {
            Some(Tok::Tilde) => Ok(Concept::not(self.unary()?)),
            Some(Tok::LParen) => {
                let c = self.concept()?;
                self.expect(&Tok::RParen)?;
                Ok(c)
            }
            Some(Tok::Name(name)) => match name.as_str() {
                "top" => Ok(Concept::Top),
                "bottom" => Ok(Concept::Bottom),
                kw @ ("some" | "all" | "atleast" | "atmost" | "exactly") => {
                    let kw = kw.to_string();
                    self.quantified(&kw, at)
                }
                _ => Ok(Concept::atom(self.voc.concept(&name))),
            },
            got => Err(self.err_at(at, format!("expected concept, got {got:?}"))),
        }
    }
}

/// Parse a concept expression, interning new names into `voc`.
pub fn parse_concept(input: &str, voc: &mut Vocabulary) -> Result<Concept> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
        voc,
        input: input.to_string(),
        depth: 0,
    };
    let c = p.concept()?;
    if p.pos != p.toks.len() {
        return Err(p.err_at(p.offset(), "trailing tokens"));
    }
    Ok(c)
}

/// Parse an axiom `C < D` (subsumption) or `C = D` (equivalence).
pub fn parse_axiom(input: &str, voc: &mut Vocabulary) -> Result<Axiom> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
        voc,
        input: input.to_string(),
        depth: 0,
    };
    let lhs = p.concept()?;
    let op_at = p.offset();
    let op = p.next();
    let rhs = p.concept()?;
    if p.pos != p.toks.len() {
        return Err(p.err_at(p.offset(), "trailing tokens"));
    }
    match op {
        Some(Tok::Less) => Ok(Axiom::Subsume { lhs, rhs }),
        Some(Tok::Equals) => Ok(Axiom::Equiv { lhs, rhs }),
        got => Err(p.err_at(op_at, format!("expected '<' or '=', got {got:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tbox::TBox;

    #[test]
    fn parses_atoms_and_constants() {
        let mut v = Vocabulary::new();
        assert_eq!(parse_concept("top", &mut v).unwrap(), Concept::Top);
        assert_eq!(parse_concept("bottom", &mut v).unwrap(), Concept::Bottom);
        let c = parse_concept("car", &mut v).unwrap();
        assert!(matches!(c, Concept::Atom(_)));
    }

    #[test]
    fn precedence_and_over_or() {
        let mut v = Vocabulary::new();
        let c = parse_concept("a & b | c", &mut v).unwrap();
        // (a ⊓ b) ⊔ c
        assert!(matches!(c, Concept::Or(_)));
        let d = parse_concept("a & (b | c)", &mut v).unwrap();
        assert!(matches!(d, Concept::And(_)));
    }

    #[test]
    fn parses_quantifiers() {
        let mut v = Vocabulary::new();
        let c = parse_concept("some size.small", &mut v).unwrap();
        assert!(matches!(c, Concept::Exists(_, _)));
        let d = parse_concept("all has.wheel", &mut v).unwrap();
        assert!(matches!(d, Concept::Forall(_, _)));
        let e = parse_concept("atleast 4 has.wheel", &mut v).unwrap();
        assert!(matches!(e, Concept::AtLeast(4, _, _)));
        let f = parse_concept("atmost 2 has.wheel", &mut v).unwrap();
        assert!(matches!(f, Concept::AtMost(2, _, _)));
        let g = parse_concept("exactly 4 has.wheel", &mut v).unwrap();
        assert!(matches!(g, Concept::And(_)));
    }

    #[test]
    fn parses_negation_and_nesting() {
        let mut v = Vocabulary::new();
        let c = parse_concept("~(a & some r.~b)", &mut v).unwrap();
        assert!(matches!(c, Concept::Not(_)));
        assert_eq!(c.nnf().nnf(), c.nnf());
    }

    #[test]
    fn parses_paper_structure_four() {
        let mut v = Vocabulary::new();
        let ax = parse_axiom(
            "car < motorvehicle & roadvehicle & some size.small",
            &mut v,
        )
        .unwrap();
        let mut t = TBox::new();
        t.add(ax);
        assert_eq!(t.len(), 1);
        assert!(v.find_concept("car").is_some());
        assert!(v.find_role("size").is_some());
    }

    #[test]
    fn parses_equivalence() {
        let mut v = Vocabulary::new();
        let ax = parse_axiom("a = b & c", &mut v).unwrap();
        assert!(matches!(ax, Axiom::Equiv { .. }));
    }

    #[test]
    fn unicode_operators_accepted() {
        let mut v = Vocabulary::new();
        let ax = parse_axiom("car ⊑ motor ⊓ road", &mut v).unwrap();
        assert!(matches!(ax, Axiom::Subsume { .. }));
        let c = parse_concept("¬a ⊔ b", &mut v).unwrap();
        assert!(matches!(c, Concept::Or(_)));
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let mut v = Vocabulary::new();
        match parse_concept("a @ b", &mut v) {
            Err(DlError::Parse { offset, .. }) => assert_eq!(offset, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        match parse_concept("a &", &mut v) {
            // Unexpected end of input points one past the last byte.
            Err(DlError::Parse { offset, .. }) => assert_eq!(offset, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        match parse_concept("some .x", &mut v) {
            Err(DlError::Parse { offset, .. }) => assert_eq!(offset, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
        match parse_axiom("a ~ b", &mut v) {
            Err(DlError::Parse { offset, .. }) => assert_eq!(offset, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_inputs_error_instead_of_crashing() {
        let mut v = Vocabulary::new();
        // Lexer: a literal past u32::MAX must not overflow-panic.
        match parse_concept("atleast 99999999999999999999 r.top", &mut v) {
            Err(DlError::Parse { detail, .. }) => assert!(detail.contains("too large")),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Parser: pathological nesting must not overflow the stack.
        let deep = "(".repeat(10_000);
        match parse_concept(&deep, &mut v) {
            Err(DlError::Parse { detail, .. }) => assert!(detail.contains("nesting")),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Reasonable nesting still parses.
        let ok = format!("{}top{}", "(".repeat(200), ")".repeat(200));
        assert!(parse_concept(&ok, &mut v).is_ok());
    }

    #[test]
    fn reports_errors() {
        let mut v = Vocabulary::new();
        assert!(parse_concept("", &mut v).is_err());
        assert!(parse_concept("a &", &mut v).is_err());
        assert!(parse_concept("a b", &mut v).is_err());
        assert!(parse_concept("some .x", &mut v).is_err());
        assert!(parse_concept("atleast has.x", &mut v).is_err());
        assert!(parse_concept("a @ b", &mut v).is_err());
        assert!(parse_axiom("a b", &mut v).is_err());
    }
}
