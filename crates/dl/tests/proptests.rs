//! Property-based tests for the description-logic substrate.

use proptest::prelude::*;
use summa_dl::classify::Classifier;
use summa_dl::el::ElClassifier;
use summa_dl::generate;
use summa_dl::prelude::*;

// ---------------------------------------------------------------------
// Random concepts over a small fixed vocabulary.
// ---------------------------------------------------------------------

fn fixed_voc() -> Vocabulary {
    let mut v = Vocabulary::new();
    for name in ["A", "B", "C", "D"] {
        v.concept(name);
    }
    v.role("r");
    v.role("s");
    v
}

fn arb_concept(depth: usize) -> BoxedStrategy<Concept> {
    let leaf = prop_oneof![
        Just(Concept::Top),
        Just(Concept::Bottom),
        (0u32..4).prop_map(|i| Concept::Atom(ConceptId(i))),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = arb_concept(depth - 1);
        prop_oneof![
            leaf,
            inner.clone().prop_map(Concept::not),
            proptest::collection::vec(arb_concept(depth - 1), 2..4)
                .prop_map(Concept::and),
            proptest::collection::vec(arb_concept(depth - 1), 2..4)
                .prop_map(Concept::or),
            (0u32..2, inner.clone())
                .prop_map(|(r, c)| Concept::exists(RoleId(r), c)),
            (0u32..2, inner.clone())
                .prop_map(|(r, c)| Concept::forall(RoleId(r), c)),
            (0u32..3, 0u32..2, inner.clone())
                .prop_map(|(n, r, c)| Concept::at_least(n, RoleId(r), c)),
            (0u32..3, 0u32..2, inner)
                .prop_map(|(n, r, c)| Concept::at_most(n, RoleId(r), c)),
        ]
        .boxed()
    }
}

/// Does a concept contain a negation of anything but an atom?
fn nnf_clean(c: &Concept) -> bool {
    match c {
        Concept::Top | Concept::Bottom | Concept::Atom(_) => true,
        Concept::Not(inner) => matches!(inner.as_ref(), Concept::Atom(_)),
        Concept::And(cs) | Concept::Or(cs) => cs.iter().all(nnf_clean),
        Concept::Exists(_, c)
        | Concept::Forall(_, c)
        | Concept::AtLeast(_, _, c)
        | Concept::AtMost(_, _, c) => nnf_clean(c),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nnf_is_negation_normal(c in arb_concept(3)) {
        prop_assert!(nnf_clean(&c.nnf()));
    }

    #[test]
    fn nnf_is_idempotent(c in arb_concept(3)) {
        let once = c.nnf();
        prop_assert_eq!(once.nnf(), once);
    }

    #[test]
    fn double_negation_preserves_nnf(c in arb_concept(3)) {
        let double = Concept::not(Concept::not(c.clone()));
        prop_assert_eq!(double.nnf(), c.nnf());
    }

    #[test]
    fn atoms_and_roles_survive_nnf(c in arb_concept(3)) {
        // NNF may drop subformulas only through ⊤/⊥ simplification in
        // and/or; atoms never appear from nowhere.
        let nnf = c.nnf();
        prop_assert!(nnf.atoms().is_subset(&c.atoms()));
        prop_assert!(nnf.roles().is_subset(&c.roles()));
    }
}

proptest! {
    // Tableau calls are costlier: fewer cases, smaller depth.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn excluded_middle_and_contradiction(c in arb_concept(2)) {
        let voc = fixed_voc();
        let mut t = Tableau::new(&TBox::new(), &voc).with_budget(50_000);
        // c ⊓ ¬c is never satisfiable.
        let contra = Concept::and(vec![c.clone(), Concept::not(c.clone())]);
        if let Ok(sat) = t.try_is_satisfiable(&contra) {
            prop_assert!(!sat, "{contra:?} must be unsatisfiable");
        }
        // c ⊔ ¬c is always satisfiable.
        let lem = Concept::or(vec![c.clone(), Concept::not(c)]);
        if let Ok(sat) = t.try_is_satisfiable(&lem) {
            prop_assert!(sat);
        }
    }

    #[test]
    fn satisfiability_is_invariant_under_nnf(c in arb_concept(2)) {
        let voc = fixed_voc();
        let mut t = Tableau::new(&TBox::new(), &voc).with_budget(50_000);
        let direct = t.try_is_satisfiable(&c);
        let via_nnf = t.try_is_satisfiable(&c.nnf());
        if let (Ok(a), Ok(b)) = (direct, via_nnf) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn subsumption_is_reflexive_and_has_top_bottom(c in arb_concept(2)) {
        let voc = fixed_voc();
        let mut t = Tableau::new(&TBox::new(), &voc).with_budget(50_000);
        prop_assert!(t.subsumes(&c, &c));
        prop_assert!(t.subsumes(&Concept::Top, &c));
        prop_assert!(t.subsumes(&c, &Concept::Bottom));
    }
}

// ---------------------------------------------------------------------
// EL vs tableau on random EL TBoxes: the two reasoners must agree.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn el_and_tableau_agree_on_random_el(seed in 0u64..5000) {
        let (voc, tbox, _) = generate::random_el(8, 2, 14, seed);
        let h_el = ElClassifier::new(&tbox, &voc)
            .expect("EL fragment")
            .classify(&tbox, &voc)
            .expect("classification");
        let h_tab = Tableau::new(&tbox, &voc)
            .classify(&tbox, &voc)
            .expect("classification");
        prop_assert_eq!(h_el, h_tab);
    }

    #[test]
    fn el_subsumption_is_transitive(seed in 0u64..5000) {
        let (voc, tbox, ids) = generate::random_el(8, 2, 14, seed);
        let mut el = ElClassifier::new(&tbox, &voc).expect("EL fragment");
        for &a in &ids {
            for &b in &ids {
                for &c in &ids {
                    if el.subsumes(b, a) && el.subsumes(c, b) {
                        prop_assert!(el.subsumes(c, a));
                    }
                }
            }
        }
    }

    #[test]
    fn chain_hierarchy_counts(n in 2usize..10) {
        let (voc, tbox, _) = generate::chain(n);
        let h = ElClassifier::new(&tbox, &voc)
            .expect("EL")
            .classify(&tbox, &voc)
            .expect("classification");
        prop_assert_eq!(h.n_pairs(), n * (n + 1) / 2);
    }

    #[test]
    fn hard_alc_family_is_satisfiable_and_unsat_variant_is_not(n in 1usize..7) {
        let (voc, c) = generate::hard_alc(n);
        let mut r = Tableau::new(&TBox::new(), &voc);
        prop_assert!(r.is_satisfiable(&c));
        let (voc2, c2) = generate::hard_alc_unsat(n);
        let mut r2 = Tableau::new(&TBox::new(), &voc2);
        prop_assert!(!r2.is_satisfiable(&c2));
    }
}

// ---------------------------------------------------------------------
// Parser: rendering a parsed TBox and reparsing preserves reasoning.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parsed_chains_reason_correctly(n in 2usize..8) {
        let mut voc = Vocabulary::new();
        let mut t = TBox::new();
        for i in 0..n - 1 {
            let line = format!("c{i} < c{}", i + 1);
            t.add(parse_axiom(&line, &mut voc).expect("parses"));
        }
        let first = voc.find_concept("c0").expect("interned");
        let last = voc.find_concept(&format!("c{}", n - 1)).expect("interned");
        let mut r = Tableau::new(&t, &voc);
        prop_assert!(r.subsumes(&Concept::atom(last), &Concept::atom(first)));
        prop_assert!(!r.subsumes(&Concept::atom(first), &Concept::atom(last)));
    }
}
