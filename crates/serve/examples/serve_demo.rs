//! Start a reasoning server on a local port and keep serving until
//! the process is killed — the README's "poke it with netcat" demo.
//!
//! ```text
//! cargo run --release -p summa-serve --example serve_demo
//! ```
//!
//! Prints the bound address (pass a port as the first argument to pin
//! one; defaults to an OS-assigned ephemeral port being printed), the
//! builtin snapshots, and a ready-to-paste `printf | nc` ping.

use summa_serve::server::{Server, ServerConfig};

fn main() {
    let server = Server::start(ServerConfig::default()).expect("server starts");
    let addr = server.addr();
    println!("summa-serve listening on {addr}");
    println!("snapshots: {:?}", server.store().names());
    println!();
    println!("ping it (17-byte frame: version 2, op 0, id 1, tenant \"cli\"):");
    println!(
        "  printf '\\x11\\x00\\x00\\x00\\x02\\x00\\x01\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x03\\x00\\x00\\x00cli' \\"
    );
    println!("    | nc {} {} | xxd", addr.ip(), addr.port());
    println!();
    println!("serving until killed (ctrl-c) ...");
    loop {
        std::thread::park();
    }
}
