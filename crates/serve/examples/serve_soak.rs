//! Soak harness for summa-serve, run by `scripts/tier1.sh`.
//!
//! Three phases, each a hard assertion (the process exits nonzero on
//! the first violation):
//!
//! 1. **Stress** — 8 concurrent tenants hammer a mixed workload; every
//!    request must be answered OK (zero dropped requests), the queue
//!    depth must stay within its configured bound, and the final drain
//!    must reconcile exactly (`accepted == completed`, every frame
//!    accounted).
//! 2. **Backpressure** — tiny per-tenant step quotas; every tenant
//!    must see real work complete *and* then a typed
//!    `quota_exhausted` rejection on a connection that stays alive.
//!    Overload is never a disconnect.
//! 3. **Drain under load** — shutdown races 4 clients mid-burst;
//!    everything admitted before the drain flag is answered, late
//!    arrivals get typed `draining` rejections or a clean close, and
//!    the books still reconcile.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use summa_serve::client::Client;
use summa_serve::server::{Server, ServerConfig};
use summa_serve::wire::{
    decode_overload, Overload, Request, STATUS_OK, STATUS_OVERLOADED,
};

fn mixed_workload() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Subsumes {
            snapshot: "vehicles".into(),
            sub: "car".into(),
            sup: "motorvehicle".into(),
        },
        Request::Subsumes {
            snapshot: "animals".into(),
            sub: "dog".into(),
            sup: "animal".into(),
        },
        Request::Classify {
            snapshot: "vehicles".into(),
        },
        Request::Realize {
            snapshot: "vehicles".into(),
            abox: "beetle : car\n".into(),
        },
        Request::Admit {
            artifact: "vehicles TBox (4)".into(),
            definition: "Gruber (functional)".into(),
        },
    ]
}

fn phase_stress() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 7;
    let queue_capacity = 64;
    let server = Server::start(ServerConfig {
        threads: 4,
        max_batch: 8,
        queue_capacity,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let workload = Arc::new(mixed_workload());
    let answered = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let workload = Arc::clone(&workload);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let tenant = format!("stress-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                for _ in 0..ROUNDS {
                    for req in workload.iter() {
                        let resp = client.call(req.clone()).expect("answered");
                        assert_eq!(resp.status, STATUS_OK, "stress request must succeed");
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let sent = (CLIENTS * ROUNDS * mixed_workload().len()) as u64;
    assert_eq!(answered.load(Ordering::Relaxed), sent, "zero dropped requests");
    let stats = server.shutdown();
    assert_eq!(stats.accepted, sent);
    assert_eq!(stats.completed, sent);
    assert_eq!(stats.engine_errors, 0);
    assert!(stats.reconciles(), "exact accounting: {stats:?}");
    assert!(
        stats.max_queue_depth <= queue_capacity as u64,
        "queue depth bounded: {} <= {queue_capacity}",
        stats.max_queue_depth
    );
    println!(
        "  stress: {sent} requests, {} batches (max {}), queue high-water {} — OK",
        stats.batches, stats.max_batch, stats.max_queue_depth
    );
}

fn phase_backpressure() {
    const CLIENTS: usize = 4;
    let server = Server::start(ServerConfig {
        threads: 2,
        tenant_step_quota: Some(60),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("quota-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                let (mut oks, mut quota_rejects) = (0u64, 0u64);
                for _ in 0..48 {
                    let resp = client
                        .subsumes("vehicles", "car", "motorvehicle")
                        .expect("typed answer, never a disconnect");
                    match resp.status {
                        STATUS_OK => {
                            assert_eq!(quota_rejects, 0, "no OK after the quota trips");
                            oks += 1;
                        }
                        STATUS_OVERLOADED => {
                            let (kind, _) = decode_overload(&resp.body).expect("typed body");
                            assert_eq!(kind, Overload::QuotaExhausted);
                            quota_rejects += 1;
                        }
                        other => panic!("unexpected status {other}"),
                    }
                }
                assert!(oks > 0, "quota admitted real work first");
                assert!(quota_rejects > 0, "quota eventually rejected, typed");
                // The connection is still alive and serves admin ops.
                let stats = client.stats().expect("stats answered");
                assert_eq!(stats.status, STATUS_OK);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let stats = server.shutdown();
    assert!(stats.rejected_overload > 0);
    assert!(stats.reconciles(), "exact accounting: {stats:?}");
    println!(
        "  backpressure: {} served, {} typed overload rejections — OK",
        stats.completed, stats.rejected_overload
    );
}

fn phase_drain_under_load() {
    let server = Server::start(ServerConfig {
        threads: 2,
        max_batch: 4,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("drain-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                for _ in 0..200 {
                    match client.subsumes("vehicles", "car", "motorvehicle") {
                        // Served, or typed draining rejection: both fine.
                        Ok(resp) => {
                            assert!(
                                resp.status == STATUS_OK || resp.status == STATUS_OVERLOADED,
                                "unexpected status {}",
                                resp.status
                            );
                        }
                        // The server closed the stream during drain.
                        Err(_) => break,
                    }
                }
            })
        })
        .collect();
    // Let the burst get going, then drain out from under it.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let stats = server.shutdown();
    for h in handles {
        h.join().expect("client thread");
    }
    assert!(stats.reconciles(), "drain keeps exact books: {stats:?}");
    assert!(stats.accepted > 0, "the burst did real work before the drain");
    println!(
        "  drain: {} answered mid-burst, {} typed rejections, books exact — OK",
        stats.completed, stats.rejected_overload
    );
}

fn main() {
    println!("serve_soak: stress");
    phase_stress();
    println!("serve_soak: backpressure");
    phase_backpressure();
    println!("serve_soak: drain under load");
    phase_drain_under_load();
    println!("serve_soak: OK");
}
