//! Soak harness for summa-serve, run by `scripts/tier1.sh`.
//!
//! Three phases, each a hard assertion (the process exits nonzero on
//! the first violation):
//!
//! 1. **Stress** — 8 concurrent tenants hammer a mixed workload; every
//!    request must be answered OK (zero dropped requests), the queue
//!    depth must stay within its configured bound, and the final drain
//!    must reconcile exactly (`accepted == completed`, every frame
//!    accounted).
//! 2. **Backpressure** — tiny per-tenant step quotas; every tenant
//!    must see real work complete *and* then a typed
//!    `quota_exhausted` rejection on a connection that stays alive.
//!    Overload is never a disconnect.
//! 3. **Drain under load** — shutdown races 4 clients mid-burst;
//!    everything admitted before the drain flag is answered, late
//!    arrivals get typed `draining` rejections or a clean close, and
//!    the books still reconcile.
//! 4. **Telemetry** — tail sampling armed (zero latency threshold),
//!    4 tenants hammer the mixed workload, then the `Telemetry` op is
//!    scraped in both formats; both payloads must pass the library's
//!    own validators, the plane's histogram counts must reconcile
//!    exactly with `completed`, and the slow-log books must satisfy
//!    `captured + dropped == triggered`. The scraped payloads are
//!    written to `target/telemetry_serve.prom` and
//!    `target/telemetry_slowlog.json` for the tier-1 artifact linters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use summa_obs::export::validate_chrome_trace;
use summa_obs::validate_exposition;
use summa_serve::client::Client;
use summa_serve::server::{Server, ServerConfig};
use summa_serve::telemetry::TelemetryConfig;
use summa_serve::wire::{
    decode_overload, Overload, Request, STATUS_OK, STATUS_OVERLOADED,
    TELEMETRY_FORMAT_CHROME_SLOWLOG, TELEMETRY_FORMAT_PROMETHEUS,
};

fn mixed_workload() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Subsumes {
            snapshot: "vehicles".into(),
            sub: "car".into(),
            sup: "motorvehicle".into(),
        },
        Request::Subsumes {
            snapshot: "animals".into(),
            sub: "dog".into(),
            sup: "animal".into(),
        },
        Request::Classify {
            snapshot: "vehicles".into(),
        },
        Request::Realize {
            snapshot: "vehicles".into(),
            abox: "beetle : car\n".into(),
        },
        Request::Admit {
            artifact: "vehicles TBox (4)".into(),
            definition: "Gruber (functional)".into(),
        },
    ]
}

fn phase_stress() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 7;
    let queue_capacity = 64;
    let server = Server::start(ServerConfig {
        threads: 4,
        max_batch: 8,
        queue_capacity,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let workload = Arc::new(mixed_workload());
    let answered = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let workload = Arc::clone(&workload);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let tenant = format!("stress-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                for _ in 0..ROUNDS {
                    for req in workload.iter() {
                        let resp = client.call(req.clone()).expect("answered");
                        assert_eq!(resp.status, STATUS_OK, "stress request must succeed");
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let sent = (CLIENTS * ROUNDS * mixed_workload().len()) as u64;
    assert_eq!(answered.load(Ordering::Relaxed), sent, "zero dropped requests");
    let stats = server.shutdown();
    assert_eq!(stats.accepted, sent);
    assert_eq!(stats.completed, sent);
    assert_eq!(stats.engine_errors, 0);
    assert!(stats.reconciles(), "exact accounting: {stats:?}");
    assert!(
        stats.max_queue_depth <= queue_capacity as u64,
        "queue depth bounded: {} <= {queue_capacity}",
        stats.max_queue_depth
    );
    println!(
        "  stress: {sent} requests, {} batches (max {}), queue high-water {} — OK",
        stats.batches, stats.max_batch, stats.max_queue_depth
    );
}

fn phase_backpressure() {
    const CLIENTS: usize = 4;
    // Pinned cold: this phase tests admission control, and a warm
    // index answer charges only one step — 48 of them would never
    // deplete the 60-step quota the phase is built around.
    let server = Server::start(ServerConfig {
        threads: 2,
        tenant_step_quota: Some(60),
        cold: true,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("quota-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                let (mut oks, mut quota_rejects) = (0u64, 0u64);
                for _ in 0..48 {
                    let resp = client
                        .subsumes("vehicles", "car", "motorvehicle")
                        .expect("typed answer, never a disconnect");
                    match resp.status {
                        STATUS_OK => {
                            assert_eq!(quota_rejects, 0, "no OK after the quota trips");
                            oks += 1;
                        }
                        STATUS_OVERLOADED => {
                            let (kind, _) = decode_overload(&resp.body).expect("typed body");
                            assert_eq!(kind, Overload::QuotaExhausted);
                            quota_rejects += 1;
                        }
                        other => panic!("unexpected status {other}"),
                    }
                }
                assert!(oks > 0, "quota admitted real work first");
                assert!(quota_rejects > 0, "quota eventually rejected, typed");
                // The connection is still alive and serves admin ops.
                let stats = client.stats().expect("stats answered");
                assert_eq!(stats.status, STATUS_OK);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let stats = server.shutdown();
    assert!(stats.rejected_overload > 0);
    assert!(stats.reconciles(), "exact accounting: {stats:?}");
    println!(
        "  backpressure: {} served, {} typed overload rejections — OK",
        stats.completed, stats.rejected_overload
    );
}

fn phase_drain_under_load() {
    let server = Server::start(ServerConfig {
        threads: 2,
        max_batch: 4,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("drain-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                for _ in 0..200 {
                    match client.subsumes("vehicles", "car", "motorvehicle") {
                        // Served, or typed draining rejection: both fine.
                        Ok(resp) => {
                            assert!(
                                resp.status == STATUS_OK || resp.status == STATUS_OVERLOADED,
                                "unexpected status {}",
                                resp.status
                            );
                        }
                        // The server closed the stream during drain.
                        Err(_) => break,
                    }
                }
            })
        })
        .collect();
    // Let the burst get going, then drain out from under it.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let stats = server.shutdown();
    for h in handles {
        h.join().expect("client thread");
    }
    assert!(stats.reconciles(), "drain keeps exact books: {stats:?}");
    assert!(stats.accepted > 0, "the burst did real work before the drain");
    println!(
        "  drain: {} answered mid-burst, {} typed rejections, books exact — OK",
        stats.completed, stats.rejected_overload
    );
}

fn phase_telemetry() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 5;
    let server = Server::start(ServerConfig {
        threads: 4,
        max_batch: 8,
        telemetry: TelemetryConfig {
            // Zero threshold: every request tail-samples, so the soak
            // exercises capture, eviction, and the dropped counter.
            slow_threshold_ns: Some(0),
            slow_log_capacity: 32,
            ..TelemetryConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let workload = Arc::new(mixed_workload());
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || {
                let tenant = format!("telemetry-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connects");
                for _ in 0..ROUNDS {
                    for req in workload.iter() {
                        let resp = client.call(req.clone()).expect("answered");
                        assert_eq!(resp.status, STATUS_OK);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let sent = (CLIENTS * ROUNDS * mixed_workload().len()) as u64;

    // The plane's books, before the scrape perturbs anything (it
    // can't — scrapes are admin ops and never enter the histograms).
    let recorded = server.telemetry().recorded_requests();
    assert_eq!(recorded, sent, "one histogram observation per request");
    let (captured, dropped, triggered) = server.telemetry().slow_log_counts();
    assert_eq!(triggered, sent, "zero threshold samples everything");
    assert_eq!(captured + dropped, triggered, "slow-log books exact");
    assert_eq!(captured, 32, "log filled to its bound, no further");

    // Scrape both wire formats and hold them to the library's own
    // validators — the same checks the CI artifact linters re-run.
    let mut scraper = Client::connect(addr, "scraper").expect("connects");
    let prom = scraper
        .telemetry_text(TELEMETRY_FORMAT_PROMETHEUS)
        .expect("prometheus scrape");
    let families =
        validate_exposition(&prom).unwrap_or_else(|e| panic!("exposition invalid: {e}"));
    assert!(families >= 10, "a real scrape has many families: {families}");
    let chrome = scraper
        .telemetry_text(TELEMETRY_FORMAT_CHROME_SLOWLOG)
        .expect("chrome scrape");
    let events =
        validate_chrome_trace(&chrome).unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));
    assert!(events as u64 > captured, "phase spans for every captured query");

    // Artifacts for `scripts/tier1.sh` and the CI telemetry lane.
    let target = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
    std::fs::create_dir_all(target).expect("target dir");
    std::fs::write(format!("{target}/telemetry_serve.prom"), &prom).expect("write prom");
    std::fs::write(format!("{target}/telemetry_slowlog.json"), &chrome).expect("write json");

    drop(scraper);
    let stats = server.shutdown();
    assert!(stats.reconciles(), "exact accounting: {stats:?}");
    assert_eq!(stats.completed, recorded, "plane reconciles with the server books");
    println!(
        "  telemetry: {sent} observed, {captured} captured + {dropped} evicted of {triggered} sampled, \
         {families} exposition families, {events} trace events — OK"
    );
}

fn main() {
    println!("serve_soak: stress");
    phase_stress();
    println!("serve_soak: backpressure");
    phase_backpressure();
    println!("serve_soak: drain under load");
    phase_drain_under_load();
    println!("serve_soak: telemetry");
    phase_telemetry();
    println!("serve_soak: OK");
}
