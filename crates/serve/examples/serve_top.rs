//! `top` for a running summa-serve: polls the versioned `Telemetry`
//! wire op and renders a live terminal dashboard — queue/in-flight/
//! batch gauges, per-op throughput, per-tenant/per-op latency
//! quantiles, and the tail-sampled slow-query log counters.
//!
//! ```text
//! # attach to a running server (serve_demo prints its address):
//! cargo run --release -p summa-serve --example serve_top -- 127.0.0.1:4075
//!
//! # or self-hosted demo: starts a server + three load tenants,
//! # renders 12 frames, then exits:
//! cargo run --release -p summa-serve --example serve_top
//! ```
//!
//! Optional trailing args: `[frames] [interval_ms]`. The dashboard is
//! a pure scrape client — everything it shows travels through the
//! same `Telemetry` op any other scraper would use.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use summa_serve::client::Client;
use summa_serve::server::{Server, ServerConfig};
use summa_serve::telemetry::TelemetryConfig;
use summa_serve::wire::{TELEMETRY_FORMAT_CHROME_SLOWLOG, TELEMETRY_FORMAT_PROMETHEUS};

/// One scraped frame: every sample line of the exposition, keyed by
/// `name{labels}`.
type Samples = BTreeMap<String, f64>;

fn parse_exposition(text: &str) -> Samples {
    let mut out = Samples::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, val)) = line.rsplit_once(' ') {
            if let Ok(v) = val.parse::<f64>() {
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

fn get(s: &Samples, key: &str) -> f64 {
    s.get(key).copied().unwrap_or(0.0)
}

/// Pull one label's value out of a `name{a="x",b="y"}` sample key.
fn label<'a>(key: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("{name}=\"");
    let start = key.find(&tag)? + tag.len();
    let end = key[start..].find('"')? + start;
    Some(&key[start..end])
}

fn bar(v: f64, max: f64, width: usize) -> String {
    let filled = if max <= 0.0 {
        0
    } else {
        ((v / max) * width as f64).round().min(width as f64) as usize
    };
    format!("{}{}", "█".repeat(filled), "·".repeat(width - filled))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn render(frame: usize, frames: usize, s: &Samples) {
    // Clear + home; plain ANSI so it works in any terminal.
    print!("\x1b[2J\x1b[H");
    let enabled = get(s, "summa_serve_telemetry_enabled") > 0.0;
    println!(
        "summa-serve top — frame {}/{} — scrape #{} — telemetry {}",
        frame + 1,
        frames,
        get(s, "summa_serve_telemetry_scrapes_total") as u64,
        if enabled { "on" } else { "OFF" },
    );
    println!();

    let q = get(s, "summa_serve_queue_depth");
    let inf = get(s, "summa_serve_in_flight");
    let occ = get(s, "summa_serve_batch_occupancy");
    let gmax = q.max(inf).max(occ).max(1.0);
    println!("  queue depth      {:>6}  {}", q as i64, bar(q, gmax, 24));
    println!("  in flight        {:>6}  {}", inf as i64, bar(inf, gmax, 24));
    println!("  batch occupancy  {:>6}  {}", occ as i64, bar(occ, gmax, 24));
    println!();

    // Per-op throughput, aggregated over tenants.
    let mut by_op: BTreeMap<String, f64> = BTreeMap::new();
    for (k, v) in s {
        if k.starts_with("summa_serve_tenant_requests_total{") {
            if let Some(op) = label(k, "op") {
                *by_op.entry(op.to_string()).or_default() += v;
            }
        }
    }
    let total: f64 = by_op.values().sum();
    println!("  requests by op            completed {:>8}", total as u64);
    let opmax = by_op.values().cloned().fold(1.0, f64::max);
    for (op, n) in &by_op {
        println!("    {:<12} {:>8}  {}", op, *n as u64, bar(*n, opmax, 24));
    }
    println!();

    // Per-tenant/per-op latency summaries, busiest rows first.
    let mut rows: Vec<(String, String, f64)> = Vec::new();
    for (k, v) in s {
        if k.starts_with("summa_serve_tenant_request_ns_count{") {
            if let (Some(t), Some(op)) = (label(k, "tenant"), label(k, "op")) {
                rows.push((t.to_string(), op.to_string(), *v));
            }
        }
    }
    rows.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    println!(
        "  {:<14} {:<12} {:>7} {:>10} {:>10} {:>10}",
        "tenant", "op", "count", "p50", "p95", "p99"
    );
    for (tenant, op, count) in rows.iter().take(8) {
        let at = |quant: &str| {
            get(
                s,
                &format!(
                    "summa_serve_tenant_request_ns{{tenant=\"{tenant}\",op=\"{op}\",quantile=\"{quant}\"}}"
                ),
            )
        };
        println!(
            "  {:<14} {:<12} {:>7} {:>10} {:>10} {:>10}",
            tenant,
            op,
            *count as u64,
            fmt_ns(at("0.5")),
            fmt_ns(at("0.95")),
            fmt_ns(at("0.99")),
        );
    }
    println!();
    let ih = get(s, "summa_serve_index_hit_total");
    let im = get(s, "summa_serve_index_miss_total");
    let warm_total = ih + im;
    println!(
        "  warm path: {} index hits, {} index misses ({:.0}% hit), {} shared-cache hits",
        ih as u64,
        im as u64,
        if warm_total > 0.0 { ih / warm_total * 100.0 } else { 0.0 },
        get(s, "summa_serve_cache_shared_hit_total") as u64,
    );
    println!(
        "  slow log: {} captured, {} evicted, {} triggered",
        get(s, "summa_serve_slow_log_captured") as u64,
        get(s, "summa_serve_slow_log_dropped_total") as u64,
        get(s, "summa_serve_slow_log_triggered_total") as u64,
    );
}

/// Background load for the self-hosted demo: three tenants with
/// different op mixes, so the per-tenant table has texture.
fn spawn_load(addr: SocketAddr, stop: Arc<AtomicBool>) -> Vec<std::thread::JoinHandle<()>> {
    ["web", "batch", "ingest"]
        .into_iter()
        .map(|tenant| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr, tenant) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                while !stop.load(Ordering::Relaxed) {
                    let r = match tenant {
                        "web" => client.subsumes("vehicles", "car", "motorvehicle"),
                        "batch" => client.classify("animals"),
                        _ => client.realize("vehicles", "beetle : car\n"),
                    };
                    if r.is_err() {
                        return;
                    }
                    let _ = client.ping();
                }
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let attach: Option<SocketAddr> = args.first().map(|a| {
        a.parse()
            .unwrap_or_else(|_| panic!("serve_top: bad address {a:?}"))
    });
    let frames: usize = args
        .get(1)
        .map(|a| a.parse().expect("frames"))
        .unwrap_or(if attach.is_some() { usize::MAX } else { 12 });
    let interval = Duration::from_millis(
        args.get(2).map(|a| a.parse().expect("interval_ms")).unwrap_or(250),
    );

    // Self-hosted demo: a telemetry-armed server plus load tenants.
    let demo = if attach.is_none() {
        let server = Server::start(ServerConfig {
            threads: 4,
            max_batch: 8,
            telemetry: TelemetryConfig {
                slow_threshold_ns: Some(400_000),
                ..TelemetryConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server starts");
        let stop = Arc::new(AtomicBool::new(false));
        let load = spawn_load(server.addr(), Arc::clone(&stop));
        Some((server, stop, load))
    } else {
        None
    };
    let addr = attach.unwrap_or_else(|| demo.as_ref().unwrap().0.addr());

    let mut scraper = Client::connect(addr, "serve_top").expect("connects to server");
    for frame in 0..frames {
        let text = scraper
            .telemetry_text(TELEMETRY_FORMAT_PROMETHEUS)
            .expect("telemetry scrape");
        render(frame, frames, &parse_exposition(&text));
        if frame + 1 < frames {
            std::thread::sleep(interval);
        }
    }

    if let Some((server, stop, load)) = demo {
        stop.store(true, Ordering::Relaxed);
        // One last scrape of the other format, to show the slow log
        // is a real artifact and not just counters.
        let chrome = scraper
            .telemetry_text(TELEMETRY_FORMAT_CHROME_SLOWLOG)
            .expect("chrome scrape");
        drop(scraper);
        for h in load {
            let _ = h.join();
        }
        let stats = server.shutdown();
        println!();
        println!(
            "demo done: {} requests served, slow-query dump is {} bytes of chrome://tracing JSON",
            stats.completed,
            chrome.len()
        );
    }
}
