//! # summa-serve — a batched, multi-tenant reasoning service
//!
//! Serves the `summa_dl` / `summa_core` reasoning surface over a
//! length-prefixed, versioned binary TCP protocol: `ping`, `subsumes`,
//! `classify`, `realize`, `admit`, `critique`, plus admin ops for
//! snapshot hot-swap and server stats. Every response carries the
//! request's deterministic [`summa_guard::Spend`] and a trace handle.
//!
//! The service is built from four layers:
//!
//! * [`wire`] — the protocol: framing, request/response codecs, typed
//!   protocol errors, typed overload rejections.
//! * [`snapshot`] — epoch-versioned ontology snapshots; hot-swap never
//!   blocks in-flight queries (old generations stay alive via `Arc`).
//! * the batching scheduler — coalesces requests that read the same
//!   snapshot generation onto one `summa_exec` pool dispatch. Batching
//!   changes throughput, never answers: each request runs under its
//!   own private budget, tableau, and cache ([`ops::execute`]), so a
//!   served answer is byte-identical to a direct library call.
//! * [`server`] — admission control (bounded queue, per-tenant
//!   in-flight caps and step quotas; overload is a *typed response*,
//!   never a disconnect) and graceful drain with exact accounting
//!   (`accepted == completed`, always).
//!
//! A fifth, passive layer — [`telemetry`] — decomposes every served
//! request into phase histograms (queue-wait / batch-formation /
//! execute / serialize) keyed by op and tenant, samples queue/batch
//! gauges into time-series rings, and tail-samples slow or errored
//! requests into a bounded slow-query log. It is scraped over the
//! wire via the versioned `Telemetry` op (Prometheus-style text or a
//! Chrome-trace dump of the slow log) and never alters response
//! bytes; disabled it costs one relaxed atomic load per request.
//!
//! Chaos coverage rides through the existing `summa_guard` fault
//! plane: the server exposes `serve.accept` and `serve.batch` fault
//! sites on its pool budget, and each request budget can arm a
//! deterministic per-request plan (used by the conformance suite).
//!
//! No dependencies beyond the workspace.

pub mod client;
pub mod ops;
pub mod server;
pub mod snapshot;
pub mod telemetry;
pub mod wire;

pub(crate) mod batch;

pub mod prelude {
    pub use crate::client::Client;
    pub use crate::server::{ServeStats, Server, ServerConfig};
    pub use crate::snapshot::{parse_tbox, Snapshot, SnapshotStore};
    pub use crate::telemetry::{SlowTrigger, TelemetryConfig, TelemetryPlane};
    pub use crate::wire::{
        Envelope, OkBody, Op, Overload, Payload, ProtoError, Request, Response,
        OUTCOME_CANCELLED, OUTCOME_COMPLETED, OUTCOME_EXHAUSTED, STATUS_ENGINE_ERROR,
        STATUS_OK, STATUS_OVERLOADED, STATUS_PROTOCOL_ERROR, TELEMETRY_FORMAT_CHROME_SLOWLOG,
        TELEMETRY_FORMAT_PROMETHEUS,
    };
}
