//! Epoch-versioned snapshot store: the interned TBoxes the server
//! answers against, hot-swappable without blocking in-flight queries.
//!
//! A [`Snapshot`] is immutable once installed: a name, the parsed
//! [`TBox`], its [`Vocabulary`], the TBox fingerprint (the batching
//! key), and the store **epoch** at install time. The store maps names
//! to `Arc<Snapshot>`; a reload builds the new snapshot entirely
//! off-lock, then swaps the `Arc` under a short write lock. Queries
//! that resolved the old `Arc` keep reasoning against it — the old
//! snapshot is freed when its last in-flight batch drops it. The epoch
//! travels in every response header, so a client can tell which
//! generation of an ontology answered.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use summa_dl::cache::{tbox_fingerprint, SatCache};
use summa_dl::classify::{classify_parallel_governed_with, ClassHierarchy};
use summa_dl::concept::Vocabulary;
use summa_dl::corpus::{animals_tbox, animals_tbox_repaired, vehicles_tbox, PaperVocab};
use summa_dl::index::HierarchyIndex;
use summa_dl::parser::parse_axiom;
use summa_dl::tbox::{Axiom, TBox};
use summa_guard::{Budget, Governed};

/// Step ceiling for the install-time warm classification. A hostile
/// wire-loaded TBox must not be able to wedge `install` — if the
/// governed classifier exhausts this budget the snapshot simply ships
/// without a warm state and every query falls back to the prover.
const WARM_CLASSIFY_STEPS: u64 = 2_000_000;

/// The warm-path state precomputed at snapshot install time: the full
/// classification of the snapshot's TBox, its packed
/// [`HierarchyIndex`], and the epoch-shared [`SatCache`] (pre-warmed
/// by the classification itself) that fall-through prover queries
/// share across requests and tenants. Dropped atomically with its
/// snapshot generation on hot-swap — a stale index can never answer,
/// because requests resolve the whole `Arc<Snapshot>` at execute time.
#[derive(Debug)]
pub struct WarmState {
    /// The completed classification (serialized verbatim for warm
    /// `classify` answers).
    pub hierarchy: ClassHierarchy,
    /// Packed ancestor/descendant bitsets over the hierarchy's atoms.
    pub index: HierarchyIndex,
    /// Shared per-(fingerprint, epoch) sat cache; entries are
    /// checksummed as in the resilience layer.
    pub cache: Arc<SatCache>,
}

/// One immutable generation of a named ontology.
#[derive(Debug)]
pub struct Snapshot {
    pub name: String,
    /// Store epoch at install time; strictly increases across installs.
    pub epoch: u64,
    /// [`tbox_fingerprint`] of the TBox — requests against the same
    /// fingerprint+epoch are batchable.
    pub fingerprint: u64,
    pub tbox: TBox,
    pub voc: Vocabulary,
    /// `None` when the install-time classification exhausted its step
    /// ceiling (or the partial hierarchy was unclosed) — such
    /// snapshots serve every query cold.
    pub warm: Option<WarmState>,
}

/// The server's snapshot registry.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    by_name: RwLock<BTreeMap<String, Arc<Snapshot>>>,
    next_epoch: AtomicU64,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-loaded with the paper's corpus ontologies:
    /// `vehicles`, `animals` (incoherent as published), and
    /// `animals-repaired`.
    pub fn with_builtins() -> Self {
        let store = Self::new();
        let p = PaperVocab::new();
        store.install("vehicles", vehicles_tbox(&p), p.voc.clone());
        store.install("animals", animals_tbox(&p), p.voc.clone());
        store.install("animals-repaired", animals_tbox_repaired(&p), p.voc);
        store
    }

    /// Resolve a name to its current generation. The returned `Arc`
    /// stays valid across any later [`install`](Self::install) — hot
    /// swap never invalidates an in-flight query's snapshot.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.by_name
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Installed snapshot names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.by_name
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// The epoch of the most recent install (0 when nothing was ever
    /// installed).
    pub fn current_epoch(&self) -> u64 {
        self.next_epoch.load(Ordering::SeqCst)
    }

    /// Install (or replace) a snapshot. The snapshot — including its
    /// warm classification index — is built entirely before the write
    /// lock is taken; the lock only swaps one `Arc`.
    pub fn install(&self, name: &str, tbox: TBox, voc: Vocabulary) -> Arc<Snapshot> {
        let fingerprint = tbox_fingerprint(&tbox);
        let warm = build_warm(&tbox, &voc);
        let epoch = self.next_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = Arc::new(Snapshot {
            name: name.to_string(),
            epoch,
            fingerprint,
            tbox,
            voc,
            warm,
        });
        self.by_name
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), Arc::clone(&snap));
        snap
    }

    /// Parse axiom text (one axiom per line, `#` comments and blank
    /// lines ignored, [`summa_dl::parser`] grammar: `C < D` for
    /// subsumption, `C = D` for equivalence) into a fresh TBox and
    /// install it. Returns the parser's deterministic message on the
    /// first bad line.
    pub fn install_axioms(&self, name: &str, text: &str) -> Result<Arc<Snapshot>, String> {
        let (tbox, voc) = parse_tbox(text)?;
        Ok(self.install(name, tbox, voc))
    }
}

/// Classify once at install time and pack the result into a
/// [`WarmState`]. The classification runs under a bounded budget and
/// writes into the cache that becomes the snapshot's epoch-shared
/// [`SatCache`], so the warm state ships pre-warmed. Returns `None`
/// when classification did not complete or the hierarchy would not
/// index (partial/unclosed) — the snapshot then serves cold.
fn build_warm(tbox: &TBox, voc: &Vocabulary) -> Option<WarmState> {
    let cache = Arc::new(SatCache::new());
    let budget = Budget::new().with_steps(WARM_CLASSIFY_STEPS);
    let (governed, _spend) =
        classify_parallel_governed_with(tbox, voc, &budget, 1, Arc::clone(&cache));
    let Governed::Completed(hierarchy) = governed else {
        return None;
    };
    let index = HierarchyIndex::build(&hierarchy)?;
    Some(WarmState {
        hierarchy,
        index,
        cache,
    })
}

/// Parse axiom text into a `(TBox, Vocabulary)` pair without touching
/// any store (used by [`SnapshotStore::install_axioms`] and tests).
pub fn parse_tbox(text: &str) -> Result<(TBox, Vocabulary), String> {
    let mut voc = Vocabulary::new();
    let mut tbox = TBox::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_axiom(line, &mut voc) {
            Ok(Axiom::Subsume { lhs, rhs }) => tbox.subsume(lhs, rhs),
            Ok(Axiom::Equiv { lhs, rhs }) => tbox.equiv(lhs, rhs),
            Ok(Axiom::Disjoint { a, b }) => tbox.disjoint(a, b),
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        }
    }
    Ok((tbox, voc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_resolvable_and_epoch_increases() {
        let store = SnapshotStore::with_builtins();
        let v = store.get("vehicles").expect("vehicles");
        let a = store.get("animals").expect("animals");
        let r = store.get("animals-repaired").expect("repaired");
        assert!(store.get("nope").is_none());
        let mut epochs = [v.epoch, a.epoch, r.epoch];
        epochs.sort_unstable();
        assert_eq!(epochs, [1, 2, 3]);
        assert_eq!(store.current_epoch(), 3);
        assert_eq!(
            store.names(),
            vec!["animals", "animals-repaired", "vehicles"]
        );
    }

    #[test]
    fn install_axioms_parses_and_bumps_epoch() {
        let store = SnapshotStore::with_builtins();
        let before = store.current_epoch();
        let snap = store
            .install_axioms("tiny", "# a toy\ncar < vehicle\nbus < vehicle\n")
            .expect("parses");
        assert_eq!(snap.epoch, before + 1);
        assert_eq!(snap.tbox.len(), 2);
        assert!(snap.voc.find_concept("vehicle").is_some());
        assert!(store
            .install_axioms("broken", "car < < vehicle")
            .is_err());
    }

    #[test]
    fn installs_build_an_intact_warm_state_per_generation() {
        let store = SnapshotStore::with_builtins();
        let v = store.get("vehicles").expect("vehicles");
        let warm = v.warm.as_ref().expect("warm built at install");
        assert!(warm.index.is_intact());
        assert_eq!(warm.index.len(), warm.hierarchy.concepts().count());
        // The install-time classification pre-warms the shared cache.
        assert!(warm.cache.stats().entries > 0);
        // A hot swap carries its own fresh warm state — distinct
        // cache, same answers for the same axioms.
        let v2 = store.install("vehicles", v.tbox.clone(), v.voc.clone());
        let warm2 = v2.warm.as_ref().expect("rebuilt on swap");
        assert!(!Arc::ptr_eq(&warm.cache, &warm2.cache));
        assert_eq!(warm.index, warm2.index);
    }

    #[test]
    fn hot_swap_keeps_old_generation_alive() {
        let store = SnapshotStore::new();
        store.install_axioms("t", "a < b").expect("v1");
        let old = store.get("t").expect("v1 resolved");
        store.install_axioms("t", "a < b\nb < c").expect("v2");
        let new = store.get("t").expect("v2 resolved");
        // The in-flight handle still sees generation 1 unchanged.
        assert_eq!(old.tbox.len(), 1);
        assert_eq!(new.tbox.len(), 2);
        assert!(new.epoch > old.epoch);
        assert_ne!(old.fingerprint, new.fingerprint);
    }
}
