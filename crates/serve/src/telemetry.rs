//! The service telemetry plane: phased latency histograms keyed by op
//! and by tenant, sampled gauges, and a tail-sampled slow-query log —
//! all rendered on demand as a Prometheus-style text exposition or a
//! Chrome-trace JSON dump over the `Telemetry` wire op.
//!
//! ## Hot-path contract
//!
//! Telemetry must never perturb what it measures:
//!
//! * **Disabled costs one relaxed load.** Every write entry point
//!   checks [`TelemetryPlane::enabled`] first and returns.
//! * **Enabled writes are lock-free on the hot path.** Histogram and
//!   gauge handles are resolved once — per-op/per-phase handles at
//!   plane construction, per-tenant handles at admission (where the
//!   tenant ledger lock is already held) — so the per-request path is
//!   plain atomics. The only locks are at admission (piggybacking on
//!   existing locks), in the slow-query log (taken only for requests
//!   that already tripped tail sampling), and in the scheduler's
//!   once-per-batch ring sampling.
//! * **Response bytes are untouched.** The plane observes `Response`
//!   values after they are built; it never feeds back into bodies.
//!
//! ## Tail sampling
//!
//! A request is *slow-sampled* when any of:
//!
//! 1. its wire status is a typed error (protocol/overload never get
//!    here; engine errors do),
//! 2. its status is OK but the governed outcome is not `COMPLETED`
//!    (exhausted/cancelled — e.g. an injected fault), or
//! 3. its admission-to-serialized latency exceeds the configured
//!    threshold.
//!
//! Sampled requests push a phase-annotated record into a bounded log
//! with evict-oldest semantics; `captured + dropped == triggered`
//! always reconciles.

use crate::server::ServeStats;
use crate::wire::{Op, Response, OUTCOME_COMPLETED, SERVED_CACHE, SERVED_INDEX, STATUS_OK};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;
use summa_guard::obs::export::json_escape;
use summa_guard::obs::expo::{sanitize_name, Exposition};
use summa_guard::obs::metrics::{Gauge, Histogram, Registry, SeriesRing};

/// Number of wire opcodes ([`Op`] discriminants are `0..NUM_OPS`).
pub const NUM_OPS: usize = 9;

/// All ops in discriminant order, for fixed-size per-op tables.
const ALL_OPS: [Op; NUM_OPS] = [
    Op::Ping,
    Op::Subsumes,
    Op::Classify,
    Op::Realize,
    Op::Admit,
    Op::Critique,
    Op::LoadSnapshot,
    Op::Stats,
    Op::Telemetry,
];

/// The phases a served request decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Admission to the scheduler popping it off the queue.
    QueueWait,
    /// Greedy batch coalescing (shared by every request in the batch).
    BatchForm,
    /// [`crate::ops::execute`] under the request's private budget.
    Execute,
    /// Encoding + writing the response frame.
    Serialize,
}

/// Phases in pipeline order.
pub const PHASES: [Phase; 4] = [
    Phase::QueueWait,
    Phase::BatchForm,
    Phase::Execute,
    Phase::Serialize,
];

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::BatchForm => "batch_form",
            Phase::Execute => "execute",
            Phase::Serialize => "serialize",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::QueueWait => 0,
            Phase::BatchForm => 1,
            Phase::Execute => 2,
            Phase::Serialize => 3,
        }
    }
}

/// Per-request phase durations, threaded from the scheduler through
/// the response slot to the connection handler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNs {
    pub queue_wait_ns: u64,
    pub batch_form_ns: u64,
    pub execute_ns: u64,
    pub serialize_ns: u64,
}

impl PhaseNs {
    fn get(&self, p: Phase) -> u64 {
        match p {
            Phase::QueueWait => self.queue_wait_ns,
            Phase::BatchForm => self.batch_form_ns,
            Phase::Execute => self.execute_ns,
            Phase::Serialize => self.serialize_ns,
        }
    }
}

/// Telemetry knobs, embedded in [`crate::server::ServerConfig`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch. When false every telemetry entry point is one
    /// relaxed atomic load.
    pub enabled: bool,
    /// Latency threshold (admission → response written) beyond which a
    /// request is tail-sampled into the slow-query log. `None` = only
    /// errors and non-completed outcomes trigger sampling.
    pub slow_threshold_ns: Option<u64>,
    /// Bounded slow-query log capacity (evict-oldest past it).
    pub slow_log_capacity: usize,
    /// Capacity of each gauge's time-series ring buffer.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            slow_threshold_ns: None,
            slow_log_capacity: 128,
            ring_capacity: 256,
        }
    }
}

/// Why a request entered the slow-query log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowTrigger {
    /// Typed error status (engine error).
    ErrorStatus,
    /// OK status but governed outcome ≠ completed (exhausted /
    /// cancelled — fault-injected requests land here).
    Interrupted,
    /// Latency exceeded [`TelemetryConfig::slow_threshold_ns`].
    OverThreshold,
}

impl SlowTrigger {
    pub fn name(self) -> &'static str {
        match self {
            SlowTrigger::ErrorStatus => "error_status",
            SlowTrigger::Interrupted => "interrupted",
            SlowTrigger::OverThreshold => "over_threshold",
        }
    }
}

/// One tail-sampled request: identity, phase decomposition, trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    pub trace_id: u64,
    pub tenant: String,
    pub op: Op,
    pub status: u8,
    pub trigger: SlowTrigger,
    /// Admission time, nanoseconds since plane construction — gives
    /// the Chrome dump a shared monotonic timeline.
    pub start_ns: u64,
    pub phases: PhaseNs,
    pub total_ns: u64,
}

/// Cached per-tenant instrument handles, resolved once at admission.
/// All writes through them are plain atomics.
pub struct TenantTelemetry {
    /// Total request latency per op (admission → response written).
    /// Histogram counts double as per-op request counters, which is
    /// what makes the books reconcile: one record per answered
    /// request, so Σ counts == `ServeStats.completed`.
    per_op: [Histogram; NUM_OPS],
}

impl Default for TenantTelemetry {
    fn default() -> Self {
        TenantTelemetry {
            per_op: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl TenantTelemetry {
    fn op_histogram(&self, op: Op) -> &Histogram {
        &self.per_op[op as u8 as usize]
    }

    /// Total recorded requests across all ops.
    pub fn total_requests(&self) -> u64 {
        self.per_op.iter().map(|h| h.count()).sum()
    }
}

/// Hard cap on distinct tenant series; admissions past it aggregate
/// under [`OVERFLOW_TENANT`] so a tenant-id flood cannot balloon the
/// exposition (or server memory).
pub const TENANT_CAP: usize = 64;

/// Aggregation series for tenants past [`TENANT_CAP`].
pub const OVERFLOW_TENANT: &str = "_other";

/// The long-lived telemetry plane, one per server.
pub struct TelemetryPlane {
    enabled: AtomicBool,
    cfg: TelemetryConfig,
    origin: Instant,
    /// The long-lived obs registry backing all named instruments.
    registry: Registry,
    /// `[op][phase]` histogram handles, resolved at construction.
    phase_hist: Vec<[Arc<Histogram>; 4]>,
    /// Current-value gauges (queue depth, in-flight, batch occupancy).
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    batch_occupancy: Arc<Gauge>,
    /// Time series behind the gauges, sampled once per batch.
    queue_depth_ring: SeriesRing,
    in_flight_ring: SeriesRing,
    batch_occupancy_ring: SeriesRing,
    /// Warm-path attribution counters, resolved at construction and
    /// exported through the registry loop as
    /// `summa_serve_index_hit_total`, `summa_serve_index_miss_total`,
    /// and `summa_serve_cache_shared_hit_total`.
    index_hit: Arc<AtomicU64>,
    index_miss: Arc<AtomicU64>,
    cache_shared_hit: Arc<AtomicU64>,
    /// Tenant handles; the map is bounded by [`TENANT_CAP`] + the
    /// overflow entry.
    tenants: Mutex<BTreeMap<String, Arc<TenantTelemetry>>>,
    slow_log: Mutex<VecDeque<SlowQuery>>,
    slow_triggered: AtomicU64,
    slow_dropped: AtomicU64,
    scrapes: AtomicU64,
}

impl TelemetryPlane {
    pub fn new(cfg: TelemetryConfig) -> TelemetryPlane {
        let registry = Registry::new();
        let phase_hist: Vec<[Arc<Histogram>; 4]> = ALL_OPS
            .iter()
            .map(|op| {
                std::array::from_fn(|pi| {
                    registry.histogram(&format!("serve.phase.{}.{}", PHASES[pi].name(), op.name()))
                })
            })
            .collect();
        let queue_depth = registry.gauge("serve.queue_depth");
        let in_flight = registry.gauge("serve.in_flight");
        let batch_occupancy = registry.gauge("serve.batch_occupancy");
        let index_hit = registry.counter("serve.index.hit");
        let index_miss = registry.counter("serve.index.miss");
        let cache_shared_hit = registry.counter("serve.cache.shared_hit");
        let mut tenants = BTreeMap::new();
        tenants.insert(
            OVERFLOW_TENANT.to_string(),
            Arc::new(TenantTelemetry::default()),
        );
        TelemetryPlane {
            enabled: AtomicBool::new(cfg.enabled),
            origin: Instant::now(),
            queue_depth,
            in_flight,
            batch_occupancy,
            index_hit,
            index_miss,
            cache_shared_hit,
            queue_depth_ring: SeriesRing::new(cfg.ring_capacity),
            in_flight_ring: SeriesRing::new(cfg.ring_capacity),
            batch_occupancy_ring: SeriesRing::new(cfg.ring_capacity),
            tenants: Mutex::new(tenants),
            slow_log: Mutex::new(VecDeque::new()),
            slow_triggered: AtomicU64::new(0),
            slow_dropped: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
            phase_hist,
            registry,
            cfg,
        }
    }

    /// The master gate — one relaxed load, checked by every write
    /// entry point before touching anything else.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The backing instrument registry (exposed for tests and for
    /// callers that want to hang extra counters off the plane).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Nanoseconds since plane construction (the exposition/trace
    /// timeline origin).
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Resolve (or create) the cached handle for `tenant`. Called at
    /// admission, where the tenant ledger lock is already being taken;
    /// past [`TENANT_CAP`] distinct tenants the overflow handle is
    /// returned instead of growing the map.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantTelemetry> {
        let mut map = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = map.get(tenant) {
            return Arc::clone(t);
        }
        if map.len() > TENANT_CAP {
            return Arc::clone(&map[OVERFLOW_TENANT]);
        }
        let t = Arc::new(TenantTelemetry::default());
        map.insert(tenant.to_string(), Arc::clone(&t));
        t
    }

    /// Gauge mutators for the admission/scheduler paths. All check the
    /// enabled gate themselves so call sites stay unconditional.
    pub fn queue_depth_set(&self, depth: i64) {
        if self.enabled() {
            self.queue_depth.set(depth);
        }
    }

    pub fn in_flight_add(&self, delta: i64) {
        if self.enabled() {
            self.in_flight.add(delta);
        }
    }

    /// Attribute one answered request to the warm path: an index hit
    /// (answered with zero tableau calls), or an index miss that
    /// proved with the epoch-shared cache (crediting its cache-hit
    /// replays). Cold/prover answers record nothing here.
    pub fn note_served(&self, served: u8, shared_cache_hits: u64) {
        if !self.enabled() {
            return;
        }
        match served {
            SERVED_INDEX => {
                self.index_hit.fetch_add(1, Ordering::Relaxed);
            }
            SERVED_CACHE => {
                self.index_miss.fetch_add(1, Ordering::Relaxed);
                self.cache_shared_hit
                    .fetch_add(shared_cache_hits, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Once-per-batch sampling: update the batch-occupancy gauge and
    /// push all three gauge values into their time-series rings.
    pub fn sample_batch(&self, batch_size: usize, queue_depth: usize) {
        if !self.enabled() {
            return;
        }
        let t_ns = self.now_ns();
        self.batch_occupancy.set(batch_size as i64);
        self.queue_depth.set(queue_depth as i64);
        self.queue_depth_ring.push(t_ns, queue_depth as i64);
        self.in_flight_ring.push(t_ns, self.in_flight.get());
        self.batch_occupancy_ring.push(t_ns, batch_size as i64);
    }

    /// Record one answered request: phase histograms (by op), total
    /// latency (by tenant × op), and the tail-sampling decision.
    ///
    /// Called exactly once per admitted request, after its response
    /// frame is written — which is what makes
    /// Σ tenant×op histogram counts == `ServeStats.completed` an exact
    /// reconciliation at drain.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_request(
        &self,
        tenant_tel: &TenantTelemetry,
        tenant: &str,
        op: Op,
        resp: &Response,
        phases: PhaseNs,
        start_ns: u64,
        total_ns: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let hists = &self.phase_hist[op as u8 as usize];
        for p in PHASES {
            hists[p.index()].record(phases.get(p));
        }
        tenant_tel.op_histogram(op).record(total_ns);

        let trigger = if resp.status != STATUS_OK {
            Some(SlowTrigger::ErrorStatus)
        } else if resp.body.first() != Some(&OUTCOME_COMPLETED) {
            Some(SlowTrigger::Interrupted)
        } else if self.cfg.slow_threshold_ns.is_some_and(|t| total_ns > t) {
            Some(SlowTrigger::OverThreshold)
        } else {
            None
        };
        if let Some(trigger) = trigger {
            self.slow_triggered.fetch_add(1, Ordering::Relaxed);
            self.push_slow(SlowQuery {
                trace_id: resp.trace_id,
                tenant: tenant.to_string(),
                op,
                status: resp.status,
                trigger,
                start_ns,
                phases,
                total_ns,
            });
        }
    }

    fn push_slow(&self, q: SlowQuery) {
        let mut log = self.slow_log.lock().unwrap_or_else(PoisonError::into_inner);
        if log.len() >= self.cfg.slow_log_capacity.max(1) {
            log.pop_front();
            self.slow_dropped.fetch_add(1, Ordering::Relaxed);
        }
        log.push_back(q);
    }

    /// Slow-query-log accounting: `(captured, dropped, triggered)`
    /// with `captured + dropped == triggered` invariant.
    pub fn slow_log_counts(&self) -> (u64, u64, u64) {
        let captured = self
            .slow_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len() as u64;
        (
            captured,
            self.slow_dropped.load(Ordering::Relaxed),
            self.slow_triggered.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the slow-query log, oldest first.
    pub fn slow_log(&self) -> Vec<SlowQuery> {
        self.slow_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Σ over tenant×op of recorded request counts — the left-hand
    /// side of the completed-requests reconciliation.
    pub fn recorded_requests(&self) -> u64 {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|t| t.total_requests())
            .sum()
    }

    // -----------------------------------------------------------------
    // Renderers
    // -----------------------------------------------------------------

    /// Render the Prometheus-style text exposition. `stats` is the
    /// server's own counter snapshot (exported alongside the plane's
    /// instruments so one scrape carries the whole picture).
    pub fn prometheus_text(&self, stats: &ServeStats) -> String {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        let mut e = Exposition::new();
        e.gauge(
            "summa_serve_telemetry_enabled",
            "1 when the telemetry plane is recording.",
            &[],
            i64::from(self.enabled()),
        );
        e.counter(
            "summa_serve_telemetry_scrapes_total",
            "Telemetry scrapes answered (this one included).",
            &[],
            self.scrapes.load(Ordering::Relaxed),
        );

        // Server accounting counters, one family with a `counter`
        // label (they are a closed fixed set — see ServeStats).
        let entries = stats.entries();
        let series: Vec<(Vec<(&str, &str)>, u64)> = entries
            .iter()
            .map(|(k, v)| (vec![("counter", k.as_str())], *v))
            .collect();
        e.counter_series(
            "summa_serve_stats",
            "Server accounting counters (ServeStats snapshot).",
            &series,
        );

        // Instantaneous gauges + their ring accounting.
        for (name, help, gauge, ring) in [
            (
                "summa_serve_queue_depth",
                "Bounded request queue depth.",
                &self.queue_depth,
                &self.queue_depth_ring,
            ),
            (
                "summa_serve_in_flight",
                "Admitted requests not yet answered.",
                &self.in_flight,
                &self.in_flight_ring,
            ),
            (
                "summa_serve_batch_occupancy",
                "Size of the most recent batch.",
                &self.batch_occupancy,
                &self.batch_occupancy_ring,
            ),
        ] {
            e.gauge(name, help, &[], gauge.get());
            e.gauge(
                &format!("{name}_ring_len"),
                "Samples currently in this gauge's time-series ring.",
                &[],
                ring.len() as i64,
            );
            e.counter(
                &format!("{name}_ring_dropped_total"),
                "Ring samples evicted to make room.",
                &[],
                ring.dropped(),
            );
        }

        // Per-op phase histograms (only ops that saw traffic).
        for p in PHASES {
            let name = format!("summa_serve_phase_{}_ns", p.name());
            let mut series: Vec<(Vec<(&str, &str)>, &Histogram)> = Vec::new();
            for op in ALL_OPS {
                let h = &self.phase_hist[op as u8 as usize][p.index()];
                if h.count() > 0 {
                    series.push((vec![("op", op.name())], h.as_ref()));
                }
            }
            if !series.is_empty() {
                e.histogram_series(
                    &name,
                    "Per-phase request latency, nanoseconds, by op.",
                    &series,
                );
            }
        }

        // Per-tenant × per-op latency as summaries (bucket tables per
        // tenant would bloat the frame; quantiles answer the
        // operator's question).
        // One summary row per tenant×op: (labels, quantiles, sum, count).
        type SummaryRow<'a> = (Vec<(&'a str, &'a str)>, Vec<(f64, u64)>, u64, u64);
        let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let mut sum_series: Vec<SummaryRow> = Vec::new();
        let mut cnt_series: Vec<(Vec<(&str, &str)>, u64)> = Vec::new();
        for (tenant, tel) in tenants.iter() {
            for op in ALL_OPS {
                let h = tel.op_histogram(op);
                let count = h.count();
                if count == 0 {
                    continue;
                }
                let labels = vec![("tenant", tenant.as_str()), ("op", op.name())];
                cnt_series.push((labels.clone(), count));
                sum_series.push((
                    labels,
                    vec![
                        (0.5, h.quantile_ns(0.5)),
                        (0.95, h.quantile_ns(0.95)),
                        (0.99, h.quantile_ns(0.99)),
                    ],
                    h.sum_ns(),
                    count,
                ));
            }
        }
        if !cnt_series.is_empty() {
            e.counter_series(
                "summa_serve_tenant_requests_total",
                "Answered requests by tenant and op (sums to completed).",
                &cnt_series,
            );
            e.summary_series(
                "summa_serve_tenant_request_ns",
                "Request latency by tenant and op, nanoseconds.",
                &sum_series,
            );
        }
        drop(tenants);

        // Tail sampling accounting: captured + dropped == triggered.
        let (captured, dropped, triggered) = self.slow_log_counts();
        e.gauge(
            "summa_serve_slow_log_captured",
            "Requests currently held in the slow-query log.",
            &[],
            captured as i64,
        );
        e.counter(
            "summa_serve_slow_log_dropped_total",
            "Slow-query records evicted (oldest-first) past capacity.",
            &[],
            dropped,
        );
        e.counter(
            "summa_serve_slow_log_triggered_total",
            "Requests that tripped tail sampling (captured + dropped).",
            &[],
            triggered,
        );

        // Any extra counters callers registered on the plane's
        // registry, exported under their sanitized names.
        for (name, value) in self.registry.counters() {
            e.counter(
                &format!("summa_{}_total", sanitize_name(&name)),
                "Plane-registry counter.",
                &[],
                value,
            );
        }
        e.finish()
    }

    /// Render the slow-query log as a Chrome `trace_event` document:
    /// one process, one lane per slow query, one `X` span per phase,
    /// plus `C` counter events replaying each gauge's time-series
    /// ring. Always emits at least the process-name metadata event so
    /// an empty log still validates.
    pub fn slow_log_chrome_json(&self) -> String {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        let mut events: Vec<String> = Vec::new();
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"summa-serve slow-query log\"}}"
                .to_string(),
        );
        let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
        for (lane, q) in self.slow_log().iter().enumerate() {
            let tid = lane as u64 + 1;
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"slow[{lane}] {} {}\"}}}}",
                json_escape(&q.tenant),
                q.op.name(),
            ));
            let mut t = q.start_ns;
            for p in PHASES {
                let dur = q.phases.get(p);
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"slow\",\"ph\":\"X\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\
                     \"tenant\":\"{}\",\"op\":\"{}\",\"trace_id\":{},\
                     \"status\":{},\"trigger\":\"{}\",\"total_ns\":{}}}}}",
                    p.name(),
                    us(t),
                    us(dur),
                    json_escape(&q.tenant),
                    q.op.name(),
                    q.trace_id,
                    q.status,
                    q.trigger.name(),
                    q.total_ns,
                ));
                t = t.saturating_add(dur);
            }
        }
        for (name, ring) in [
            ("queue_depth", &self.queue_depth_ring),
            ("in_flight", &self.in_flight_ring),
            ("batch_occupancy", &self.batch_occupancy_ring),
        ] {
            for s in ring.samples() {
                events.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\
                     \"ts\":{},\"args\":{{\"value\":{}}}}}",
                    us(s.t_ns),
                    s.value,
                ));
            }
        }
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\
             \"slow_captured\":{},\"slow_dropped\":{},\"slow_triggered\":{}}}}}\n",
            self.slow_log_counts().0,
            self.slow_log_counts().1,
            self.slow_log_counts().2,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::STATUS_ENGINE_ERROR;
    use summa_guard::obs::export::validate_chrome_trace;
    use summa_guard::obs::expo::validate_exposition;

    fn plane(cfg: TelemetryConfig) -> TelemetryPlane {
        TelemetryPlane::new(cfg)
    }

    fn ok_resp(trace_id: u64) -> Response {
        Response {
            id: 1,
            status: STATUS_OK,
            elapsed_ns: 0,
            trace_id,
            epoch: 0,
            served: crate::wire::SERVED_PROVER,
            spend: summa_guard::Spend::default(),
            body: vec![OUTCOME_COMPLETED],
        }
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let p = plane(TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        });
        let t = p.tenant("t0");
        p.observe_request(&t, "t0", Op::Ping, &ok_resp(1), PhaseNs::default(), 0, 10);
        p.sample_batch(4, 2);
        assert_eq!(p.recorded_requests(), 0);
        assert_eq!(p.slow_log_counts(), (0, 0, 0));
        assert!(p.queue_depth_ring.is_empty());
    }

    #[test]
    fn slow_log_evicts_oldest_in_order_and_counts_drops() {
        let p = plane(TelemetryConfig {
            slow_threshold_ns: Some(0), // everything over 0 ns is slow
            slow_log_capacity: 3,
            ..TelemetryConfig::default()
        });
        let t = p.tenant("t0");
        for i in 1..=5u64 {
            p.observe_request(
                &t,
                "t0",
                Op::Subsumes,
                &ok_resp(i),
                PhaseNs::default(),
                i * 100,
                50, // > threshold 0
            );
        }
        let (captured, dropped, triggered) = p.slow_log_counts();
        assert_eq!((captured, dropped, triggered), (3, 2, 5));
        // Oldest evicted first: survivors are 3, 4, 5 in arrival order.
        let ids: Vec<u64> = p.slow_log().iter().map(|q| q.trace_id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert!(p
            .slow_log()
            .iter()
            .all(|q| q.trigger == SlowTrigger::OverThreshold));
    }

    #[test]
    fn triggers_classify_status_outcome_and_threshold() {
        let p = plane(TelemetryConfig {
            slow_threshold_ns: Some(1_000),
            ..TelemetryConfig::default()
        });
        let t = p.tenant("t0");
        // Fast + completed: not sampled.
        p.observe_request(&t, "t0", Op::Ping, &ok_resp(1), PhaseNs::default(), 0, 10);
        // Engine error: sampled as ErrorStatus.
        let err = Response {
            status: STATUS_ENGINE_ERROR,
            ..ok_resp(2)
        };
        p.observe_request(&t, "t0", Op::Ping, &err, PhaseNs::default(), 0, 10);
        // OK but interrupted outcome (fault-injected shape): sampled.
        let exhausted = Response {
            body: vec![crate::wire::OUTCOME_EXHAUSTED],
            ..ok_resp(3)
        };
        p.observe_request(&t, "t0", Op::Ping, &exhausted, PhaseNs::default(), 0, 10);
        // Over threshold: sampled.
        p.observe_request(&t, "t0", Op::Ping, &ok_resp(4), PhaseNs::default(), 0, 5_000);
        let triggers: Vec<SlowTrigger> = p.slow_log().iter().map(|q| q.trigger).collect();
        assert_eq!(
            triggers,
            vec![
                SlowTrigger::ErrorStatus,
                SlowTrigger::Interrupted,
                SlowTrigger::OverThreshold
            ]
        );
        assert_eq!(p.recorded_requests(), 4);
    }

    #[test]
    fn tenant_cardinality_is_capped_into_overflow() {
        let p = plane(TelemetryConfig::default());
        for i in 0..(TENANT_CAP + 10) {
            let name = format!("tenant-{i}");
            let t = p.tenant(&name);
            p.observe_request(&t, &name, Op::Ping, &ok_resp(1), PhaseNs::default(), 0, 10);
        }
        // Every request is recorded even past the cap…
        assert_eq!(p.recorded_requests(), (TENANT_CAP + 10) as u64);
        // …and the overflow series absorbed the excess.
        let overflow = p.tenant(OVERFLOW_TENANT);
        assert!(overflow.total_requests() > 0);
    }

    #[test]
    fn both_renderings_validate() {
        let p = plane(TelemetryConfig {
            slow_threshold_ns: Some(0),
            ..TelemetryConfig::default()
        });
        let t = p.tenant("acme");
        p.observe_request(
            &t,
            "acme",
            Op::Subsumes,
            &ok_resp(7),
            PhaseNs {
                queue_wait_ns: 100,
                batch_form_ns: 50,
                execute_ns: 900,
                serialize_ns: 30,
            },
            10,
            1_080,
        );
        p.sample_batch(3, 1);
        let stats = ServeStats::default();
        let text = p.prometheus_text(&stats);
        validate_exposition(&text).expect("exposition lints clean");
        assert!(text.contains("summa_serve_tenant_requests_total{tenant=\"acme\",op=\"subsumes\"} 1"));
        assert!(text.contains("summa_serve_phase_execute_ns_count{op=\"subsumes\"} 1"));
        let json = p.slow_log_chrome_json();
        let n = validate_chrome_trace(&json).expect("chrome trace validates");
        assert!(n >= PHASES.len());
    }

    #[test]
    fn served_attribution_counters_export_and_lint() {
        let p = plane(TelemetryConfig::default());
        p.note_served(SERVED_INDEX, 0);
        p.note_served(SERVED_INDEX, 0);
        p.note_served(SERVED_CACHE, 7);
        p.note_served(crate::wire::SERVED_PROVER, 3); // cold: unattributed
        let text = p.prometheus_text(&ServeStats::default());
        validate_exposition(&text).expect("exposition lints clean");
        assert!(text.contains("summa_serve_index_hit_total 2"));
        assert!(text.contains("summa_serve_index_miss_total 1"));
        assert!(text.contains("summa_serve_cache_shared_hit_total 7"));

        let off = plane(TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        });
        off.note_served(SERVED_INDEX, 0);
        assert!(off
            .prometheus_text(&ServeStats::default())
            .contains("summa_serve_index_hit_total 0"));
    }

    #[test]
    fn empty_plane_renderings_still_validate() {
        let p = plane(TelemetryConfig::default());
        let text = p.prometheus_text(&ServeStats::default());
        validate_exposition(&text).expect("empty exposition lints clean");
        let json = p.slow_log_chrome_json();
        validate_chrome_trace(&json).expect("empty slow log still validates");
    }
}
