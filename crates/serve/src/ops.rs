//! The operations behind the wire protocol, shared verbatim between
//! the server's batch executor and the conformance suite.
//!
//! [`execute`] is *the* direct library call: the server invokes it for
//! every batched request, and `tests/integration_serve.rs` invokes it
//! straight from the test process and compares bytes. Determinism
//! contract: for a fixed snapshot, request, and request [`Budget`]
//! (including any per-request fault injector), the returned
//! [`Executed::body`] is byte-identical across runs, thread counts,
//! and transport — because
//!
//! * every request reasons against a **private** [`Tableau`] and a
//!   **fresh** [`SatCache`] (no cross-request warmth leaks into
//!   `Spend.cache_hits`),
//! * parallel substrates run at `threads = 1` *inside* a request
//!   (parallelism comes from batching many requests, which never
//!   shares an envelope), and
//! * `Spend.elapsed` — the one wall-clock field — never enters the
//!   body (it rides in the response header).

use crate::snapshot::{Snapshot, SnapshotStore, WarmState};
use crate::wire::{
    self, put_str, put_u32, put_u64, ProtoError, Request, OUTCOME_CANCELLED, OUTCOME_COMPLETED,
    OUTCOME_EXHAUSTED, REASON_DEADLINE, REASON_FAULT, REASON_MEMORY, REASON_NONE, REASON_STEPS,
    REASON_TASK_FAILURE, SERVED_CACHE, SERVED_INDEX, SERVED_PROVER, STATUS_OK,
    STATUS_PROTOCOL_ERROR,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use summa_core::prelude::{standard_corpus, standard_definitions, Verdict};
use summa_dl::abox::ABox;
use summa_dl::cache::SatCache;
use summa_dl::classify::{classify_parallel_governed_with, ClassHierarchy};
use summa_dl::concept::{Concept, Vocabulary};
use summa_dl::parser::parse_concept;
use summa_dl::realize::{
    realize_parallel_governed_indexed, realize_parallel_governed_with, Realization,
};
use summa_dl::tableau::Tableau;
use summa_guard::{Budget, ExhaustionReason, Governed, Interrupt, Spend};

/// The result of executing one request: a wire status, the
/// deterministic body bytes, the snapshot epoch answered against (0 if
/// none), how the answer was produced (`SERVED_*`), and the spend to
/// charge the tenant's quota (rides in the response header, never the
/// body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executed {
    pub status: u8,
    pub body: Vec<u8>,
    pub epoch: u64,
    pub served: u8,
    pub spend: Spend,
}

impl Executed {
    fn proto(e: ProtoError, epoch: u64) -> Executed {
        Executed {
            status: STATUS_PROTOCOL_ERROR,
            body: wire::protocol_error_body(&e),
            epoch,
            served: SERVED_PROVER,
            spend: Spend::default(),
        }
    }
}

fn interrupt_codes(i: Interrupt) -> (u8, u8) {
    match i {
        Interrupt::Cancelled => (OUTCOME_CANCELLED, REASON_NONE),
        Interrupt::Exhausted(r) => (
            OUTCOME_EXHAUSTED,
            match r {
                ExhaustionReason::Steps => REASON_STEPS,
                ExhaustionReason::Deadline => REASON_DEADLINE,
                ExhaustionReason::Memory => REASON_MEMORY,
                ExhaustionReason::FaultInjected => REASON_FAULT,
                ExhaustionReason::TaskFailure => REASON_TASK_FAILURE,
            },
        ),
    }
}

/// Build an OK body: governed outcome + reason + optional payload.
/// Since protocol v2 the spend rides in the response header, so bodies
/// for matching answers are byte-identical warm-vs-cold.
fn ok_body(outcome: u8, reason: u8, payload: Option<Vec<u8>>) -> Vec<u8> {
    let mut buf = vec![outcome, reason];
    match payload {
        None => buf.push(0),
        Some(p) => {
            buf.push(1);
            buf.extend_from_slice(&p);
        }
    }
    buf
}

/// Map a `Governed<T>` plus a payload serializer onto an OK body.
/// Completed results always carry a payload; interrupted ones carry
/// the partial when the substrate salvaged one.
fn governed_body<T>(g: &Governed<T>, ser: impl Fn(&T) -> Vec<u8>) -> Vec<u8> {
    match g {
        Governed::Completed(t) => ok_body(OUTCOME_COMPLETED, REASON_NONE, Some(ser(t))),
        Governed::Exhausted { reason, partial } => {
            let (_, rc) = interrupt_codes(Interrupt::Exhausted(*reason));
            ok_body(OUTCOME_EXHAUSTED, rc, partial.as_ref().map(&ser))
        }
        Governed::Cancelled { partial } => {
            ok_body(OUTCOME_CANCELLED, REASON_NONE, partial.as_ref().map(&ser))
        }
    }
}

/// Verdict wire codes.
pub fn verdict_code(v: Verdict) -> u8 {
    match v {
        Verdict::Admitted => 0,
        Verdict::Rejected => 1,
        Verdict::Undecidable => 2,
        Verdict::Unknown => 3,
    }
}

/// Parse ABox text: one assertion per line, `#` comments and blank
/// lines ignored. Two forms:
///
/// * `name : <concept-expr>` — a concept assertion (the expression
///   uses the [`summa_dl::parser`] grammar);
/// * `a role b` — a role assertion (three bare tokens).
pub fn parse_abox(text: &str, voc: &mut Vocabulary) -> Result<ABox, String> {
    let mut abox = ABox::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, expr)) = line.split_once(':') {
            let name = name.trim();
            if name.is_empty() || name.split_whitespace().count() != 1 {
                return Err(format!("line {}: bad individual name", lineno + 1));
            }
            let c = parse_concept(expr.trim(), voc)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ind = abox.individual(name);
            abox.assert_concept(ind, c);
        } else {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 3 {
                return Err(format!(
                    "line {}: expected `name : concept` or `a role b`",
                    lineno + 1
                ));
            }
            let a = abox.individual(toks[0]);
            let r = voc.role(toks[1]);
            let b = abox.individual(toks[2]);
            abox.assert_role(a, r, b);
        }
    }
    Ok(abox)
}

/// Serialize a classification hierarchy payload. Shared between the
/// cold classify path and the warm (precomputed) path so the bytes
/// agree by construction.
fn hierarchy_payload(h: &ClassHierarchy, voc: &Vocabulary) -> Vec<u8> {
    let mut p = Vec::new();
    let rows: Vec<_> = h.concepts().collect();
    put_u32(&mut p, rows.len() as u32);
    for c in rows {
        put_str(&mut p, voc.concept_name(c));
        let subs = h.subsumers_ref(c).cloned().unwrap_or_default();
        put_u32(&mut p, subs.len() as u32);
        for s in subs {
            put_str(&mut p, voc.concept_name(s));
        }
    }
    p
}

/// Serialize a realization payload. Shared between the cold and warm
/// realize paths.
fn realization_payload(real: &Realization, parsed: &ABox, voc: &Vocabulary) -> Vec<u8> {
    let mut p = Vec::new();
    let decided: Vec<_> = parsed
        .individuals()
        .filter(|&i| real.types_ref(i).is_some())
        .collect();
    put_u32(&mut p, decided.len() as u32);
    for ind in decided {
        put_str(&mut p, parsed.individual_name(ind));
        for set in [real.types_ref(ind), real.most_specific_ref(ind)] {
            let set = set.cloned().unwrap_or_default();
            put_u32(&mut p, set.len() as u32);
            for c in set {
                put_str(&mut p, voc.concept_name(c));
            }
        }
    }
    p
}

/// Resolve a query string as a told atom of the snapshot's vocabulary
/// **without interning** — a bare identifier token that is not a
/// grammar keyword and is already interned resolves to exactly the
/// `Concept::Atom` the full parse would produce. Anything else
/// (complex expressions, unknown names, odd tokens) returns `None`
/// and takes the parse path. This keeps the index fast path free of
/// the per-request vocabulary clone, which would otherwise dominate a
/// one-bit-test answer.
fn told_atom(voc: &Vocabulary, s: &str) -> Option<summa_dl::concept::ConceptId> {
    let t = s.trim();
    let first = t.chars().next()?;
    if !(first.is_alphabetic() || first == '_') {
        return None;
    }
    if !t.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    if matches!(
        t,
        "top" | "bottom" | "some" | "all" | "atleast" | "atmost" | "exactly"
    ) {
        return None;
    }
    voc.find_concept(t)
}

/// Build the `Executed` for an index-decided pair: one charged step,
/// the same completed body bytes the cold prover would produce.
fn index_answer(holds: bool, epoch: u64, budget: &Budget) -> Executed {
    let mut meter = budget.meter();
    let body = match meter.charge(1) {
        Ok(()) => ok_body(OUTCOME_COMPLETED, REASON_NONE, Some(vec![u8::from(holds)])),
        Err(i) => {
            let (oc, rc) = interrupt_codes(i);
            ok_body(oc, rc, None)
        }
    };
    Executed {
        status: STATUS_OK,
        body,
        epoch,
        served: SERVED_INDEX,
        spend: meter.spend(),
    }
}

/// Answer a subsumption query against one snapshot generation. With
/// `warm`, a named-concept pair the snapshot's closure already decided
/// answers by one index bit test (charging a single step), and
/// fall-through queries prove against the epoch-shared [`SatCache`];
/// without it, the query proves cold against a private tableau.
fn subsumes_with(
    snap: &Snapshot,
    sub: &str,
    sup: &str,
    budget: &Budget,
    warm: Option<&WarmState>,
) -> Executed {
    // Index fast path, clone-free: both names resolve as told atoms
    // of the snapshot's own vocabulary and the closure has the bit.
    if let Some(w) = warm {
        if let (Some(sub_id), Some(sup_id)) =
            (told_atom(&snap.voc, sub), told_atom(&snap.voc, sup))
        {
            if let Some(holds) = w.index.subsumes(sup_id, sub_id) {
                return index_answer(holds, snap.epoch, budget);
            }
        }
    }
    // Query-local names intern into a private vocabulary clone,
    // so concurrent requests never race on the snapshot's.
    let mut voc = snap.voc.clone();
    let sub_c = match parse_concept(sub, &mut voc) {
        Ok(c) => c,
        Err(e) => return Executed::proto(ProtoError::ParseError(e.to_string()), snap.epoch),
    };
    let sup_c = match parse_concept(sup, &mut voc) {
        Ok(c) => c,
        Err(e) => return Executed::proto(ProtoError::ParseError(e.to_string()), snap.epoch),
    };
    let mut meter = budget.meter();
    if let Some(w) = warm {
        // Second index chance after the full parse (e.g. a
        // parenthesized atom the clone-free lookup skipped): the bit
        // is the classifier's own answer for this pair, so the body
        // matches the cold path byte-for-byte.
        if let (Concept::Atom(a), Concept::Atom(b)) = (&sub_c, &sup_c) {
            if let Some(holds) = w.index.subsumes(*b, *a) {
                return index_answer(holds, snap.epoch, budget);
            }
        }
    }
    let mut reasoner = Tableau::new(&snap.tbox, &voc);
    if let Some(w) = warm {
        reasoner = reasoner.with_shared_cache(Arc::clone(&w.cache));
    }
    // sub ⊑ sup  iff  sub ⊓ ¬sup is unsatisfiable.
    let query = Concept::and(vec![sub_c, Concept::not(sup_c)]);
    let answer = reasoner.sat_metered(&query, &mut meter);
    let spend = meter.spend();
    let body = match answer {
        Ok(sat) => ok_body(OUTCOME_COMPLETED, REASON_NONE, Some(vec![u8::from(!sat)])),
        Err(i) => {
            let (oc, rc) = interrupt_codes(i);
            ok_body(oc, rc, None)
        }
    };
    Executed {
        status: STATUS_OK,
        body,
        epoch: snap.epoch,
        served: if warm.is_some() {
            SERVED_CACHE
        } else {
            SERVED_PROVER
        },
        spend,
    }
}

/// The snapshot's warm state, if present and passing its integrity
/// check. A corrupt index is never consulted — the query proves
/// instead, exactly like a snapshot that shipped without one.
fn intact_warm(snap: &Snapshot) -> Option<&WarmState> {
    snap.warm.as_ref().filter(|w| w.index.is_intact())
}

/// Execute one request preferring the snapshot's warm state: index
/// lookups for told subsumption, the stored classification for
/// `classify`, and the epoch-shared [`SatCache`] (plus index-assisted
/// most-specific filtering) for realization. Falls back to
/// [`execute`] — the cold conformance baseline — whenever the
/// snapshot has no intact warm state or the op has no warm variant.
///
/// Answer bodies are byte-identical to [`execute`] whenever both
/// complete: index bits are the classifier's own answers and the
/// shared cache only replays checksummed prover verdicts. What may
/// legitimately differ is the header-only spend (and, under starved
/// budgets, the outcome — which is why the server gates the warm path
/// off for step-capped and fault-injected configurations).
pub fn execute_warm(store: &SnapshotStore, req: &Request, budget: &Budget) -> Executed {
    match req {
        Request::Subsumes { snapshot, sub, sup } => {
            let Some(snap) = store.get(snapshot) else {
                return Executed::proto(ProtoError::UnknownSnapshot(snapshot.clone()), 0);
            };
            subsumes_with(&snap, sub, sup, budget, intact_warm(&snap))
        }
        Request::Classify { snapshot } => {
            let Some(snap) = store.get(snapshot) else {
                return Executed::proto(ProtoError::UnknownSnapshot(snapshot.clone()), 0);
            };
            let Some(w) = intact_warm(&snap) else {
                return execute(store, req, budget);
            };
            // The stored hierarchy came from the same deterministic
            // classifier the cold path runs, so the payload bytes are
            // identical; serving it costs one charged step.
            let mut meter = budget.meter();
            let body = match meter.charge(1) {
                Ok(()) => ok_body(
                    OUTCOME_COMPLETED,
                    REASON_NONE,
                    Some(hierarchy_payload(&w.hierarchy, &snap.voc)),
                ),
                Err(i) => {
                    let (oc, rc) = interrupt_codes(i);
                    ok_body(oc, rc, None)
                }
            };
            Executed {
                status: STATUS_OK,
                epoch: snap.epoch,
                served: SERVED_INDEX,
                spend: meter.spend(),
                body,
            }
        }
        Request::Realize { snapshot, abox } => {
            let Some(snap) = store.get(snapshot) else {
                return Executed::proto(ProtoError::UnknownSnapshot(snapshot.clone()), 0);
            };
            let Some(w) = intact_warm(&snap) else {
                return execute(store, req, budget);
            };
            let mut voc = snap.voc.clone();
            let parsed = match parse_abox(abox, &mut voc) {
                Ok(a) => a,
                Err(e) => return Executed::proto(ProtoError::ParseError(e), snap.epoch),
            };
            let (governed, spend) = realize_parallel_governed_indexed(
                &snap.tbox,
                &parsed,
                &voc,
                budget,
                1,
                Arc::clone(&w.cache),
                Some(&w.index),
            );
            let body = governed_body(&governed, |real| realization_payload(real, &parsed, &voc));
            Executed {
                status: STATUS_OK,
                epoch: snap.epoch,
                served: SERVED_CACHE,
                spend,
                body,
            }
        }
        _ => execute(store, req, budget),
    }
}

/// Execute one request against the store under the given per-request
/// budget. This function **is** the conformance baseline — see the
/// module docs.
pub fn execute(store: &SnapshotStore, req: &Request, budget: &Budget) -> Executed {
    match req {
        Request::Ping => Executed {
            status: STATUS_OK,
            body: ok_body(OUTCOME_COMPLETED, REASON_NONE, Some(Vec::new())),
            epoch: 0,
            served: SERVED_PROVER,
            spend: Spend::default(),
        },
        Request::Subsumes { snapshot, sub, sup } => {
            let Some(snap) = store.get(snapshot) else {
                return Executed::proto(ProtoError::UnknownSnapshot(snapshot.clone()), 0);
            };
            subsumes_with(&snap, sub, sup, budget, None)
        }
        Request::Classify { snapshot } => {
            let Some(snap) = store.get(snapshot) else {
                return Executed::proto(ProtoError::UnknownSnapshot(snapshot.clone()), 0);
            };
            // Fresh private cache: within-request reuse only, so the
            // spend's cache counters are history-independent.
            let cache = Arc::new(SatCache::new());
            let (governed, spend) =
                classify_parallel_governed_with(&snap.tbox, &snap.voc, budget, 1, cache);
            let body = governed_body(&governed, |h| hierarchy_payload(h, &snap.voc));
            Executed {
                status: STATUS_OK,
                epoch: snap.epoch,
                served: SERVED_PROVER,
                spend,
                body,
            }
        }
        Request::Realize { snapshot, abox } => {
            let Some(snap) = store.get(snapshot) else {
                return Executed::proto(ProtoError::UnknownSnapshot(snapshot.clone()), 0);
            };
            let mut voc = snap.voc.clone();
            let parsed = match parse_abox(abox, &mut voc) {
                Ok(a) => a,
                Err(e) => return Executed::proto(ProtoError::ParseError(e), snap.epoch),
            };
            let cache = Arc::new(SatCache::new());
            let (governed, spend) =
                realize_parallel_governed_with(&snap.tbox, &parsed, &voc, budget, 1, cache);
            let body = governed_body(&governed, |real| realization_payload(real, &parsed, &voc));
            Executed {
                status: STATUS_OK,
                epoch: snap.epoch,
                served: SERVED_PROVER,
                spend,
                body,
            }
        }
        Request::Admit {
            artifact,
            definition,
        } => {
            let corpus = standard_corpus();
            let Some(a) = corpus.iter().find(|a| a.name() == artifact) else {
                return Executed::proto(ProtoError::UnknownArtifact(artifact.clone()), 0);
            };
            let defs = standard_definitions();
            let Some(d) = defs.iter().find(|d| d.name() == definition) else {
                return Executed::proto(ProtoError::UnknownDefinition(definition.clone()), 0);
            };
            let mut meter = budget.meter();
            let body = match meter.charge(1) {
                Err(i) => {
                    let (oc, rc) = interrupt_codes(i);
                    ok_body(oc, rc, None)
                }
                Ok(()) => {
                    // Panic isolation mirrors the critique's judge
                    // cells: a panicking judge degrades to Unknown.
                    let judged = catch_unwind(AssertUnwindSafe(|| d.admits(a, None)));
                    let (verdict, reason) = match judged {
                        Ok(j) => (verdict_code(j.verdict), j.reason),
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            (verdict_code(Verdict::Unknown), format!("judge panicked: {msg}"))
                        }
                    };
                    let mut p = Vec::new();
                    p.push(verdict);
                    put_str(&mut p, &reason);
                    ok_body(OUTCOME_COMPLETED, REASON_NONE, Some(p))
                }
            };
            Executed {
                status: STATUS_OK,
                epoch: 0,
                served: SERVED_PROVER,
                spend: meter.spend(),
                body,
            }
        }
        Request::Critique => {
            let governed = summa_core::critique::syntactic_critique_governed(budget);
            // The matrix's own per-cell spends carry wall-clock; the
            // body-level spend uses only the deterministic fields
            // (1 step per judged cell).
            let spend = match governed.as_partial() {
                Some(m) => m.total_spend(),
                None => Spend::default(),
            };
            let body = governed_body(&governed, |m| {
                let mut p = Vec::new();
                put_u32(&mut p, m.definitions.len() as u32);
                for d in &m.definitions {
                    put_str(&mut p, d);
                }
                put_u32(&mut p, m.artifacts.len() as u32);
                for (i, a) in m.artifacts.iter().enumerate() {
                    put_str(&mut p, a);
                    for j in &m.cells[i] {
                        p.push(verdict_code(j.verdict));
                        put_str(&mut p, &j.reason);
                    }
                }
                p
            });
            Executed {
                status: STATUS_OK,
                epoch: 0,
                served: SERVED_PROVER,
                spend,
                body,
            }
        }
        Request::LoadSnapshot { name, axioms } => match store.install_axioms(name, axioms) {
            Err(e) => Executed::proto(ProtoError::ParseError(e), 0),
            Ok(snap) => {
                let mut p = Vec::new();
                put_str(&mut p, &snap.name);
                put_u64(&mut p, snap.fingerprint);
                put_u64(&mut p, snap.tbox.atoms().len() as u64);
                Executed {
                    status: STATUS_OK,
                    body: ok_body(OUTCOME_COMPLETED, REASON_NONE, Some(p)),
                    epoch: snap.epoch,
                    served: SERVED_PROVER,
                    spend: Spend::default(),
                }
            }
        },
        // Stats/Telemetry are answered by the server from its own
        // state; they never reach the op layer (and have no library
        // baseline).
        Request::Stats => Executed::proto(
            ProtoError::Malformed("stats is served from server state"),
            0,
        ),
        Request::Telemetry { .. } => Executed::proto(
            ProtoError::Malformed("telemetry is served from server state"),
            0,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_ok_body, Op, Payload};

    fn store() -> SnapshotStore {
        SnapshotStore::with_builtins()
    }

    #[test]
    fn subsumes_answers_and_is_deterministic() {
        let s = store();
        let req = Request::Subsumes {
            snapshot: "vehicles".into(),
            sub: "car".into(),
            sup: "motorvehicle".into(),
        };
        let a = execute(&s, &req, &Budget::unlimited());
        let b = execute(&s, &req, &Budget::unlimited());
        assert_eq!(a.status, STATUS_OK);
        assert_eq!(a.body, b.body, "byte-identical across runs");
        let ok = decode_ok_body(Op::Subsumes, &a.body).expect("decodes");
        assert_eq!(ok.outcome, OUTCOME_COMPLETED);
        assert_eq!(ok.payload, Some(Payload::Subsumes(true)));
        assert!(a.spend.steps > 0);
        assert_eq!(a.served, SERVED_PROVER);

        let req = Request::Subsumes {
            snapshot: "vehicles".into(),
            sub: "motorvehicle".into(),
            sup: "car".into(),
        };
        let r = execute(&s, &req, &Budget::unlimited());
        let ok = decode_ok_body(Op::Subsumes, &r.body).expect("decodes");
        assert_eq!(ok.payload, Some(Payload::Subsumes(false)));
    }

    #[test]
    fn unknown_snapshot_is_a_typed_protocol_error() {
        let s = store();
        let r = execute(
            &s,
            &Request::Classify {
                snapshot: "missing".into(),
            },
            &Budget::unlimited(),
        );
        assert_eq!(r.status, STATUS_PROTOCOL_ERROR);
        let (code, msg) = wire::decode_protocol_error(&r.body).expect("typed");
        assert_eq!(code, ProtoError::UnknownSnapshot(String::new()).code());
        assert!(msg.contains("missing"));
    }

    #[test]
    fn classify_under_starved_budget_reports_exhaustion() {
        let s = store();
        let req = Request::Classify {
            snapshot: "vehicles".into(),
        };
        let full = execute(&s, &req, &Budget::unlimited());
        let ok = decode_ok_body(Op::Classify, &full.body).expect("decodes");
        assert_eq!(ok.outcome, OUTCOME_COMPLETED);
        let Some(Payload::Hierarchy(rows)) = ok.payload else {
            panic!("hierarchy payload");
        };
        assert!(rows.iter().any(|(c, subs)| c == "car"
            && subs.iter().any(|s| s == "motorvehicle")));

        let starved = execute(&s, &req, &Budget::new().with_steps(3));
        assert_eq!(starved.status, STATUS_OK);
        let ok = decode_ok_body(Op::Classify, &starved.body).expect("decodes");
        assert_eq!(ok.outcome, OUTCOME_EXHAUSTED);
        assert_eq!(ok.reason, REASON_STEPS);
    }

    #[test]
    fn realize_round_trips_beetle() {
        let s = store();
        let req = Request::Realize {
            snapshot: "vehicles".into(),
            abox: "# beetle\nbeetle : car\n".into(),
        };
        let r = execute(&s, &req, &Budget::unlimited());
        assert_eq!(r.status, STATUS_OK);
        let ok = decode_ok_body(Op::Realize, &r.body).expect("decodes");
        let Some(Payload::Realization(rows)) = ok.payload else {
            panic!("realization payload");
        };
        assert_eq!(rows.len(), 1);
        let (name, types, most) = &rows[0];
        assert_eq!(name, "beetle");
        assert!(types.iter().any(|t| t == "motorvehicle"));
        assert_eq!(most, &vec!["car".to_string()]);
    }

    #[test]
    fn abox_parse_errors_are_typed_and_deterministic() {
        let s = store();
        let req = Request::Realize {
            snapshot: "vehicles".into(),
            abox: "beetle : some uses".into(),
        };
        let a = execute(&s, &req, &Budget::unlimited());
        let b = execute(&s, &req, &Budget::unlimited());
        assert_eq!(a.status, STATUS_PROTOCOL_ERROR);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn admit_and_critique_agree_on_verdicts() {
        let s = store();
        let crit = execute(&s, &Request::Critique, &Budget::unlimited());
        let ok = decode_ok_body(Op::Critique, &crit.body).expect("decodes");
        let Some(Payload::Matrix { definitions, rows }) = ok.payload else {
            panic!("matrix payload");
        };
        assert!(!definitions.is_empty() && !rows.is_empty());
        // Each admit answer must match the matrix cell.
        let (artifact, cells) = &rows[0];
        for (d, (code, reason)) in definitions.iter().zip(cells) {
            let one = execute(
                &s,
                &Request::Admit {
                    artifact: artifact.clone(),
                    definition: d.clone(),
                },
                &Budget::unlimited(),
            );
            let ok = decode_ok_body(Op::Admit, &one.body).expect("decodes");
            assert_eq!(
                ok.payload,
                Some(Payload::Judgment {
                    verdict: *code,
                    reason: reason.clone()
                })
            );
        }
    }

    #[test]
    fn warm_subsumes_answers_from_the_index_with_identical_body() {
        let s = store();
        let req = Request::Subsumes {
            snapshot: "vehicles".into(),
            sub: "car".into(),
            sup: "motorvehicle".into(),
        };
        let cold = execute(&s, &req, &Budget::unlimited());
        let warm = execute_warm(&s, &req, &Budget::unlimited());
        assert_eq!(warm.body, cold.body, "byte-identical warm vs cold");
        assert_eq!(warm.epoch, cold.epoch);
        assert_eq!(warm.served, SERVED_INDEX);
        assert_eq!(warm.spend.steps, 1, "index answers charge one step");
        assert!(cold.spend.steps > warm.spend.steps);
    }

    #[test]
    fn warm_complex_queries_fall_through_to_the_shared_cache() {
        let s = store();
        let req = Request::Subsumes {
            snapshot: "vehicles".into(),
            sub: "car".into(),
            sup: "some uses.gasoline".into(),
        };
        let cold = execute(&s, &req, &Budget::unlimited());
        let warm = execute_warm(&s, &req, &Budget::unlimited());
        assert_eq!(warm.body, cold.body);
        assert_eq!(warm.served, SERVED_CACHE);
        // The same complex query a second time rides the shared cache.
        let again = execute_warm(&s, &req, &Budget::unlimited());
        assert_eq!(again.body, cold.body);
        assert!(again.spend.cache_hits > 0, "epoch-shared cache warmed");
    }

    #[test]
    fn warm_classify_and_realize_match_cold_bodies() {
        let s = store();
        for req in [
            Request::Classify {
                snapshot: "vehicles".into(),
            },
            Request::Realize {
                snapshot: "vehicles".into(),
                abox: "beetle : car\n".into(),
            },
        ] {
            let cold = execute(&s, &req, &Budget::unlimited());
            let warm = execute_warm(&s, &req, &Budget::unlimited());
            assert_eq!(warm.body, cold.body, "{req:?}");
            assert_eq!(warm.status, cold.status);
            assert_ne!(warm.served, SERVED_PROVER);
        }
    }

    #[test]
    fn warm_falls_back_cold_for_unknown_snapshots_and_other_ops() {
        let s = store();
        let missing = Request::Subsumes {
            snapshot: "missing".into(),
            sub: "car".into(),
            sup: "vehicle".into(),
        };
        let r = execute_warm(&s, &missing, &Budget::unlimited());
        assert_eq!(r.status, STATUS_PROTOCOL_ERROR);
        let ping = execute_warm(&s, &Request::Ping, &Budget::unlimited());
        assert_eq!(ping, execute(&s, &Request::Ping, &Budget::unlimited()));
        assert_eq!(ping.served, SERVED_PROVER);
    }

    #[test]
    fn load_snapshot_installs_and_reports_fingerprint() {
        let s = store();
        let r = execute(
            &s,
            &Request::LoadSnapshot {
                name: "toy".into(),
                axioms: "dog < animal".into(),
            },
            &Budget::unlimited(),
        );
        assert_eq!(r.status, STATUS_OK);
        assert!(r.epoch > 3, "epoch bumped past builtins");
        let ok = decode_ok_body(Op::LoadSnapshot, &r.body).expect("decodes");
        let Some(Payload::SnapshotInstalled { name, atoms, .. }) = ok.payload else {
            panic!("install payload");
        };
        assert_eq!((name.as_str(), atoms), ("toy", 2));
        assert!(s.get("toy").is_some());
    }
}
